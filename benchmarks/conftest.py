"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper on the
*smoke-scale* surrogate datasets so the whole suite runs in a few minutes;
``repro.experiments.configs.figure_config(smoke=False, thread_counts=(16, 32, 44))``
reproduces the full-scale sweep when more time is available.

Every benchmark writes its rendered rows/series to ``benchmarks/results/``
so the output can be inspected and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import platform
from pathlib import Path

import pytest

from repro.async_engine.cost_model import CostModel
from repro.experiments.configs import figure_config
from repro.experiments.runner import ExperimentRunner

#: Thread counts used by the benchmark sweep (scaled-down analogue of the
#: paper's {16, 32, 44}).
BENCH_THREADS = (4, 8, 16)

RESULTS_DIR = Path(__file__).parent / "results"


def bench_environment() -> dict:
    """Provenance block shared by every ``BENCH_*.json`` writer.

    Records which kernel backend produced the numbers and on what machine,
    so recorded perf points stay comparable across PRs and runners.
    """
    from repro.cluster import available_parallelism
    from repro.kernels import default_backend_name, native_status

    return {
        "kernel_backend": default_backend_name(),
        "native_backend_status": native_status(),
        "cpu_count": os.cpu_count(),
        "available_parallelism": available_parallelism(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def write_result(name: str, text: str) -> Path:
    """Persist a rendered benchmark artefact under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def cost_model() -> CostModel:
    """One shared cost model so all solvers are priced identically."""
    return CostModel()


@pytest.fixture(scope="session")
def figure_runner(cost_model) -> ExperimentRunner:
    """The full (smoke-scale) sweep behind Figures 3, 4 and 5.

    Session-scoped: the sweep is executed once and reused by every
    figure/headline benchmark.
    """
    config = figure_config(smoke=True, thread_counts=BENCH_THREADS, include_svrg_asgd=True)
    runner = ExperimentRunner(config, cost_model=cost_model)
    runner.run()
    return runner
