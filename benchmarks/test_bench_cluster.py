"""Benchmark: true multi-process cluster speedup (wall-clock, measured).

Unlike every other benchmark in this repository, nothing here is
simulated: the cluster tier (``async_mode="process"``) runs real OS
processes over a sharded shared-memory parameter vector, so this is the
first measurement where the paper's speedup-vs-workers claim is exercised
against physical cores rather than the cost model.

Two measurements share ``BENCH_cluster.json`` (each merges its own section
into the file, so either can run alone):

* **speedup** — 4 process workers against 1 on the benchmark problem
  using *steady-state* epochs (the first epoch absorbs worker start-up
  and page-fault warm-up and is excluded): with >= 4 usable cores the
  4-worker configuration must be at least 2x faster;
* **recovery** — a worker SIGKILLed mid-epoch (the fault-injection
  harness of ``tests/cluster/faults.py``) against the same run
  uninterrupted: the wall-clock overhead of detection + restore +
  respawn + epoch replay must stay within half an epoch.

On smaller machines (both gates are meaningless under time-sharing) the
benchmarks still run end-to-end and record the measured numbers, but the
ratios are not asserted — CI runners provide the cores, so the gates are
enforced there.

Results are written to ``benchmarks/results/BENCH_cluster.json`` and the
repository root ``BENCH_cluster.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import bench_environment, write_result
from repro.cluster import ClusterDriver, available_parallelism, occupancy_skew
from repro.core.balancing import random_order
from repro.core.partition import partition_dataset
from repro.datasets.synthetic import SyntheticSpec, make_sparse_classification
from repro.objectives.logistic import LogisticObjective
from repro.objectives.regularizers import L2Regularizer

from tests.cluster.faults import FaultInjector, KillPoint

ROOT_JSON = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


def _merge_bench_cluster(section: str, payload: dict) -> dict:
    """Merge one section into BENCH_cluster.json (root + results copies)."""
    merged: dict = {}
    if ROOT_JSON.exists():
        try:
            merged = json.loads(ROOT_JSON.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged = {k: v for k, v in merged.items() if k in ("speedup", "recovery")}
    merged[section] = payload
    text = json.dumps(merged, indent=2, sort_keys=True)
    write_result("BENCH_cluster.json", text)
    ROOT_JSON.write_text(text + "\n")
    return merged

#: Cluster-scale surrogate: enough per-epoch NumPy work that the kernel
#: batch primitives — not process management — dominate each epoch.
BENCH_SPEC = SyntheticSpec(
    n_samples=40_000,
    n_features=30_000,
    nnz_per_sample=40.0,
    feature_skew=1.2,
    norm_spread=0.8,
    label_noise=0.02,
    name="cluster_bench",
)

EPOCHS = 6
WORKER_COUNTS = (1, 4)
SPEEDUP_GATE = 2.0
REQUIRED_CORES = 4


def _steady_state_seconds(epoch_seconds) -> float:
    """Total wall-clock excluding the start-up epoch."""
    return float(sum(epoch_seconds[1:])) if len(epoch_seconds) > 1 else float(sum(epoch_seconds))


@pytest.mark.benchmark(group="cluster")
def test_bench_cluster_speedup(benchmark):
    """4 process workers vs 1 on the shared benchmark problem (measured)."""

    def measure():
        X, y, _ = make_sparse_classification(BENCH_SPEC, seed=0)
        objective = LogisticObjective(regularizer=L2Regularizer(1e-4))
        L = objective.lipschitz_constants(X, y)
        order = random_order(X.n_rows, seed=0)
        cores = available_parallelism()

        payload = {
            "dataset": {
                "name": BENCH_SPEC.name,
                "n_samples": X.n_rows,
                "n_features": X.n_cols,
                "nnz": X.nnz,
            },
            "config": {
                "epochs": EPOCHS,
                "worker_counts": list(WORKER_COUNTS),
                "speedup_gate": SPEEDUP_GATE,
                "required_cores": REQUIRED_CORES,
            },
            "environment": bench_environment(),
            "runs": {},
        }

        seconds = {}
        for workers in WORKER_COUNTS:
            partition = partition_dataset(order, L, workers, scheme="uniform")
            driver = ClusterDriver(
                X, y, objective, partition, step_size=0.1, seed=0
            )
            run = driver.run(EPOCHS)
            steady = _steady_state_seconds(run.epoch_seconds)
            seconds[workers] = steady
            payload["runs"][str(workers)] = {
                "epoch_seconds": [round(s, 6) for s in run.epoch_seconds],
                "steady_state_seconds": round(steady, 6),
                "conflict_rate": run.trace.conflict_rate(),
                "mean_measured_delay": run.info["mean_measured_delay"],
                "occupancy_skew": run.info["occupancy_skew"],
                "final_loss": objective.full_loss(run.weights, X, y),
            }

        speedup = seconds[1] / seconds[4] if seconds[4] > 0 else float("inf")
        gated = cores >= REQUIRED_CORES
        payload["speedup_4_over_1"] = round(speedup, 4)
        payload["gated"] = gated
        if not gated:
            payload["note"] = (
                f"measured under time-sharing on {cores} core(s); the >=2x "
                f"gate needs >= {REQUIRED_CORES} cores and is enforced by the "
                "CI bench job — the ratio recorded here is NOT a parallel "
                "speedup measurement"
            )

        _merge_bench_cluster("speedup", payload)
        return payload

    payload = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Sanity on any machine: the cluster ran end-to-end at both worker
    # counts and genuinely optimised.
    zero_loss = float(np.log(2.0))
    for workers in WORKER_COUNTS:
        run = payload["runs"][str(workers)]
        assert len(run["epoch_seconds"]) == EPOCHS
        assert run["final_loss"] < zero_loss

    # The wall-clock gate needs real cores; CI runners have them.
    if payload["gated"]:
        assert payload["speedup_4_over_1"] >= SPEEDUP_GATE, (
            f"4-worker cluster speedup {payload['speedup_4_over_1']:.2f}x "
            f"below the {SPEEDUP_GATE}x gate"
        )
    else:
        pytest.skip(
            f"speedup gate requires >= {REQUIRED_CORES} cores "
            f"(have {payload['environment']['available_parallelism']}); "
            f"measured {payload['speedup_4_over_1']:.2f}x"
        )


#: Recovery benchmark scale: small enough that the two runs (clean +
#: killed) finish quickly, large enough that an epoch dwarfs process
#: management noise.
RECOVERY_SPEC = SyntheticSpec(
    n_samples=12_000,
    n_features=10_000,
    nnz_per_sample=30.0,
    feature_skew=1.2,
    label_noise=0.02,
    name="cluster_recovery_bench",
)

RECOVERY_EPOCHS = 3
RECOVERY_WORKERS = 4
#: Detection + restore + respawn + replay must cost at most this fraction
#: of one steady-state epoch (the ISSUE acceptance bound).
RECOVERY_OVERHEAD_GATE = 0.5


@pytest.mark.benchmark(group="cluster")
def test_bench_cluster_recovery_overhead(benchmark):
    """Wall-clock cost of one mid-epoch SIGKILL + automatic recovery."""

    def measure():
        X, y, _ = make_sparse_classification(RECOVERY_SPEC, seed=0)
        objective = LogisticObjective(regularizer=L2Regularizer(1e-4))
        L = objective.lipschitz_constants(X, y)
        order = random_order(X.n_rows, seed=0)
        partition = partition_dataset(order, L, RECOVERY_WORKERS, scheme="uniform")
        cores = available_parallelism()

        def timed_run(fault_hook=None):
            driver = ClusterDriver(
                X, y, objective, partition,
                step_size=0.1, seed=0, fault_hook=fault_hook,
            )
            started = time.perf_counter()
            run = driver.run(RECOVERY_EPOCHS)
            return run, time.perf_counter() - started

        clean, clean_wall = timed_run()
        injector = FaultInjector(kill_point=KillPoint(epoch=1, fraction=0.25))
        killed, killed_wall = timed_run(fault_hook=injector)

        # The kill lands in a non-final epoch, so recovery is mandatory.
        assert len(injector.strikes) == 1, "harness failed to strike"
        assert killed.info["respawns"] >= 1, "no recovery was observed"

        per_epoch = _steady_state_seconds(clean.epoch_seconds) / max(
            len(clean.epoch_seconds) - 1, 1
        )
        overhead = killed_wall - clean_wall
        gated = cores >= REQUIRED_CORES
        payload = {
            "dataset": {
                "name": RECOVERY_SPEC.name,
                "n_samples": X.n_rows,
                "n_features": X.n_cols,
                "nnz": X.nnz,
            },
            "config": {
                "epochs": RECOVERY_EPOCHS,
                "workers": RECOVERY_WORKERS,
                "kill_point": "1:0.25",
                "overhead_gate_epochs": RECOVERY_OVERHEAD_GATE,
                "required_cores": REQUIRED_CORES,
            },
            "environment": bench_environment(),
            "clean_wall_seconds": round(clean_wall, 6),
            "killed_wall_seconds": round(killed_wall, 6),
            "per_epoch_seconds": round(per_epoch, 6),
            "recovery_overhead": round(overhead, 6),
            "recovery_overhead_epochs": (
                round(overhead / per_epoch, 4) if per_epoch > 0 else None
            ),
            "respawns": killed.info["respawns"],
            "final_loss_clean": objective.full_loss(clean.weights, X, y),
            "final_loss_killed": objective.full_loss(killed.weights, X, y),
            "gated": gated,
        }
        if not gated:
            payload["note"] = (
                f"measured under time-sharing on {cores} core(s); the "
                f"<= {RECOVERY_OVERHEAD_GATE} epoch overhead gate needs "
                f">= {REQUIRED_CORES} cores and is enforced by the CI "
                "bench job"
            )
        _merge_bench_cluster("recovery", payload)
        return payload

    payload = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Sanity on any machine: both runs completed and genuinely optimised.
    zero_loss = float(np.log(2.0))
    assert payload["final_loss_clean"] < zero_loss
    assert payload["final_loss_killed"] < zero_loss

    if payload["gated"]:
        limit = RECOVERY_OVERHEAD_GATE * payload["per_epoch_seconds"]
        assert payload["recovery_overhead"] <= limit, (
            f"recovery overhead {payload['recovery_overhead']:.3f}s exceeds "
            f"{RECOVERY_OVERHEAD_GATE} of an epoch ({limit:.3f}s)"
        )
    else:
        pytest.skip(
            f"recovery overhead gate requires >= {REQUIRED_CORES} cores "
            f"(have {payload['environment']['available_parallelism']}); "
            f"measured {payload['recovery_overhead']:.3f}s "
            f"({payload['recovery_overhead_epochs']} epochs)"
        )
