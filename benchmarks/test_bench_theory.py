"""Benchmark: the convergence-bound comparison (Eq. 13, 14, 15, 26, 27).

Paper reference (Sections 2.2 and 3): importance sampling improves the SGD
convergence bound by a factor governed by ψ (Eq. 15), and IS-ASGD inherits
that bound up to an order-wise constant as long as the delay τ respects
Eq. 27.  This benchmark evaluates the bounds on every surrogate dataset and
checks the predicted ordering: lower ψ ⇒ larger predicted IS improvement,
and the measured IS-vs-uniform gradient-variance ratio tracks the
prediction.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.core.importance import lipschitz_probabilities
from repro.datasets.loader import load_dataset
from repro.experiments.report import format_table
from repro.graph.conflict import conflict_graph_stats
from repro.objectives.logistic import LogisticObjective
from repro.theory.bounds import compare_bounds
from repro.theory.variance import gradient_variance, importance_sampling_variance

SMOKE_DATASETS = ["news20_smoke", "url_smoke", "kdd_algebra_smoke", "kdd_bridge_smoke"]


@pytest.mark.benchmark(group="theory")
def test_bench_bound_comparison_per_dataset(benchmark):
    """Evaluate Eq. 13/14/15/26/27 on every surrogate dataset."""

    def compute():
        objective = LogisticObjective.l1_regularized(1e-4)
        rows = []
        for name in SMOKE_DATASETS:
            ds = load_dataset(name, seed=0)
            L = objective.lipschitz_constants(ds.X, ds.y)
            degree = conflict_graph_stats(ds.X, exact_threshold=0, sample_size=100,
                                          seed=0).average_degree
            cmp = compare_bounds(L, average_conflict_degree=max(degree, 1e-9))
            rows.append(
                {
                    "dataset": name,
                    "psi": cmp.psi,
                    "uniform_bound": cmp.uniform_bound,
                    "is_bound": cmp.is_bound,
                    "bound_ratio": cmp.bound_ratio,
                    "tau_limit": cmp.tau_limit,
                    "avg_conflict_degree": degree,
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_table(rows, title="Eq. 13/14/15/27: predicted IS improvement per dataset")
    print("\n" + text)
    write_result("theory_bounds.txt", text)

    by_name = {r["dataset"]: r for r in rows}
    for row in rows:
        # Cauchy-Schwarz: the IS bound never exceeds the uniform bound.
        assert row["is_bound"] <= row["uniform_bound"] * (1 + 1e-9)
        assert 0.0 < row["psi"] <= 1.0
        assert row["tau_limit"] > 0.0
    # Lower psi (KDD surrogates) -> larger predicted improvement (smaller ratio).
    assert by_name["kdd_bridge_smoke"]["bound_ratio"] < by_name["news20_smoke"]["bound_ratio"]


@pytest.mark.benchmark(group="theory")
def test_bench_variance_reduction_matches_prediction(benchmark):
    """Measured gradient variance under uniform / Eq.-12 / Eq.-11 sampling.

    Eq. 11's gradient-norm-proportional distribution minimises the exact
    variance by construction; the practical Eq.-12 (Lipschitz) distribution
    only optimises a *bound*, so it sits between the optimum and uniform on
    well-behaved data and can even slightly exceed uniform when the Lipschitz
    constants over-weight heavy samples — the benchmark records all three so
    the gap is visible.
    """

    def compute():
        from repro.core.importance import optimal_probabilities
        from repro.theory.variance import optimal_variance

        objective = LogisticObjective()
        rows = []
        rng = np.random.default_rng(0)
        for name in ("news20_smoke", "kdd_bridge_smoke"):
            ds = load_dataset(name, seed=0)
            # Subsample rows to keep the dense per-sample gradient matrix small.
            take = np.arange(0, ds.n_samples, max(1, ds.n_samples // 150))
            X, y = ds.X.take_rows(take), ds.y[take]
            w = 0.05 * rng.normal(size=ds.n_features)
            L = objective.lipschitz_constants(X, y)
            p_lip = lipschitz_probabilities(L)
            var_uniform = gradient_variance(objective, w, X, y)
            var_lip = importance_sampling_variance(objective, w, X, y, p_lip)
            var_opt = optimal_variance(objective, w, X, y)
            rows.append(
                {
                    "dataset": name,
                    "uniform_variance": var_uniform,
                    "lipschitz_is_variance": var_lip,
                    "optimal_is_variance": var_opt,
                    "lipschitz_ratio": var_lip / var_uniform if var_uniform else 1.0,
                    "optimal_ratio": var_opt / var_uniform if var_uniform else 1.0,
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_table(rows, title="Measured gradient-variance under each sampling scheme (Eq. 10)")
    print("\n" + text)
    write_result("theory_variance.txt", text)

    for row in rows:
        # The Eq.-11 optimum is a genuine lower bound on both other schemes.
        assert row["optimal_is_variance"] <= row["uniform_variance"] * (1 + 1e-9)
        assert row["optimal_is_variance"] <= row["lipschitz_is_variance"] * (1 + 1e-9)
        # The practical Eq.-12 scheme stays within a small factor of uniform
        # even in the adversarial heavy-tailed case.
        assert row["lipschitz_ratio"] <= 1.15
