"""Benchmark: regenerate Table 1 (dataset statistics).

Paper reference (Table 1): per-dataset dimension, instance count, gradient
sparsity, ψ and ρ.  The regenerated rows report the surrogate values next to
the paper's values; the orderings (news20 densest / highest ψ, the KDD
datasets sparsest / lowest ψ) must match even though the absolute scale is
reduced.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments.report import format_table
from repro.experiments.tables import table1_rows

SMOKE_DATASETS = ["news20_smoke", "url_smoke", "kdd_algebra_smoke", "kdd_bridge_smoke"]


@pytest.mark.benchmark(group="table1")
def test_bench_table1_rows(benchmark):
    """Time the Table-1 statistics computation and check the orderings."""
    rows = benchmark.pedantic(
        lambda: table1_rows(SMOKE_DATASETS, seed=0, include_conflict_degree=True),
        rounds=1,
        iterations=1,
    )
    text = format_table(
        rows,
        columns=[
            "Name", "Dimension", "Instances", "GradSparsity", "psi", "rho",
            "avg_conflict_degree", "paper_dimension", "paper_instances",
            "paper_grad_sparsity", "paper_psi", "paper_rho", "Source",
        ],
        title="Table 1 (surrogate vs paper)",
    )
    print("\n" + text)
    write_result("table1.txt", text)

    by_name = {r["Name"]: r for r in rows}
    # Shape checks mirroring the paper's Table 1 orderings.
    assert by_name["news20_smoke"]["GradSparsity"] > by_name["kdd_algebra_smoke"]["GradSparsity"]
    assert by_name["news20_smoke"]["GradSparsity"] > by_name["kdd_bridge_smoke"]["GradSparsity"]
    assert by_name["kdd_bridge_smoke"]["psi"] < by_name["news20_smoke"]["psi"]
    assert by_name["kdd_algebra_smoke"]["psi"] < by_name["url_smoke"]["psi"]
    for row in rows:
        assert 0.0 < row["psi"] <= 1.0
        assert row["rho"] >= 0.0


@pytest.mark.benchmark(group="table1")
def test_bench_table1_full_scale_statistics(benchmark):
    """Statistics of one full-scale surrogate (kdd_algebra) — heavier, run once."""
    rows = benchmark.pedantic(
        lambda: table1_rows(["kdd_algebra"], seed=0), rounds=1, iterations=1
    )
    row = rows[0]
    print("\n" + format_table(rows, title="Table 1, full-scale kdd_algebra surrogate"))
    assert row["GradSparsity"] < 1e-3
    assert row["psi"] < 0.99
