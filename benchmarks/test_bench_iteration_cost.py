"""Benchmark: the Figure-1 argument (sparse vs dense per-iteration cost).

Paper reference (Figure 1 and Section 1.2): an index-compressed stochastic
gradient touches ~``nnz`` coordinates while SVRG's variance-reduced gradient
requires a dense full-length (``d``) vector add every iteration, so for
sparsity around 1e-5..1e-7 the per-iteration cost ratio is 10^3-10^6.  This
benchmark measures the *real* NumPy kernels (not the cost model) and checks
that the measured ratio grows with the dimensionality, and that the
calibrated cost model agrees with the measurement on ordering.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.async_engine.cost_model import CostModel
from repro.experiments.report import format_table


def _sparse_update(w, idx, val, scale):
    np.add.at(w, idx, scale * val)


def _dense_update(w, mu, scale):
    w -= scale * mu


@pytest.mark.benchmark(group="figure1")
@pytest.mark.parametrize("dim", [10_000, 100_000, 1_000_000])
def test_bench_sparse_update_kernel(benchmark, dim):
    """Time the index-compressed update at a fixed nnz (paper's sparse path)."""
    rng = np.random.default_rng(0)
    w = np.zeros(dim)
    idx = rng.choice(dim, size=32, replace=False)
    val = rng.normal(size=32)
    benchmark(_sparse_update, w, idx, val, -0.1)


@pytest.mark.benchmark(group="figure1")
@pytest.mark.parametrize("dim", [10_000, 100_000, 1_000_000])
def test_bench_dense_update_kernel(benchmark, dim):
    """Time the dense full-length update (SVRG's µ add)."""
    rng = np.random.default_rng(0)
    w = np.zeros(dim)
    mu = rng.normal(size=dim)
    benchmark(_dense_update, w, mu, 0.1)


@pytest.mark.benchmark(group="figure1")
def test_bench_figure1_cost_ratio(benchmark):
    """Measured dense/sparse cost ratio grows with d and the cost model agrees."""
    from repro.utils.timer import measure_call

    def measure():
        rng = np.random.default_rng(0)
        rows = []
        nnz = 32
        for dim in (10_000, 100_000, 1_000_000):
            w = np.zeros(dim)
            idx = rng.choice(dim, size=nnz, replace=False)
            val = rng.normal(size=nnz)
            mu = rng.normal(size=dim)
            sparse_t = measure_call(lambda: _sparse_update(w, idx, val, -0.1), repeats=5)
            dense_t = measure_call(lambda: _dense_update(w, mu, 0.1), repeats=5)
            model_ratio = CostModel().sparse_dense_cost_ratio(nnz, dim)
            rows.append(
                {
                    "dim": dim,
                    "nnz": nnz,
                    "sparse_us": sparse_t * 1e6,
                    "dense_us": dense_t * 1e6,
                    "measured_ratio": dense_t / sparse_t,
                    "cost_model_ratio": model_ratio,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(rows, title="Figure 1: sparse vs dense per-iteration cost")
    print("\n" + text)
    write_result("figure1_iteration_cost.txt", text)

    ratios = [r["measured_ratio"] for r in rows]
    # The dense/sparse gap must grow monotonically with the dimensionality...
    assert ratios[0] < ratios[1] < ratios[2]
    # ...and be large (orders of magnitude) at 1M dimensions.
    assert ratios[-1] > 50.0
    # The cost model must agree on the trend.
    model_ratios = [r["cost_model_ratio"] for r in rows]
    assert model_ratios[0] < model_ratios[1] < model_ratios[2]
