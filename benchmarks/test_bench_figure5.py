"""Benchmark: regenerate Figure 5 (error-rate -> speedup slices).

Paper reference (Figure 5 a-d): for every dataset and concurrency, the
speedup of IS-ASGD over ASGD and over serial SGD at each error-rate target
(values linearly interpolated between recorded epochs).  The shape claims
checked here:

* the average speedup of IS-ASGD over ASGD is around or above 1 (the paper
  reports 1.26-1.97x averages);
* the raw computational speedup over serial SGD is several-fold and grows
  with the worker count (the paper reports 6.4-12.3x at 16 threads and
  11.9-23.5x at 44 threads on real hardware; the simulated engine uses
  4/8/16 workers so the absolute values are smaller but the monotone trend
  must hold).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.experiments.figures import figure5_data
from repro.experiments.report import render_speedup_slices


@pytest.mark.benchmark(group="figure5")
def test_bench_figure5_slices(benchmark, figure_runner):
    """Build every Figure-5 slice and verify the over-ASGD speedup band."""
    slices = benchmark.pedantic(lambda: figure5_data(figure_runner), rounds=1, iterations=1)
    text = render_speedup_slices(slices)
    print("\n" + text)
    write_result("figure5.txt", text)

    over_asgd = [s.mean_speedup for s in slices if s.baseline == "asgd" and s.mean_speedup]
    assert over_asgd, "expected IS-ASGD vs ASGD slices"
    # On average IS-ASGD should not lose to ASGD, and should win somewhere.
    assert float(np.median(over_asgd)) >= 0.9
    assert max(over_asgd) > 1.0


@pytest.mark.benchmark(group="figure5")
def test_bench_figure5_raw_speedup_grows_with_workers(benchmark, figure_runner):
    """The over-SGD (raw computational) speedup increases with concurrency."""

    def speedups_by_worker():
        out = {}
        for sl in figure5_data(figure_runner):
            if sl.baseline != "sgd" or sl.mean_speedup is None:
                continue
            out.setdefault(sl.num_workers, []).append(sl.mean_speedup)
        return {w: float(np.mean(v)) for w, v in out.items()}

    by_worker = benchmark.pedantic(speedups_by_worker, rounds=1, iterations=1)
    print("\nmean raw speedup over SGD by worker count:", by_worker)
    workers = sorted(by_worker)
    assert len(workers) >= 2
    assert by_worker[workers[-1]] > by_worker[workers[0]]
    # At the largest worker count the speedup must be clearly super-unity.
    assert by_worker[workers[-1]] > 1.5


@pytest.mark.benchmark(group="figure5")
def test_bench_figure5_speedup_largest_on_large_sparse_datasets(benchmark, figure_runner):
    """Section 4.2: IS-ASGD's acceleration is most pronounced on the large,
    low-ψ (KDD-like) datasets."""

    def mean_by_dataset():
        out = {}
        for sl in figure5_data(figure_runner):
            if sl.baseline != "asgd" or sl.mean_speedup is None:
                continue
            out.setdefault(sl.dataset, []).append(sl.mean_speedup)
        return {k: float(np.mean(v)) for k, v in out.items()}

    means = benchmark.pedantic(mean_by_dataset, rounds=1, iterations=1)
    print("\nmean IS-ASGD/ASGD speedup per dataset:", means)
    write_result("figure5_speedup_by_dataset.txt", str(means))
    kdd = 0.5 * (means.get("kdd_algebra_smoke", 0) + means.get("kdd_bridge_smoke", 0))
    # At smoke scale the per-dataset ordering is noisy; require only that the
    # low-psi datasets stay in the same band as the high-psi one.
    assert kdd >= means.get("news20_smoke", 0.0) - 0.4
    assert max(means.values()) > 1.0
