"""Benchmark: the Section-4.2 headline numbers.

Paper reference (Section 4.2): optimum speedups of IS-ASGD over ASGD range
1.13-1.54x, average speedups 1.26-1.97x, raw speedups over SGD 6.4-23.5x
(16-44 threads), and the IS sampling overhead is 1.1-7.7 %.  This benchmark
aggregates the same quantities from the smoke-scale sweep and records both
the measured and the paper values side by side for EXPERIMENTS.md.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.conftest import write_result
from repro.experiments.figures import headline_numbers


@pytest.mark.benchmark(group="headline")
def test_bench_headline_numbers(benchmark, figure_runner):
    """Aggregate the headline speedup/overhead numbers and sanity-check them."""
    numbers = benchmark.pedantic(lambda: headline_numbers(figure_runner), rounds=1, iterations=1)
    text = json.dumps(numbers, indent=2, default=float)
    print("\n" + text)
    write_result("headline.json", text)

    optimum = numbers["optimum_speedup_over_asgd"]
    average = numbers["average_speedup_over_asgd"]
    raw = numbers["raw_speedup_over_sgd"]
    overhead = numbers["is_sampling_overhead"]

    assert optimum is not None and average is not None and raw is not None
    # IS-ASGD reaches ASGD's optimum at least about as fast somewhere, and on
    # average does not lose.
    assert optimum["max"] >= 1.0
    assert average["mean"] >= 0.9
    # Raw computational speedup over serial SGD is clearly super-unity.
    assert raw["max"] > 1.5
    # The sampling overhead stays a small fraction (paper: 1.1-7.7 %).
    assert overhead is not None
    assert 0.0 <= overhead["max"] <= 0.30
