"""Benchmark: the real-thread Hogwild backend vs the simulator.

This is the substitution-validation ablation called out in DESIGN.md §5: the
thread backend runs genuine lock-free updates (correctness under races),
while the simulator is the engine used for the figures.  Under the GIL the
thread backend gains no wall-clock speedup — that is expected and is exactly
why the cost model exists — but the *models it produces* must be of similar
quality to the simulator's.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.core.config import ISASGDConfig
from repro.core.is_asgd import ISASGDSolver
from repro.datasets.loader import load_dataset
from repro.experiments.report import format_table
from repro.objectives.logistic import LogisticObjective
from repro.solvers.base import Problem


@pytest.fixture(scope="module")
def problem():
    ds = load_dataset("news20_smoke", seed=0)
    return Problem(X=ds.X, y=ds.y, objective=LogisticObjective.l1_regularized(1e-4),
                   name="news20_smoke")


@pytest.mark.benchmark(group="hogwild")
@pytest.mark.parametrize("workers", [2, 4])
def test_bench_threaded_hogwild_epoch(benchmark, problem, workers):
    """Wall-clock of one real-thread Hogwild epoch (GIL-bound; correctness demo)."""
    from repro.async_engine.threads import HogwildThreadPool
    from repro.core.balancing import random_order
    from repro.core.partition import partition_dataset

    partition = partition_dataset(
        random_order(problem.n_samples, seed=0), problem.lipschitz_constants(), workers
    )
    pool = HogwildThreadPool(problem.X, problem.y, problem.objective, partition,
                             step_size=0.5, seed=0)
    benchmark.pedantic(
        pool.run_epoch, args=(problem.n_samples // workers,), rounds=2, iterations=1
    )


@pytest.mark.benchmark(group="hogwild")
def test_bench_backend_quality_agreement(benchmark, problem, cost_model):
    """Simulated vs threaded IS-ASGD reach comparable objective values."""

    def run():
        rows = []
        for backend in ("simulated", "threads"):
            cfg = ISASGDConfig(step_size=0.5, epochs=4, num_workers=4, seed=0)
            result = ISASGDSolver(cfg, backend=backend, cost_model=cost_model).fit(problem)
            rows.append(
                {
                    "backend": backend,
                    "final_rmse": result.final_rmse,
                    "best_error_rate": result.best_error_rate,
                    "train_seconds_simulated": result.total_time,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(rows, title="IS-ASGD: simulator vs real-thread backend")
    print("\n" + text)
    write_result("hogwild_backend_agreement.txt", text)

    rmse = {r["backend"]: r["final_rmse"] for r in rows}
    assert abs(rmse["simulated"] - rmse["threads"]) < 0.25
    for row in rows:
        assert row["best_error_rate"] < 0.45
