"""Benchmark: the online serving layer's micro-batching throughput.

One server configuration (the ``python -m repro serve`` defaults scaled to
``max_batch=256``), two client behaviours against it:

* **single-query loop** — one outstanding request at a time: each query is
  submitted and its response awaited before the next goes out, so every
  round trip pays the full queue hand-off and the kernel-call overhead for
  one row;
* **micro-batched** — requests are pipelined, so the batcher coalesces them
  into one ``segment_margins`` kernel call per tick, measured at 1, 4 and
  8 scoring lanes.

Per-request p50/p99/mean latency and queries/sec are recorded for every
configuration, plus the raw ``score_row`` direct-call rate (no queue at
all) as a floor reference.  Results go to
``benchmarks/results/BENCH_serving.json`` and the repository root
``BENCH_serving.json``; the acceptance gate asserts micro-batched
throughput >= 5x the single-query loop.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import bench_environment, write_result
from repro.datasets.catalog import get_descriptor
from repro.datasets.synthetic import make_sparse_classification
from repro.experiments.configs import RunSpec
from repro.experiments.runner import run_single
from repro.experiments.store import run_identity
from repro.serving import MicroBatcher, ModelRef, ScoringModel

ROOT_JSON = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: One server configuration for every client behaviour measured here.
MAX_BATCH = 256
MAX_DELAY_US = 200.0
LANE_COUNTS = (1, 4, 8)
N_QUERIES = 2000


def _served_model():
    """Train a real artifact-shaped run and load it the serving way."""
    spec = RunSpec(
        dataset="news20_smoke", solver="sgd", num_workers=1,
        step_size=0.1, epochs=2, seed=0,
    )
    record = run_single(spec)
    return ScoringModel.from_record(record, identity=run_identity(spec))


def _query_stream(n: int):
    descriptor = get_descriptor("news20_smoke").surrogate
    X, _, _ = make_sparse_classification(descriptor, seed=0)
    return [X.row(i % X.n_rows) for i in range(n)], X


def _latency_block(latencies) -> dict:
    arr = np.asarray([l for l in latencies if l is not None], dtype=np.float64)
    return {
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
        "mean_ms": float(arr.mean() * 1e3),
    }


def _run_single_query_loop(model: ScoringModel, queries) -> dict:
    """One outstanding request at a time through the default server config."""
    with MicroBatcher(
        model, lanes=1, max_batch=MAX_BATCH, max_delay_us=MAX_DELAY_US
    ) as batcher:
        for idx, val in queries[:32]:  # warm-up
            batcher.score(idx, val, timeout=30.0)
        pending = []
        started = time.perf_counter()
        for idx, val in queries:
            p = batcher.submit(idx, val)
            p.result(timeout=30.0)
            pending.append(p)
        elapsed = time.perf_counter() - started
    return {
        "queries": len(queries),
        "elapsed_seconds": elapsed,
        "qps": len(queries) / elapsed,
        **_latency_block([p.latency for p in pending]),
    }


def _run_batched(model: ScoringModel, queries, lanes: int) -> dict:
    """Pipelined submission: the batcher coalesces into real micro-batches."""
    ref = ModelRef(model)
    with MicroBatcher(
        ref, lanes=lanes, max_batch=MAX_BATCH, max_delay_us=MAX_DELAY_US
    ) as batcher:
        warm = [batcher.submit(idx, val) for idx, val in queries[:64]]
        for p in warm:
            p.result(timeout=30.0)
        started = time.perf_counter()
        pending = [batcher.submit(idx, val) for idx, val in queries]
        for p in pending:
            p.result(timeout=30.0)
        elapsed = time.perf_counter() - started
        stats = batcher.stats()
    return {
        "lanes": lanes,
        "queries": len(queries),
        "elapsed_seconds": elapsed,
        "qps": len(queries) / elapsed,
        "mean_batch": stats["mean_batch"],
        "largest_batch": stats["largest_batch"],
        **_latency_block([p.latency for p in pending]),
    }


@pytest.mark.benchmark(group="serving")
def test_bench_serving(benchmark):
    """Micro-batched serving throughput vs the one-query-at-a-time loop."""

    def measure():
        model = _served_model()
        queries, X = _query_stream(N_QUERIES)

        payload = {
            "dataset": {
                "name": "news20_smoke",
                "n_samples": X.n_rows,
                "n_features": X.n_cols,
                "nnz": X.nnz,
            },
            "environment": bench_environment(),
            "model": model.describe(),
            "server": {
                "max_batch": MAX_BATCH,
                "max_delay_us": MAX_DELAY_US,
                "cache": "disabled (every query scored)",
            },
        }

        # Floor reference: direct score_row calls, no queue involved.
        started = time.perf_counter()
        for idx, val in queries:
            model.score_row(idx, val)
        direct = time.perf_counter() - started
        payload["direct_score_row"] = {
            "qps": len(queries) / direct,
            "us_per_query": direct / len(queries) * 1e6,
        }

        payload["single_query"] = _run_single_query_loop(model, queries)
        payload["batched"] = {
            f"lanes_{lanes}": _run_batched(model, queries, lanes)
            for lanes in LANE_COUNTS
        }

        best = max(payload["batched"].values(), key=lambda row: row["qps"])
        payload["best_batched"] = {"lanes": best["lanes"], "qps": best["qps"]}
        payload["speedup_batched_vs_single_query"] = (
            best["qps"] / payload["single_query"]["qps"]
        )
        return payload

    payload = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = json.dumps(payload, indent=2, default=float)
    print("\n" + text)
    write_result("BENCH_serving.json", text)
    ROOT_JSON.write_text(text + "\n")

    # Acceptance gate: coalescing pipelined queries into micro-batches must
    # sustain >= 5x the one-outstanding-request loop (typically >= 10x).
    assert payload["speedup_batched_vs_single_query"] >= 5.0, (
        f"micro-batched throughput only "
        f"{payload['speedup_batched_vs_single_query']:.2f}x the single-query "
        f"loop, below the 5x gate"
    )
    # Sanity: batching actually happened (not 2000 one-row kernel calls).
    for row in payload["batched"].values():
        assert row["mean_batch"] > 1.0
