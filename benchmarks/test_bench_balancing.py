"""Benchmark: importance balancing ablation (Figure 2 / Algorithms 3-4).

Paper reference (Section 2.3-2.4 and Figure 2): partitioning the data across
workers distorts the local importance-sampling distributions unless every
shard carries equal importance mass Φ_a; Algorithm 3 (head-tail pairing)
approximately equalises the masses, and Algorithm 4 applies it adaptively
based on ρ.  The benchmark quantifies the per-worker mass imbalance and the
local-vs-global distortion for (i) the adversarial sorted order, (ii) random
shuffling, (iii) the paper's head-tail balancing and (iv) the serpentine
extension, and then runs the training ablation (balanced vs shuffled vs
plain ASGD).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.core.balancing import (
    BalancingDecision,
    head_tail_order,
    imbalance_ratio,
    random_order,
    snake_order,
)
from repro.core.partition import partition_dataset
from repro.experiments.configs import balancing_ablation_config
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentRunner
from repro.objectives.logistic import LogisticObjective
from repro.datasets.loader import load_dataset


@pytest.mark.benchmark(group="figure2")
def test_bench_partition_imbalance_by_strategy(benchmark):
    """Per-worker importance-mass imbalance of every ordering strategy."""

    def compute():
        ds = load_dataset("kdd_bridge_smoke", seed=0)
        L = LogisticObjective.l1_regularized(1e-4).lipschitz_constants(ds.X, ds.y)
        workers = 8
        bounds = np.linspace(0, L.size, workers + 1).astype(np.int64)
        orderings = {
            "sorted (adversarial)": np.argsort(L),
            "random shuffle": random_order(L.size, seed=0),
            "head_tail (Algorithm 3)": head_tail_order(L),
            "snake (extension)": snake_order(L, workers),
        }
        rows = []
        for name, order in orderings.items():
            partition = partition_dataset(order, L, workers)
            rows.append(
                {
                    "strategy": name,
                    "mass_imbalance": imbalance_ratio(L[order], bounds),
                    "local_vs_global_distortion": partition.local_vs_global_distortion(),
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_table(rows, title="Figure 2 / Algorithm 3: importance balancing ablation")
    print("\n" + text)
    write_result("figure2_balancing.txt", text)

    by_name = {r["strategy"]: r for r in rows}
    # Both balancing strategies beat the adversarial sorted order.
    assert by_name["head_tail (Algorithm 3)"]["mass_imbalance"] <= (
        by_name["sorted (adversarial)"]["mass_imbalance"] * (1 + 1e-9)
    )
    assert by_name["snake (extension)"]["mass_imbalance"] <= (
        by_name["random shuffle"]["mass_imbalance"] + 1e-9
    )
    # The serpentine extension keeps the masses close to equal; with an
    # extremely heavy-tailed spectrum the floor is set by the single largest
    # sample, so "close" means well under 2x rather than exactly 1.0.
    assert by_name["snake (extension)"]["mass_imbalance"] < 2.0
    assert (
        by_name["snake (extension)"]["local_vs_global_distortion"]
        <= by_name["random shuffle"]["local_vs_global_distortion"] + 1e-9
    )


@pytest.mark.benchmark(group="figure2")
def test_bench_balancing_training_ablation(benchmark, cost_model):
    """Training ablation: balanced IS-ASGD vs shuffled IS-ASGD vs plain ASGD."""

    def run():
        config = balancing_ablation_config(dataset="kdd_bridge_smoke", num_workers=8,
                                           epochs=6, seed=0)
        runner = ExperimentRunner(config, cost_model=cost_model)
        runner.run()
        return runner.summary_rows()

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        rows,
        columns=["solver", "num_workers", "final_rmse", "best_error_rate", "total_time",
                 "balancing_decision"],
        title="Balancing ablation (kdd_bridge_smoke, 8 workers)",
    )
    print("\n" + text)
    write_result("balancing_ablation.txt", text)

    is_rows = [r for r in rows if r["solver"] == "is_asgd"]
    asgd_rows = [r for r in rows if r["solver"] == "asgd"]
    assert len(is_rows) == 2 and len(asgd_rows) == 1
    # Both IS variants converge at least as well as plain ASGD per epoch.
    for row in is_rows:
        assert row["final_rmse"] <= asgd_rows[0]["final_rmse"] * 1.05
