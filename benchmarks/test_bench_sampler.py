"""Benchmark: sampler ablations.

Paper reference (Sections 2.2 and 4.2): IS needs a weighted sampler to
pre-generate the per-worker sample sequences; the paper notes the sampling
cost is negligible relative to training and that regenerating the sequence
every epoch can be replaced by a cheap shuffle with no practical loss.  The
benchmarks here quantify both statements:

* alias-method vs inverse-CDF sampler throughput (construction + draws);
* sequence regeneration vs permute-only refresh, both in raw cost and in
  the resulting convergence quality of IS-ASGD.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.core.importance import lipschitz_probabilities
from repro.core.sampler import AliasSampler, InverseCDFSampler, SampleSequence
from repro.core.config import ISASGDConfig
from repro.core.is_asgd import ISASGDSolver
from repro.datasets.loader import load_dataset
from repro.experiments.report import format_table
from repro.objectives.logistic import LogisticObjective
from repro.solvers.base import Problem


@pytest.fixture(scope="module")
def skewed_probabilities():
    rng = np.random.default_rng(0)
    return lipschitz_probabilities(np.exp(rng.normal(0.0, 1.0, size=50_000)))


@pytest.mark.benchmark(group="sampler")
def test_bench_alias_sampler_draws(benchmark, skewed_probabilities):
    """Alias sampler: O(1) per draw regardless of n."""
    sampler = AliasSampler(skewed_probabilities, seed=0)
    benchmark(sampler.sample, 10_000)


@pytest.mark.benchmark(group="sampler")
def test_bench_inverse_cdf_sampler_draws(benchmark, skewed_probabilities):
    """Inverse-CDF sampler: O(log n) per draw — the ablation baseline."""
    sampler = InverseCDFSampler(skewed_probabilities, seed=0)
    benchmark(sampler.sample, 10_000)


@pytest.mark.benchmark(group="sampler")
def test_bench_alias_construction(benchmark, skewed_probabilities):
    """Alias-table construction cost (paid once per worker per run)."""
    benchmark.pedantic(lambda: AliasSampler(skewed_probabilities, seed=0), rounds=3, iterations=1)


@pytest.mark.benchmark(group="sampler")
def test_bench_sequence_regenerate_vs_shuffle(benchmark, skewed_probabilities):
    """Cost of regenerating a sequence vs merely permuting it (Section 4.2)."""

    def compare():
        seq = SampleSequence.generate(skewed_probabilities, 50_000, seed=0)
        from repro.utils.timer import measure_call

        regen = measure_call(
            lambda: SampleSequence.generate(skewed_probabilities, 50_000, seed=1), repeats=3
        )
        shuffle = measure_call(lambda: seq.reshuffled(seed=1), repeats=3)
        return {"regenerate_s": regen, "shuffle_s": shuffle, "ratio": regen / shuffle}

    result = benchmark.pedantic(compare, rounds=1, iterations=1)
    text = format_table([result], title="Sequence refresh: regenerate vs shuffle")
    print("\n" + text)
    write_result("sampler_refresh.txt", text)
    # Both are cheap; the exact ratio is hardware-dependent, so only sanity-check.
    assert result["regenerate_s"] > 0 and result["shuffle_s"] > 0


@pytest.mark.benchmark(group="sampler")
def test_bench_refresh_policy_convergence_equivalence(benchmark, cost_model):
    """The permute-only refresh matches regeneration in convergence quality."""

    def run():
        ds = load_dataset("url_smoke", seed=0)
        problem = Problem(X=ds.X, y=ds.y, objective=LogisticObjective.l1_regularized(1e-4),
                          name="url_smoke")
        out = {}
        for regen in (True, False):
            cfg = ISASGDConfig(step_size=0.05, epochs=6, num_workers=8, seed=0,
                               reshuffle_sequences=regen)
            result = ISASGDSolver(cfg, cost_model=cost_model).fit(problem)
            out["regenerate" if regen else "shuffle"] = result.final_rmse
        return out

    rmse = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nfinal RMSE by sequence-refresh policy:", rmse)
    write_result("sampler_refresh_convergence.txt", str(rmse))
    assert abs(rmse["regenerate"] - rmse["shuffle"]) < 0.1
