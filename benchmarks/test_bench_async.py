"""Benchmark: batched vs per-sample asynchronous execution.

Measures the macro-step fast path (``async_mode="batched"``, PR 2) against
the per-sample ground-truth simulator on an async-scale workload: IS-ASGD —
the paper's headline solver — with 16 simulated workers, plus plain ASGD for
reference.  Both engines execute the identical schedule, delay sequence and
conflict accounting (the parity suite pins the traces exactly), so the ratio
is a pure execution-engine speedup, not a workload change.

Results are written to ``benchmarks/results/BENCH_async.json`` and to the
repository root ``BENCH_async.json`` so the perf trajectory across PRs has a
recorded data point.  The acceptance gate requires the batched engine to
sustain at least 5x the per-sample iteration throughput.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.conftest import bench_environment, write_result
from repro.core.is_asgd import ISASGDSolver
from repro.datasets.synthetic import SyntheticSpec, make_sparse_classification
from repro.objectives.logistic import LogisticObjective
from repro.objectives.regularizers import L2Regularizer
from repro.solvers.asgd import ASGDSolver
from repro.solvers.base import Problem
from repro.utils.timer import measure_call

ROOT_JSON = Path(__file__).resolve().parent.parent / "BENCH_async.json"

#: Async-scale surrogate: large enough that per-iteration engine overhead —
#: not dataset prep or metrics — dominates the fit.
BENCH_SPEC = SyntheticSpec(
    n_samples=20_000,
    n_features=20_000,
    nnz_per_sample=30.0,
    feature_skew=1.2,
    norm_spread=0.8,
    label_noise=0.02,
    name="async_bench",
)

NUM_WORKERS = 16
EPOCHS = 1
BATCH_SIZE = 2048


def _bench_problem() -> Problem:
    X, y, _ = make_sparse_classification(BENCH_SPEC, seed=0)
    objective = LogisticObjective(regularizer=L2Regularizer(1e-4))
    return Problem(X=X, y=y, objective=objective, name=BENCH_SPEC.name)


def _timed_fit(solver_factory, problem):
    result = {}

    def call():
        result["fit"] = solver_factory().fit(problem)

    seconds = measure_call(call, repeats=2, warmup=0)
    return seconds, result["fit"]


@pytest.mark.benchmark(group="async")
def test_bench_async_engines(benchmark):
    """Per-sample vs batched engine on IS-ASGD and ASGD (identical traces)."""

    def measure():
        problem = _bench_problem()
        payload = {
            "dataset": {
                "name": problem.name,
                "n_samples": problem.n_samples,
                "n_features": problem.n_features,
                "nnz": problem.X.nnz,
            },
            "config": {
                "num_workers": NUM_WORKERS,
                "epochs": EPOCHS,
                "batch_size": BATCH_SIZE,
            },
            "environment": bench_environment(),
        }

        def is_asgd(mode, **kw):
            return lambda: ISASGDSolver(
                step_size=0.1, epochs=EPOCHS, num_workers=NUM_WORKERS, seed=0,
                record_every=10, async_mode=mode, **kw,
            )

        def asgd(mode, **kw):
            return lambda: ASGDSolver(
                step_size=0.1, epochs=EPOCHS, num_workers=NUM_WORKERS, seed=0,
                record_every=10, async_mode=mode, **kw,
            )

        for solver_name, factory in (("is_asgd", is_asgd), ("asgd", asgd)):
            t_per, r_per = _timed_fit(factory("per_sample"), problem)
            t_auto, r_auto = _timed_fit(factory("batched"), problem)
            t_block, r_block = _timed_fit(factory("batched", batch_size=BATCH_SIZE), problem)
            iters = r_per.trace.total_iterations
            assert r_auto.trace.total_iterations == iters
            assert r_block.trace.total_conflicts == r_per.trace.total_conflicts
            payload[solver_name] = {
                "iterations": iters,
                "conflicts": r_per.trace.total_conflicts,
                "per_sample_it_per_s": iters / t_per,
                "batched_auto_it_per_s": iters / t_auto,
                "batched_it_per_s": iters / t_block,
                "speedup_auto": t_per / t_auto,
                "speedup": t_per / t_block,
            }
        return payload

    payload = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = json.dumps(payload, indent=2, default=float)
    print("\n" + text)
    write_result("BENCH_async.json", text)
    ROOT_JSON.write_text(text + "\n")

    # Acceptance gate: the batched engine sustains >= 5x the per-sample
    # iteration throughput on the headline solver (typically ~7x here with
    # batch_size=2048 and ~6x with the auto block).
    assert payload["is_asgd"]["speedup"] >= 5.0
