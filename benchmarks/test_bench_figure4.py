"""Benchmark: regenerate Figure 4 (absolute convergence, wall-clock x-axis).

Paper reference (Figure 4 a-d): RMSE / error-rate versus wall-clock seconds
with the optimum-to-optimum markers (the red circle = ASGD's best error
rate, the blue dot = when IS-ASGD reaches that same value).  Wall-clock here
is the calibrated simulated time of the cost model (see DESIGN.md §5); the
*shape* claims checked are:

* IS-ASGD reaches ASGD's optimum at least as fast (speedup >= ~1, paper
  reports 1.13-1.54x);
* SVRG-ASGD, despite its per-epoch advantage, needs far longer wall-clock
  than IS-ASGD on sparse data (the News20 panel of Fig. 4a already shows
  this, and the effect grows with dimensionality).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.experiments.figures import figure4_data
from repro.experiments.report import render_figure_summary


@pytest.mark.benchmark(group="figure4")
def test_bench_figure4_panels(benchmark, figure_runner):
    """Build the Figure-4 panels, print the optimum markers and verify the shape."""
    panels = benchmark.pedantic(lambda: figure4_data(figure_runner), rounds=1, iterations=1)
    text = render_figure_summary(panels)
    print("\n" + text)
    write_result("figure4.txt", text)

    speedups = []
    for panel in panels:
        if "optimum_speedup" in panel.annotations:
            speedups.append(panel.annotations["optimum_speedup"])
    assert speedups, "at least some panels must yield an optimum-speedup marker"
    # IS-ASGD reaches ASGD's optimum at least about as fast, typically faster.
    assert float(np.median(speedups)) >= 0.9
    assert max(speedups) > 1.0


@pytest.mark.benchmark(group="figure4")
def test_bench_figure4_svrg_wall_clock_penalty(benchmark, figure_runner):
    """SVRG-ASGD's wall-clock per epoch dwarfs IS-ASGD's (Fig. 4a / Section 1.2)."""

    def per_epoch_costs():
        out = []
        for panel in figure4_data(figure_runner):
            if "svrg_asgd" not in panel.curves:
                continue
            svrg = panel.curves["svrg_asgd"]
            is_asgd = panel.curves["is_asgd"]
            out.append(
                (svrg.total_time / len(svrg), is_asgd.total_time / len(is_asgd))
            )
        return out

    costs = benchmark.pedantic(per_epoch_costs, rounds=1, iterations=1)
    assert costs
    for svrg_cost, is_cost in costs:
        assert svrg_cost > 5.0 * is_cost


@pytest.mark.benchmark(group="figure4")
def test_bench_figure4_wall_clock_shrinks_with_concurrency(benchmark, figure_runner):
    """More workers means less wall-clock per epoch for the lock-free solvers."""

    def total_times():
        out = {}
        for panel in figure4_data(figure_runner):
            out[(panel.dataset, panel.num_workers)] = panel.curves["is_asgd"].total_time
        return out

    times = benchmark.pedantic(total_times, rounds=1, iterations=1)
    datasets = {d for d, _ in times}
    for dataset in datasets:
        workers = sorted(w for d, w in times if d == dataset)
        series = [times[(dataset, w)] for w in workers]
        assert series[-1] < series[0]
