"""Benchmark: CLI sweep orchestration — cold training vs warm artifact reuse.

Drives the real ``python -m repro bench`` subcommand in a subprocess (so
argument parsing, config construction, the process-pool scheduler and the
artifact store are all on the measured path) over a reduced Figure-3/4/5
sweep.  The warm re-invocation must train *nothing* — that is the whole
point of the content-addressed store — and consequently be much faster
than the cold sweep; the gate asserts both.

Results are written to ``benchmarks/results/BENCH_cli.json`` and the
repository root ``BENCH_cli.json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from benchmarks.conftest import bench_environment, write_result

REPO_ROOT = Path(__file__).resolve().parent.parent
ROOT_JSON = REPO_ROOT / "BENCH_cli.json"

#: Reduced sweep: two datasets, two thread counts (12 training runs) —
#: large enough that training dominates the cold path, small enough for CI.
BENCH_ARGS = ["--config", "figures", "--datasets", "news20", "url",
              "--threads", "4", "8", "--epochs", "3", "--jobs", "0"]

#: The warm (all-cached) sweep must beat the cold (training) sweep by at
#: least this factor; measured values are far higher (loading JSON vs
#: training), the margin absorbs slow CI filesystems.
MIN_WARM_SPEEDUP = 3.0


def test_cli_sweep_warm_reuse_speedup(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    output = tmp_path / "bench.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "bench", *BENCH_ARGS,
         "--store", str(tmp_path / "store"), "--output", str(output)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    result = json.loads(output.read_text())
    result["environment"] = bench_environment()

    payload = json.dumps(result, indent=2)
    write_result("BENCH_cli.json", payload)
    ROOT_JSON.write_text(payload + "\n")

    # The cold pass trained every run; the warm pass trained none.
    assert result["cold_stats"]["trained"] == result["runs"]
    assert result["warm_stats"]["trained"] == 0
    assert result["warm_stats"]["reused"] == result["runs"]

    speedup = result["warm_speedup"]
    assert speedup is not None and speedup >= MIN_WARM_SPEEDUP, (
        f"warm sweep only {speedup:.1f}x faster than cold "
        f"(cold {result['cold_seconds']:.2f}s, warm {result['warm_seconds']:.2f}s); "
        f"expected >= {MIN_WARM_SPEEDUP}x"
    )
