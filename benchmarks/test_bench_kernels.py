"""Benchmark: the kernel layer's before/after per-iteration cost.

Measures the two hot paths the ``vectorized`` backend accelerates against
the ``reference`` (per-row Python loop) backend on the news20-smoke-scale
surrogate dataset:

* full-dataset metrics evaluation (RMSE + error rate), the dominant
  per-epoch cost of every convergence curve — one batched matvec vs ``n``
  row loops;
* one serial SGD epoch (the Algorithm-2 hot loop), fused raw-slice steps
  vs ``X.row`` → ``sample_grad`` → ``np.add.at``;
* ``AliasSampler`` construction (runs once per worker per epoch when
  sequences are regenerated), vectorized round-based build;
* the fused per-sample block (``run_sample_block``): the ``native``
  cffi-compiled C loop against the per-step Python loop, gated at >= 3x
  wherever the extension compiles (recorded, not asserted, elsewhere).

Results are written to ``benchmarks/results/BENCH_kernels.json`` and to the
repository root ``BENCH_kernels.json`` so the perf trajectory across PRs
has a recorded data point.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import bench_environment, write_result
from repro.core.sampler import AliasSampler
from repro.datasets.catalog import get_descriptor
from repro.datasets.synthetic import make_sparse_classification
from repro.kernels import make_backend
from repro.metrics.convergence import MetricsRecorder
from repro.objectives.logistic import LogisticObjective
from repro.objectives.regularizers import L1Regularizer
from repro.solvers.base import Problem
from repro.solvers.sgd import SGDSolver
from repro.utils.timer import measure_call

ROOT_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _bench_problem():
    spec = get_descriptor("news20_smoke").surrogate
    X, y, _ = make_sparse_classification(spec, seed=0)
    objective = LogisticObjective(regularizer=L1Regularizer(1e-4))
    return Problem(X=X, y=y, objective=objective, name=spec.name)


@pytest.mark.benchmark(group="kernels")
def test_bench_kernel_backends(benchmark):
    """Reference vs vectorized backend on metrics evaluation and SGD epochs."""

    def measure():
        problem = _bench_problem()
        X = problem.X
        n = problem.n_samples
        rng = np.random.default_rng(1)
        w = rng.normal(scale=0.1, size=problem.n_features)

        payload = {
            "dataset": {
                "name": problem.name,
                "n_samples": n,
                "n_features": problem.n_features,
                "nnz": X.nnz,
                "density": X.density,
            },
            "environment": bench_environment(),
        }

        # --- full-dataset metrics evaluation (one record() call) -------- #
        evals = {}
        for name in ("reference", "vectorized"):
            recorder = MetricsRecorder(
                problem.objective, X, problem.y, kernel=make_backend(name)
            )
            evals[name] = measure_call(lambda r=recorder: r.evaluate(w), repeats=5)
        payload["metrics_evaluation"] = {
            "reference_us": evals["reference"] * 1e6,
            "vectorized_us": evals["vectorized"] * 1e6,
            "speedup": evals["reference"] / evals["vectorized"],
        }

        # --- one serial SGD epoch (n per-sample steps) ------------------- #
        epochs = {}
        for name in ("reference", "vectorized", "native"):
            solver = SGDSolver(step_size=0.1, epochs=1, seed=0, kernel=name)
            epochs[name] = measure_call(lambda s=solver: s.fit(problem), repeats=5)
        payload["sgd_epoch"] = {
            "reference_us_per_iter": epochs["reference"] / n * 1e6,
            "vectorized_us_per_iter": epochs["vectorized"] / n * 1e6,
            "native_us_per_iter": epochs["native"] / n * 1e6,
            "speedup": epochs["reference"] / epochs["vectorized"],
            "native_speedup_vs_vectorized": epochs["vectorized"] / epochs["native"],
        }

        # --- fused per-sample block: C loop vs per-step Python loop ------ #
        native = make_backend("native")
        native_compiled = native.name == "native"
        order = rng.permutation(n).astype(np.int64)
        scales = np.full(n, -0.05)
        block = {}
        for name, backend in (("vectorized", make_backend("vectorized")), ("native", native)):
            block[name] = measure_call(
                lambda b=backend: b.run_sample_block(
                    w.copy(), problem.objective, X, problem.y, order, scales
                ),
                repeats=5,
            )
        payload["per_sample_block"] = {
            "native_compiled": native_compiled,
            "vectorized_us_per_iter": block["vectorized"] / n * 1e6,
            "native_us_per_iter": block["native"] / n * 1e6,
            "speedup": block["vectorized"] / block["native"],
            "gated_native": native_compiled,
        }
        if not native_compiled:
            payload["per_sample_block"]["note"] = (
                "native backend fell back to vectorized (no C compiler); the "
                ">=3x fused-loop gate needs the compiled extension and is "
                "enforced by the CI bench job — the ratio recorded here "
                "compares vectorized against itself"
            )

        # --- alias-table construction ------------------------------------ #
        p = np.exp(rng.normal(0.0, 1.5, size=100_000))
        p /= p.sum()
        build = measure_call(lambda: AliasSampler(p, seed=0), repeats=3)
        payload["alias_sampler_build"] = {"n": int(p.size), "ms": build * 1e3}
        return payload

    payload = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = json.dumps(payload, indent=2, default=float)
    print("\n" + text)
    write_result("BENCH_kernels.json", text)
    ROOT_JSON.write_text(text + "\n")

    # Acceptance gate: batched metrics evaluation is >= 5x the per-row loop
    # (typically ~30x here), and the fused SGD step is no slower than the
    # reference path (typically ~1.6x; 0.9 tolerates shared-runner jitter).
    assert payload["metrics_evaluation"]["speedup"] >= 5.0
    assert payload["sgd_epoch"]["speedup"] >= 0.9
    # Fused-loop gate: the native C per-sample block must sustain >= 3x the
    # vectorized (per-step Python) iteration throughput.  Only enforced
    # where the extension actually compiled; otherwise the numbers above
    # are recorded with ``gated_native: false`` and a note.
    if payload["per_sample_block"]["gated_native"]:
        assert payload["per_sample_block"]["speedup"] >= 3.0, (
            f"native fused per-sample block speedup "
            f"{payload['per_sample_block']['speedup']:.2f}x below the 3x gate"
        )
