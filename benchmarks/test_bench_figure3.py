"""Benchmark: regenerate Figure 3 (iterative convergence).

Paper reference (Figure 3 a-d): RMSE and error-rate versus *epoch* for SGD,
ASGD, IS-ASGD (and SVRG-ASGD on News20) at three concurrency levels on four
datasets.  The benchmark reruns the sweep on the smoke-scale surrogates and
checks the orderings the paper reports:

* IS-ASGD's per-epoch convergence is at least as good as ASGD's everywhere;
* ASGD is never meaningfully better than serial SGD per epoch;
* SVRG-ASGD (News20 only) has the best per-epoch convergence.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments.figures import figure3_data
from repro.experiments.report import render_figure_summary


@pytest.mark.benchmark(group="figure3")
def test_bench_figure3_panels(benchmark, figure_runner):
    """Build the Figure-3 panels from the shared sweep and verify orderings."""
    panels = benchmark.pedantic(lambda: figure3_data(figure_runner), rounds=1, iterations=1)
    text = render_figure_summary(panels)
    print("\n" + text)
    write_result("figure3.txt", text)

    assert len(panels) == 4 * 3  # 4 datasets x 3 concurrency levels
    for panel in panels:
        assert {"sgd", "asgd", "is_asgd"} <= set(panel.curves)
        is_asgd = panel.curves["is_asgd"]
        asgd = panel.curves["asgd"]
        sgd = panel.curves["sgd"]
        # Ordering claim 1: IS-ASGD per-epoch >= ASGD (final RMSE no worse).
        assert is_asgd.final_rmse <= asgd.final_rmse * 1.05
        # Ordering claim 2: ASGD is not better than serial SGD per epoch
        # (up to noise) — asynchrony cannot improve the iterative rate.
        assert asgd.final_rmse >= sgd.final_rmse * 0.9
        # All curves must end clearly below the at-initialisation objective
        # (RMSE of the zero model is sqrt(log 2) ~ 0.833 for the logistic loss).
        for curve in panel.curves.values():
            assert curve.best_rmse < 0.79


@pytest.mark.benchmark(group="figure3")
def test_bench_figure3_news20_svrg_iterative_rate(benchmark, figure_runner):
    """On News20 SVRG-ASGD achieves the best *iterative* convergence (Fig. 3a)."""
    panels = benchmark.pedantic(
        lambda: [p for p in figure3_data(figure_runner) if "svrg_asgd" in p.curves],
        rounds=1,
        iterations=1,
    )
    assert panels, "SVRG-ASGD runs expected on the News20 surrogate"
    for panel in panels:
        svrg = panel.curves["svrg_asgd"]
        asgd = panel.curves["asgd"]
        # Variance reduction should not lose to plain ASGD per epoch.
        assert svrg.final_rmse <= asgd.final_rmse * 1.05


@pytest.mark.benchmark(group="figure3")
def test_bench_figure3_is_gain_grows_with_lower_psi(benchmark, figure_runner):
    """The IS improvement over ASGD is larger on the low-ψ (KDD-like) surrogates
    than on the high-ψ News20 surrogate (Section 4.1)."""

    def gaps():
        panels = figure3_data(figure_runner)
        out = {}
        for panel in panels:
            gap = panel.curves["asgd"].final_rmse - panel.curves["is_asgd"].final_rmse
            out.setdefault(panel.dataset, []).append(gap)
        return {k: sum(v) / len(v) for k, v in out.items()}

    mean_gaps = benchmark.pedantic(gaps, rounds=1, iterations=1)
    print("\nmean RMSE gap (ASGD - IS-ASGD) per dataset:", mean_gaps)
    low_psi = 0.5 * (mean_gaps["kdd_algebra_smoke"] + mean_gaps["kdd_bridge_smoke"])
    high_psi = mean_gaps["news20_smoke"]
    assert low_psi >= high_psi - 0.02
