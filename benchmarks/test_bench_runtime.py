"""Benchmark: the refactored execution runtime must not cost performance.

The runtime layer replaced the four hand-written copies of every update
rule with one registered definition behind the backend registry.  This
benchmark guards the two ways that refactor could have regressed:

1. **Engine throughput** — the batched engine (now executing the shared
   rule) must keep sustaining at least 5x the per-sample iteration
   throughput on IS-ASGD, the same gate PR 2 introduced for the original
   hand-specialised rule.  This runs on a smaller surrogate than
   ``test_bench_async`` (which still gates the full-size workload) so the
   runtime suite stays cheap.
2. **Rule-dispatch overhead** — the cluster worker now reaches its math
   through ``rule.block_entry_weights`` (a Python method call with keyword
   packing per macro-block) instead of inlined arithmetic.  The fixed
   per-call cost of that boundary, multiplied by the number of blocks a
   4-worker epoch executes, must stay below 5% of the *measured* epoch
   wall-clock.  The per-call cost is measured on near-empty blocks (one
   sample), which upper-bounds the dispatch overhead because it charges the
   whole call — argument packing, method lookup, the kwarg dance and the
   singleton arithmetic — as if it were pure overhead.

Results go to ``benchmarks/results/BENCH_runtime.json`` and the repository
root ``BENCH_runtime.json``.  Gate 1 is always enforced; gate 2's epoch
time is only meaningful with >= 4 cores (the cluster convention), so below
that the measurement is recorded but the ratio is not asserted.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import bench_environment, write_result
from repro.cluster import ClusterDriver, available_parallelism
from repro.core.balancing import random_order
from repro.core.is_asgd import ISASGDSolver
from repro.core.partition import partition_dataset
from repro.datasets.synthetic import SyntheticSpec, make_sparse_classification
from repro.objectives.logistic import LogisticObjective
from repro.objectives.regularizers import L2Regularizer
from repro.rules import make_rule
from repro.solvers.base import Problem
from repro.utils.timer import measure_call

ROOT_JSON = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

#: Async-scale surrogate: big enough that per-iteration engine overhead
#: dominates, small enough that the runtime suite adds little CI time.
BENCH_SPEC = SyntheticSpec(
    n_samples=8_000,
    n_features=8_000,
    nnz_per_sample=30.0,
    feature_skew=1.2,
    norm_spread=0.8,
    label_noise=0.02,
    name="runtime_bench",
)

NUM_WORKERS = 8
EPOCHS = 1
BATCH_SIZE = 1024
SPEEDUP_GATE = 5.0

CLUSTER_WORKERS = 4
CLUSTER_EPOCHS = 3
DISPATCH_GATE = 0.05
REQUIRED_CORES = 4


def _bench_problem() -> Problem:
    X, y, _ = make_sparse_classification(BENCH_SPEC, seed=0)
    objective = LogisticObjective(regularizer=L2Regularizer(1e-4))
    return Problem(X=X, y=y, objective=objective, name=BENCH_SPEC.name)


def _timed_fit(solver_factory, problem):
    result = {}

    def call():
        result["fit"] = solver_factory().fit(problem)

    seconds = measure_call(call, repeats=2, warmup=0)
    return seconds, result["fit"]


@pytest.mark.benchmark(group="runtime")
def test_bench_runtime_engines_and_dispatch(benchmark):
    """Batched-vs-per-sample throughput + cluster rule-dispatch overhead."""

    def measure():
        problem = _bench_problem()
        payload = {
            "dataset": {
                "name": problem.name,
                "n_samples": problem.n_samples,
                "n_features": problem.n_features,
                "nnz": problem.X.nnz,
            },
            "config": {
                "num_workers": NUM_WORKERS,
                "epochs": EPOCHS,
                "batch_size": BATCH_SIZE,
                "speedup_gate": SPEEDUP_GATE,
                "cluster_workers": CLUSTER_WORKERS,
                "cluster_epochs": CLUSTER_EPOCHS,
                "dispatch_gate": DISPATCH_GATE,
            },
            "environment": bench_environment(),
        }

        # ---- gate 1: batched engine throughput on the shared rules ---- #
        def is_asgd(mode, **kw):
            return lambda: ISASGDSolver(
                step_size=0.1, epochs=EPOCHS, num_workers=NUM_WORKERS, seed=0,
                record_every=10, async_mode=mode, **kw,
            )

        t_per, r_per = _timed_fit(is_asgd("per_sample"), problem)
        t_block, r_block = _timed_fit(is_asgd("batched", batch_size=BATCH_SIZE), problem)
        iters = r_per.trace.total_iterations
        assert r_block.trace.total_iterations == iters
        assert r_block.trace.total_conflicts == r_per.trace.total_conflicts
        payload["is_asgd"] = {
            "iterations": iters,
            "per_sample_it_per_s": iters / t_per,
            "batched_it_per_s": iters / t_block,
            "speedup": t_per / t_block,
        }

        # ---- gate 2: rule-dispatch overhead on a 4-worker cluster epoch -- #
        X, y, objective = problem.X, problem.y, problem.objective
        L = problem.lipschitz_constants()
        order = random_order(X.n_rows, seed=0)
        partition = partition_dataset(order, L, CLUSTER_WORKERS, scheme="uniform")
        driver = ClusterDriver(X, y, objective, partition, step_size=0.1, seed=0)
        run = driver.run(CLUSTER_EPOCHS)
        # Steady-state epoch (start-up epoch excluded, cluster convention).
        epoch_seconds = (
            float(np.mean(run.epoch_seconds[1:]))
            if len(run.epoch_seconds) > 1
            else float(run.epoch_seconds[0])
        )
        iters_per_epoch = run.trace.epochs[-1].iterations
        block = driver.resolved_batch_size(
            max(1, X.n_rows // CLUSTER_WORKERS)
        )
        blocks_per_epoch = int(np.ceil(iters_per_epoch / block))

        # Fixed per-call cost of the rule boundary: a one-sample block
        # charges the entire call (kwarg packing, dispatch, singleton math)
        # as overhead — an upper bound on what the refactor added per block.
        rule = make_rule("sgd", objective, 0.1)
        w = np.zeros(X.n_cols)
        rows = np.array([0], dtype=np.int64)
        idx, val, lengths = X.gather_rows(rows)
        margins = np.zeros(1)
        step_weights = np.ones(1)
        y_rows = y[rows]
        calls = 2000
        start = time.perf_counter()
        for _ in range(calls):
            rule.block_entry_weights(
                w=w, rows=rows, y=y_rows, margins=margins,
                step_weights=step_weights, idx=idx, val=val, lengths=lengths,
            )
        per_call = (time.perf_counter() - start) / calls
        # Workers pay their dispatch cost concurrently: with enough cores a
        # wall-clock epoch absorbs only blocks/workers calls per lane, while
        # under time-sharing every call lands on the single lane.  Dividing
        # by the concurrency actually available keeps the fraction
        # comparable across machines.
        lanes = max(1, min(available_parallelism(), CLUSTER_WORKERS))
        dispatch_fraction = (per_call * blocks_per_epoch) / (
            max(epoch_seconds, 1e-12) * lanes
        )

        payload["cluster_dispatch"] = {
            "epoch_seconds": round(epoch_seconds, 6),
            "iterations_per_epoch": int(iters_per_epoch),
            "block_size": int(block),
            "blocks_per_epoch": blocks_per_epoch,
            "per_call_seconds": per_call,
            "parallel_lanes": lanes,
            "dispatch_fraction": dispatch_fraction,
        }
        return payload

    payload = benchmark.pedantic(measure, rounds=1, iterations=1)
    cores = payload["environment"]["available_parallelism"]
    payload["gated_dispatch"] = cores >= REQUIRED_CORES
    if not payload["gated_dispatch"]:
        payload["note"] = (
            f"cluster epoch measured under time-sharing on {cores} core(s); "
            f"the dispatch-fraction gate needs >= {REQUIRED_CORES} cores and "
            "is enforced by the CI bench job"
        )
    text = json.dumps(payload, indent=2, default=float)
    print("\n" + text)
    write_result("BENCH_runtime.json", text)
    ROOT_JSON.write_text(text + "\n")

    # Gate 1: no regression vs the PR 2 batched-engine gate.
    assert payload["is_asgd"]["speedup"] >= SPEEDUP_GATE
    # Gate 2: rule dispatch adds < 5% to a 4-worker cluster epoch (cores
    # permitting; the measurement is recorded either way).
    if payload["gated_dispatch"]:
        assert payload["cluster_dispatch"]["dispatch_fraction"] < DISPATCH_GATE
