"""Conflict-graph construction and degree statistics.

Two data samples conflict when their feature supports intersect (they would
race on at least one model coordinate under lock-free updates).  Building
the full graph is quadratic in the worst case, so besides the exact
construction (fine up to a few thousand samples) the module offers an
unbiased sampling estimator of the average degree Δ̄ that scales to the
large surrogate datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.utils.rng import RandomState, as_rng


def pairwise_conflicts(X: CSRMatrix, i: int, j: int) -> bool:
    """Whether samples ``i`` and ``j`` share at least one feature."""
    idx_i, _ = X.row(i)
    idx_j, _ = X.row(j)
    if idx_i.size == 0 or idx_j.size == 0:
        return False
    # Row indices are sorted in canonical CSR layout; intersect1d handles both cases.
    return bool(np.intersect1d(idx_i, idx_j, assume_unique=False).size > 0)


def build_conflict_graph(X: CSRMatrix, *, max_rows: Optional[int] = 4000):
    """Build the exact conflict graph as a :class:`networkx.Graph`.

    The construction iterates features and connects all samples sharing a
    feature (clique per feature), which is much faster than the naive
    pairwise check for sparse data.  Guarded by ``max_rows`` because the
    graph itself can be quadratic in size for dense datasets.
    """
    import networkx as nx

    if max_rows is not None and X.n_rows > max_rows:
        raise ValueError(
            f"refusing to build the exact conflict graph for {X.n_rows} rows "
            f"(limit {max_rows}); use estimate_average_degree instead"
        )
    graph = nx.Graph()
    graph.add_nodes_from(range(X.n_rows))
    # Invert the matrix: feature -> rows touching it.
    rows_by_feature: dict[int, list[int]] = {}
    for i in range(X.n_rows):
        idx, _ = X.row(i)
        for f in idx:
            rows_by_feature.setdefault(int(f), []).append(i)
    for rows in rows_by_feature.values():
        if len(rows) < 2:
            continue
        anchor = rows[0]
        # Adding a clique can be quadratic; for degree statistics connecting
        # every pair is required, so we do add the full clique but bail out
        # for absurdly hot features to keep memory bounded.
        if len(rows) > 2000:
            rows = rows[:2000]
        for a_pos in range(len(rows)):
            for b_pos in range(a_pos + 1, len(rows)):
                graph.add_edge(rows[a_pos], rows[b_pos])
    return graph


def average_conflict_degree(X: CSRMatrix, *, max_rows: Optional[int] = 4000) -> float:
    """Exact average degree Δ̄ of the conflict graph."""
    graph = build_conflict_graph(X, max_rows=max_rows)
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    return 2.0 * graph.number_of_edges() / n


def estimate_average_degree(
    X: CSRMatrix,
    *,
    sample_size: int = 200,
    seed: RandomState = 0,
) -> float:
    """Monte-Carlo estimate of the average conflict degree Δ̄.

    For each of ``sample_size`` uniformly chosen anchor rows the exact
    degree is computed by marking the features of the anchor and counting
    how many other rows touch any marked feature; the mean over anchors is
    an unbiased estimator of Δ̄.
    """
    if X.n_rows == 0:
        return 0.0
    rng = as_rng(seed)
    sample_size = min(sample_size, X.n_rows)
    anchors = rng.choice(X.n_rows, size=sample_size, replace=False)

    # Precompute column -> rows map lazily using the transpose trick.
    col_rows: dict[int, np.ndarray] = {}
    row_of_entry = np.repeat(np.arange(X.n_rows), np.diff(X.indptr))
    order = np.argsort(X.indices, kind="stable")
    sorted_cols = X.indices[order]
    sorted_rows = row_of_entry[order]
    boundaries = np.searchsorted(sorted_cols, np.arange(X.n_cols + 1))

    degrees = np.empty(anchors.size, dtype=np.float64)
    for k, anchor in enumerate(anchors):
        idx, _ = X.row(int(anchor))
        if idx.size == 0:
            degrees[k] = 0.0
            continue
        neighbours: Set[int] = set()
        for f in idx:
            f = int(f)
            lo, hi = boundaries[f], boundaries[f + 1]
            neighbours.update(sorted_rows[lo:hi].tolist())
        neighbours.discard(int(anchor))
        degrees[k] = float(len(neighbours))
    return float(degrees.mean())


@dataclass
class ConflictGraphStats:
    """Summary of a dataset's conflict structure."""

    n_samples: int
    average_degree: float
    normalized_degree: float
    method: str

    @property
    def tau_bound_structural(self) -> float:
        """The structural part of Eq. 27's delay bound: ``n / Δ̄``."""
        if self.average_degree <= 0.0:
            return float("inf")
        return self.n_samples / self.average_degree


def conflict_graph_stats(
    X: CSRMatrix,
    *,
    exact_threshold: int = 1500,
    sample_size: int = 200,
    seed: RandomState = 0,
) -> ConflictGraphStats:
    """Compute Δ̄ exactly for small datasets and by sampling otherwise."""
    if X.n_rows <= exact_threshold:
        degree = average_conflict_degree(X, max_rows=exact_threshold)
        method = "exact"
    else:
        degree = estimate_average_degree(X, sample_size=sample_size, seed=seed)
        method = "sampled"
    normalized = degree / X.n_rows if X.n_rows else 0.0
    return ConflictGraphStats(
        n_samples=X.n_rows,
        average_degree=degree,
        normalized_degree=normalized,
        method=method,
    )


__all__ = [
    "pairwise_conflicts",
    "build_conflict_graph",
    "average_conflict_degree",
    "estimate_average_degree",
    "ConflictGraphStats",
    "conflict_graph_stats",
]
