"""Greedy colouring of the conflict graph.

A proper colouring of the conflict graph groups the samples into colour
classes whose members never share a feature: updates within one class can
be applied in parallel with *zero* conflicts.  This is not part of the
paper's algorithm — it is the classical conflict-free alternative to
Hogwild's "just race" approach — and is included as an extension used by
the ablation benchmarks to quantify how far from conflict-free the
lock-free execution really is.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.graph.conflict import build_conflict_graph
from repro.sparse.csr import CSRMatrix


def greedy_conflict_coloring(X: CSRMatrix, *, max_rows: int = 2000) -> Dict[int, int]:
    """Colour the conflict graph greedily (largest-degree-first order).

    Returns a mapping ``row -> colour``.  The number of distinct colours is
    an upper bound on the chromatic number; for very sparse datasets it is
    typically tiny, confirming the paper's premise that sufficiently sparse
    data rarely conflicts.
    """
    import networkx as nx

    graph = build_conflict_graph(X, max_rows=max_rows)
    coloring = nx.coloring.greedy_color(graph, strategy="largest_first")
    # Ensure every row (including isolated ones) has a colour.
    for i in range(X.n_rows):
        coloring.setdefault(i, 0)
    return {int(k): int(v) for k, v in coloring.items()}


def color_class_sizes(coloring: Dict[int, int]) -> List[int]:
    """Sizes of the colour classes, sorted descending."""
    if not coloring:
        return []
    counts = np.bincount(np.asarray(list(coloring.values()), dtype=np.int64))
    return sorted((int(c) for c in counts if c > 0), reverse=True)


def num_colors(coloring: Dict[int, int]) -> int:
    """Number of distinct colours used."""
    if not coloring:
        return 0
    return len(set(coloring.values()))


__all__ = ["greedy_conflict_coloring", "color_class_sizes", "num_colors"]
