"""Conflict-graph substrate.

Section 3.1 of the paper bounds the asynchrony error terms through two
quantities defined on the *conflict graph* of the dataset: vertices are
samples, and two samples are connected iff their feature supports overlap.
The average degree Δ̄ measures the dataset's intrinsic potential for
conflicting lock-free updates; the delay τ must satisfy
``τ = O(min{n/Δ̄, ...})`` (Eq. 27) for the noise term to stay an order-wise
constant.
"""

from repro.graph.conflict import (
    ConflictGraphStats,
    average_conflict_degree,
    build_conflict_graph,
    conflict_graph_stats,
    estimate_average_degree,
    pairwise_conflicts,
)
from repro.graph.coloring import greedy_conflict_coloring

__all__ = [
    "ConflictGraphStats",
    "build_conflict_graph",
    "average_conflict_degree",
    "estimate_average_degree",
    "conflict_graph_stats",
    "pairwise_conflicts",
    "greedy_conflict_coloring",
]
