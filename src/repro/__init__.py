"""repro — a reproduction of "IS-ASGD: Accelerating Asynchronous SGD using
Importance Sampling" (Wang et al., ICPP 2018).

The package implements the paper's contribution (importance-sampled
asynchronous SGD with importance balancing) together with every substrate
it depends on: a sparse-matrix container and kernels, objective functions,
synthetic dataset surrogates, serial and asynchronous baseline solvers, a
perturbed-iterate asynchrony simulator with a calibrated cost model, the
conflict-graph and convergence-theory tooling, and an experiment harness
that regenerates each table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import load_dataset, LogisticObjective, Problem, ISASGDSolver, ISASGDConfig
>>> ds = load_dataset("news20_smoke", seed=0)
>>> problem = Problem(X=ds.X, y=ds.y, objective=LogisticObjective.l1_regularized(1e-4))
>>> solver = ISASGDSolver(ISASGDConfig(step_size=0.5, epochs=3, num_workers=4))
>>> result = solver.fit(problem)
>>> result.best_error_rate <= 0.5
True
"""

from repro.core import ISASGDConfig, ISASGDSolver
from repro.core.balancing import BalancingDecision, balance_dataset
from repro.core.importance import ImportanceScheme, lipschitz_probabilities
from repro.core.sampler import AliasSampler, SampleSequence
from repro.datasets import Dataset, load_dataset
from repro.objectives import (
    HingeObjective,
    LeastSquaresObjective,
    LogisticObjective,
    SquaredHingeObjective,
    make_objective,
)
from repro.rules import UpdateRuleKernel, available_rules, make_rule
from repro.runtime import ExecutionRequest, ExecutionResult, capability_matrix
from repro.solvers import (
    ASGDSolver,
    ISSGDSolver,
    Problem,
    SAGAASGDSolver,
    SAGASolver,
    SGDSolver,
    SVRGASGDSolver,
    SVRGSolver,
    TrainResult,
    make_solver,
)
from repro.sparse import CSRMatrix, load_libsvm
from repro.async_engine import CostModel
from repro.cluster import ClusterCostModel, ClusterDriver

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ISASGDSolver",
    "ISASGDConfig",
    "ImportanceScheme",
    "BalancingDecision",
    "balance_dataset",
    "lipschitz_probabilities",
    "AliasSampler",
    "SampleSequence",
    # data
    "Dataset",
    "load_dataset",
    "CSRMatrix",
    "load_libsvm",
    # objectives
    "LogisticObjective",
    "SquaredHingeObjective",
    "HingeObjective",
    "LeastSquaresObjective",
    "make_objective",
    # solvers
    "Problem",
    "TrainResult",
    "SGDSolver",
    "ISSGDSolver",
    "SVRGSolver",
    "SAGASolver",
    "ASGDSolver",
    "SVRGASGDSolver",
    "SAGAASGDSolver",
    "make_solver",
    # runtime (rules × backends)
    "UpdateRuleKernel",
    "available_rules",
    "make_rule",
    "ExecutionRequest",
    "ExecutionResult",
    "capability_matrix",
    # engine
    "CostModel",
    # cluster (true multi-process execution)
    "ClusterDriver",
    "ClusterCostModel",
]
