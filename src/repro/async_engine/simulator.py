"""The perturbed-iterate asynchronous execution simulator.

The simulator interleaves the iterations of ``num_workers`` simulated
workers against one :class:`~repro.async_engine.shared_model.SharedModel`.
Each iteration:

1. the scheduler picks the next worker (randomised round-robin);
2. the worker provides its next sample and importance re-weighting factor;
3. the worker *reads* the model coordinates on the sample's support with a
   random staleness drawn from the staleness model — this is the perturbed
   iterate ``ŵ_t = w_t + θ_t`` of Section 3.1;
4. the update rule computes the index-compressed (plus optionally dense)
   update from the stale view;
5. the update is applied atomically to the shared model and the conflict /
   operation counters are folded into the epoch trace through
   :mod:`repro.runtime.trace_fold`.

The simulator is solver-agnostic: it executes any
:class:`~repro.rules.base.UpdateRuleKernel` (or any object satisfying the
:class:`UpdateRule` protocol) through the rule's scalar entry point, and
invokes the rule's epoch hooks around every epoch — SVRG's snapshot sync
and SAGA's table initialisation run here without the simulator knowing
either rule exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace, IterationEvent
from repro.async_engine.shared_model import SharedModel
from repro.async_engine.staleness import StalenessModel, UniformDelay
from repro.async_engine.worker import SimulatedWorker
from repro.kernels.base import KernelBackend
from repro.kernels.registry import resolve_backend
from repro.runtime.trace_fold import build_schedule, fold_iteration
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import RandomState, as_rng


class UpdateRule(Protocol):
    """Computes one model update from a (possibly stale) coordinate view.

    :class:`~repro.rules.base.UpdateRuleKernel` satisfies this protocol via
    its derived scalar entry point; ad-hoc rules only need
    ``compute_update`` (and may expose ``dense_delta`` /
    ``grad_nnz_multiplier`` / epoch hooks for the richer behaviours).
    """

    def compute_update(
        self,
        stale_coords: np.ndarray,
        x_idx: np.ndarray,
        x_val: np.ndarray,
        y: float,
        step_weight: float,
        row: int = 0,
    ) -> Tuple[np.ndarray, int]:
        """Return ``(delta_values, dense_coordinate_count)``.

        ``delta_values`` are the additive changes for the coordinates
        ``x_idx`` (already scaled by the step size and importance weight);
        ``dense_coordinate_count`` is the number of *additional* dense
        coordinates the iteration touched.  When it is non-zero and the
        rule exposes a non-``None`` ``dense_delta`` vector, the simulator
        applies that dense update (before the sparse one) and logs it as
        its own update record.
        """
        ...


@dataclass
class SimulationResult:
    """Outcome of :meth:`AsyncSimulator.run`."""

    weights: np.ndarray
    trace: ExecutionTrace
    epoch_weights: Optional[List[np.ndarray]] = None


@dataclass
class AsyncSimulator:
    """Simulated lock-free execution of asynchronous SGD-style solvers.

    Parameters
    ----------
    X, y:
        The full design matrix and labels (workers index into them by
        global row index).
    workers:
        The simulated workers (shards + sequences), one per thread.
    update_rule:
        The solver-specific update computation.
    staleness:
        Delay model; defaults to ``UniformDelay(num_workers)``.
    seed:
        Seed for the scheduler interleaving and delay draws.
    kernel:
        Kernel backend handed to rule epoch hooks (snapshot margins, table
        initialisation); instance, registry name or ``None`` for the
        configured default.
    count_sample_draws:
        Whether each iteration counts as one weighted sample draw in the
        trace; ``None`` defers to the rule's ``counts_sample_draws``.
    record_iterations:
        Keep per-iteration events (memory-heavy; tests only).
    epoch_callback:
        Optional callable invoked after every epoch with
        ``(epoch_index, model_snapshot)`` — used by solvers to record
        convergence metrics without re-implementing the loop.
    history:
        Size of the shared model's bounded update history; defaults to
        ``max(max_delay, 1) * num_workers`` (capped at 4096), which is
        always large enough for the configured staleness model.  Smaller
        overrides make stale reads reconstruct from a truncated window —
        explicitly clamped and surfaced as ``history_overflows`` on the
        trace.
    """

    X: CSRMatrix
    y: np.ndarray
    workers: List[SimulatedWorker]
    update_rule: UpdateRule
    staleness: Optional[StalenessModel] = None
    seed: RandomState = 0
    kernel: Union[KernelBackend, str, None] = None
    count_sample_draws: Optional[bool] = None
    record_iterations: bool = False
    epoch_callback: Optional[Callable[[int, np.ndarray], None]] = None
    history: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.workers:
            raise ValueError("at least one worker is required")
        if self.y.shape[0] != self.X.n_rows:
            raise ValueError("X and y row counts differ")
        self._rng = as_rng(self.seed)
        if self.staleness is None:
            self.staleness = UniformDelay(max(len(self.workers) - 1, 0))
        self.kernel = resolve_backend(self.kernel)
        if self.count_sample_draws is None:
            self.count_sample_draws = bool(
                getattr(self.update_rule, "counts_sample_draws", True)
            )
        self._model: Optional[SharedModel] = None

    @property
    def num_workers(self) -> int:
        """Number of simulated workers."""
        return len(self.workers)

    # ------------------------------------------------------------------ #
    # EngineFacade surface (rule epoch hooks)
    # ------------------------------------------------------------------ #
    @property
    def weights(self) -> np.ndarray:
        """Snapshot of the live model (hooks may read it)."""
        if self._model is None:
            raise RuntimeError("weights are only available while run() is active")
        return self._model.snapshot()

    @property
    def inner_iterations(self) -> int:
        """Inner iterations per epoch (all workers combined)."""
        return sum(w.iterations_per_epoch for w in self.workers)

    def apply_dense_update(self, delta: np.ndarray, *, worker_id: int = -1) -> None:
        """Apply ``w += delta`` as one logged dense update record."""
        if self._model is None:
            raise RuntimeError("apply_dense_update is only valid while run() is active")
        self._model.apply_dense_update(delta, worker_id=worker_id)

    # ------------------------------------------------------------------ #
    def run(
        self,
        epochs: int,
        *,
        initial_weights: Optional[np.ndarray] = None,
        reshuffle: bool = True,
        regenerate: bool = False,
        keep_epoch_weights: bool = False,
    ) -> SimulationResult:
        """Simulate ``epochs`` passes of asynchronous execution.

        Parameters
        ----------
        epochs:
            Number of epochs; every epoch each worker consumes its full
            sample sequence.
        initial_weights:
            Starting model (zeros by default).
        reshuffle / regenerate:
            Per-epoch sequence refresh policy forwarded to the workers.
        keep_epoch_weights:
            Store a snapshot of the model after every epoch in the result.
        """
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.history is not None:
            history = int(self.history)
        else:
            history = max(self.staleness.max_delay, 1) * max(self.num_workers, 1)
        model = SharedModel(self.X.n_cols, history=min(history, 4096), initial=initial_weights)
        self._model = model
        rule = self.update_rule
        epoch_begin = getattr(rule, "epoch_begin", None)
        epoch_end = getattr(rule, "epoch_end", None)

        trace = ExecutionTrace(iterations=[] if self.record_iterations else None)
        epoch_weights: List[np.ndarray] = []
        global_step = 0

        try:
            for epoch in range(epochs):
                event = EpochEvent(epoch=epoch)
                if epoch_begin is not None:
                    epoch_begin(self, epoch, event)
                if epoch > 0:
                    for worker in self.workers:
                        worker.start_epoch(reshuffle=reshuffle, regenerate=regenerate)
                schedule = build_schedule(self.workers, self._rng)
                worker_by_id = {w.worker_id: w for w in self.workers}

                for wid in schedule:
                    worker = worker_by_id[int(wid)]
                    global_row, _local, step_weight = worker.next_sample()
                    x_idx, x_val = self.X.row(global_row)
                    delay = self.staleness.draw(self._rng)
                    overflow_before = model.history_overflow
                    stale_coords, conflicts = model.read_stale(
                        x_idx, delay, writer_id=worker.worker_id
                    )
                    overflowed = model.history_overflow - overflow_before
                    delta_values, dense_coords = rule.compute_update(
                        stale_coords, x_idx, x_val, float(self.y[global_row]), step_weight,
                        row=global_row,
                    )
                    if dense_coords:
                        dense_delta = getattr(rule, "dense_delta", None)
                        if dense_delta is not None:
                            model.apply_dense_update(dense_delta, worker_id=worker.worker_id)
                    model.apply_update(x_idx, delta_values, worker_id=worker.worker_id)

                    fold_iteration(
                        event,
                        rule,
                        nnz=int(x_idx.size),
                        dense_coords=int(dense_coords),
                        conflicts=conflicts,
                        delay=delay,
                        drew_sample=self.count_sample_draws,
                        history_overflow=overflowed,
                    )
                    if self.record_iterations and trace.iterations is not None:
                        trace.iterations.append(
                            IterationEvent(
                                global_step=global_step,
                                worker_id=worker.worker_id,
                                sample_index=global_row,
                                delay=delay,
                                conflicts=conflicts,
                                grad_nnz=int(x_idx.size),
                                step_scale=step_weight,
                            )
                        )
                    global_step += 1

                if epoch_end is not None:
                    epoch_end(self, epoch, event)
                trace.add_epoch(event)
                snapshot = model.snapshot()
                if keep_epoch_weights:
                    epoch_weights.append(snapshot)
                if self.epoch_callback is not None:
                    self.epoch_callback(epoch, snapshot)
        finally:
            self._model = None

        return SimulationResult(
            weights=model.snapshot(),
            trace=trace,
            epoch_weights=epoch_weights if keep_epoch_weights else None,
        )


__all__ = ["AsyncSimulator", "SimulationResult", "UpdateRule"]
