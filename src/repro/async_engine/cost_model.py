"""Simulated wall-clock cost model.

The paper's absolute-convergence results (Figures 4 and 5) depend on two
performance facts rather than on any property of the authors' particular
Xeon testbed:

1. an index-compressed sparse update costs ``O(nnz)`` while SVRG's
   variance-reduced update costs ``O(d)`` because of the dense true-gradient
   term µ (Figure 1) — five to seven orders of magnitude more for the KDD
   datasets;
2. lock-free workers scale nearly linearly with the thread count, degraded
   by a small penalty that grows with the update-conflict rate.

:class:`CostModel` encodes exactly those two facts.  Per-coordinate costs
can be calibrated against the real NumPy kernels on the host machine
(:meth:`CostModel.calibrated`), so the simulated seconds are grounded in
measured constants while remaining deterministic and hardware-independent
for a fixed parameter set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.utils.timer import measure_call
from repro.utils.validation import check_positive


@dataclass
class CostParameters:
    """Per-operation cost constants (in seconds).

    Attributes
    ----------
    sparse_coord_cost:
        Cost of touching one coordinate in an index-compressed update
        (gradient scale + scatter add).
    dense_coord_cost:
        Cost of touching one coordinate in a dense full-length vector
        operation (SVRG's µ add); slightly cheaper per coordinate than the
        sparse path because it is a contiguous streaming operation.
    iteration_overhead:
        Fixed per-iteration cost (margin computation bookkeeping, RNG,
        loop overhead).
    sample_draw_cost:
        Cost of drawing one weighted sample / sequence entry (the IS
        overhead the paper bounds at 1.1-7.7 %).
    conflict_penalty:
        Multiplicative slowdown per unit conflict rate: effective parallel
        efficiency is ``base / (1 + conflict_penalty * conflict_rate)``.
        The conflict rate counts how many concurrent updates a read missed,
        so a rate of 1-3 is normal on datasets with hot features; the
        penalty models cache-line contention, which is mild per conflict —
        the default reproduces the paper's observed 25-55 % parallel
        efficiency at 16-44 threads.
    base_parallel_efficiency:
        Parallel efficiency at negligible conflict rate (memory-bandwidth
        and scheduling losses).
    """

    sparse_coord_cost: float = 8e-9
    dense_coord_cost: float = 2e-9
    iteration_overhead: float = 1.2e-7
    # Matches the measured cost of one alias-method draw (~15-20 ns, see
    # benchmarks/test_bench_sampler.py).
    sample_draw_cost: float = 1.5e-8
    conflict_penalty: float = 0.15
    base_parallel_efficiency: float = 0.85

    def __post_init__(self) -> None:
        check_positive(self.sparse_coord_cost, "sparse_coord_cost")
        check_positive(self.dense_coord_cost, "dense_coord_cost")
        check_positive(self.iteration_overhead, "iteration_overhead", strict=False)
        check_positive(self.sample_draw_cost, "sample_draw_cost", strict=False)
        check_positive(self.conflict_penalty, "conflict_penalty", strict=False)
        if not 0.0 < self.base_parallel_efficiency <= 1.0:
            raise ValueError("base_parallel_efficiency must be in (0, 1]")


class CostModel:
    """Translate an :class:`~repro.async_engine.events.ExecutionTrace` into seconds."""

    def __init__(self, params: Optional[CostParameters] = None) -> None:
        self.params = params or CostParameters()

    # ------------------------------------------------------------------ #
    # Per-unit costs
    # ------------------------------------------------------------------ #
    def iteration_compute_time(
        self, grad_nnz: int, dense_coords: int = 0, *, sample_draws: int = 1
    ) -> float:
        """Serial compute time of one iteration."""
        p = self.params
        return (
            p.iteration_overhead
            + p.sparse_coord_cost * grad_nnz
            + p.dense_coord_cost * dense_coords
            + p.sample_draw_cost * sample_draws
        )

    def epoch_serial_time(self, epoch: EpochEvent, *, include_sampling: bool = True) -> float:
        """Total serial compute time of one epoch's iterations."""
        p = self.params
        total = (
            p.iteration_overhead * epoch.iterations
            + p.sparse_coord_cost * epoch.sparse_coordinate_updates
            + p.dense_coord_cost * epoch.dense_coordinate_updates
        )
        if include_sampling:
            total += p.sample_draw_cost * epoch.sample_draws
        return total

    def parallel_efficiency(self, conflict_rate: float, num_workers: int) -> float:
        """Parallel efficiency as a function of the observed conflict rate."""
        if num_workers <= 1:
            return 1.0
        p = self.params
        return p.base_parallel_efficiency / (1.0 + p.conflict_penalty * max(conflict_rate, 0.0))

    def epoch_wall_clock(
        self, epoch: EpochEvent, num_workers: int, *, include_sampling: bool = True
    ) -> float:
        """Wall-clock seconds of one epoch executed by ``num_workers`` workers."""
        serial = self.epoch_serial_time(epoch, include_sampling=include_sampling)
        if num_workers <= 1:
            return serial
        eff = self.parallel_efficiency(epoch.conflict_rate, num_workers)
        return serial / (num_workers * eff)

    def trace_wall_clock(
        self, trace: ExecutionTrace, num_workers: int, *, include_sampling: bool = True
    ) -> np.ndarray:
        """Cumulative wall-clock (seconds) at the end of every epoch of a trace."""
        times = [
            self.epoch_wall_clock(e, num_workers, include_sampling=include_sampling)
            for e in trace.epochs
        ]
        return np.cumsum(np.asarray(times, dtype=np.float64))

    # ------------------------------------------------------------------ #
    # Calibration against the real kernels
    # ------------------------------------------------------------------ #
    @classmethod
    def calibrated(
        cls,
        *,
        dim: int = 100_000,
        nnz: int = 64,
        repeats: int = 3,
        conflict_penalty: float = 0.15,
        base_parallel_efficiency: float = 0.85,
    ) -> "CostModel":
        """Measure per-coordinate costs of the actual NumPy kernels on this host.

        The measured constants replace the defaults; the parallel-scaling
        parameters cannot be measured under the GIL and keep their supplied
        values.
        """
        rng = np.random.default_rng(0)
        w = np.zeros(dim)
        idx = rng.choice(dim, size=nnz, replace=False).astype(np.int64)
        val = rng.normal(size=nnz)
        dense = rng.normal(size=dim)

        def sparse_kernel() -> None:
            np.add.at(w, idx, 0.1 * val)

        def dense_kernel() -> None:
            w_local = w
            w_local += 1e-9 * dense

        sparse_t = measure_call(sparse_kernel, repeats=repeats) / nnz
        dense_t = measure_call(dense_kernel, repeats=repeats) / dim

        probs = np.full(1024, 1.0 / 1024)

        def draw_kernel() -> None:
            rng.choice(1024, size=256, p=probs)

        draw_t = measure_call(draw_kernel, repeats=repeats) / 256

        params = CostParameters(
            sparse_coord_cost=max(sparse_t, 1e-10),
            dense_coord_cost=max(dense_t, 1e-11),
            iteration_overhead=max(2.0 * sparse_t, 1e-9),
            sample_draw_cost=max(draw_t, 1e-10),
            conflict_penalty=conflict_penalty,
            base_parallel_efficiency=base_parallel_efficiency,
        )
        return cls(params)

    # ------------------------------------------------------------------ #
    # Paper's Figure 1 argument
    # ------------------------------------------------------------------ #
    def sparse_dense_cost_ratio(self, grad_nnz: int, dim: int) -> float:
        """Ratio of a dense (SVRG-style) update cost to a sparse update cost.

        For the paper's KDD datasets ``grad_nnz / dim ≈ 1e-7``, so this ratio
        is of the order 10⁵–10⁶ — the quantitative core of the Figure 1
        argument for why SVRG-ASGD cannot win on wall-clock.
        """
        sparse = self.iteration_compute_time(grad_nnz, 0, sample_draws=0)
        dense = self.iteration_compute_time(grad_nnz, dim, sample_draws=0)
        return dense / sparse


__all__ = ["CostParameters", "CostModel"]
