"""Async execution-mode registry (mirrors ``kernels/registry.py``).

The asynchronous solvers can run their execution through four engines:

* ``"per_sample"`` — the original :class:`~repro.async_engine.simulator.AsyncSimulator`
  (one Python-level iteration per update); it is the *ground truth* the
  batched engine is pinned against, exactly as the ``reference`` kernel
  backend anchors the ``vectorized`` one.
* ``"batched"`` — the :class:`~repro.async_engine.batched.BatchedSimulator`
  macro-step fast path dispatching through the kernel backend's batch
  primitives.
* ``"threads"`` — the real lock-free :mod:`repro.async_engine.threads`
  backend: genuine unsynchronised updates from Python threads (functional
  validation; the GIL prevents real speedup).
* ``"process"`` — the :mod:`repro.cluster` tier: true multi-process
  workers over a sharded ``multiprocessing.shared_memory`` parameter
  server, with *measured* wall-clock/staleness/conflict accounting.  The
  only mode whose throughput scales with physical cores.

The simulated modes are deterministic given a seed; ``threads`` and
``process`` are real concurrent executions (scheduling decides the
interleaving), validated by tolerance rather than trace equality.

The active mode is resolved in priority order:

1. an explicit ``async_mode`` argument passed to a solver;
2. the process-wide default set via :func:`set_default_async_mode`;
3. the ``REPRO_ASYNC_MODE`` environment variable;
4. the built-in default, ``"per_sample"`` (trace-exact ground truth).
"""

from __future__ import annotations

import os
from typing import List, Optional

#: Environment variable consulted when no explicit mode is configured.
ASYNC_MODE_ENV_VAR = "REPRO_ASYNC_MODE"

#: The built-in default execution mode.
DEFAULT_ASYNC_MODE = "per_sample"

_MODES = ("per_sample", "batched", "threads", "process")

#: One-line description per mode (surfaced by ``python -m repro list`` and
#: the generated ``docs/reference.md``).
MODE_DESCRIPTIONS = {
    "per_sample": "trace-exact ground-truth simulator, one Python iteration per update",
    "batched": "macro-step fast path through the kernel batch primitives (trace bit-equal)",
    "threads": "real lock-free Python threads (functional validation; GIL-bound)",
    "process": "multi-process sharded parameter server with measured wall-clock",
}

_default_override: Optional[str] = None


def available_async_modes() -> List[str]:
    """Mode names accepted by :func:`resolve_async_mode`."""
    return list(_MODES)


def async_mode_description(mode: str) -> str:
    """One-line description of a mode (for registries and generated docs)."""
    return MODE_DESCRIPTIONS.get(_validate(mode), "")


def default_async_mode() -> str:
    """The mode the process currently resolves ``async_mode=None`` to."""
    if _default_override is not None:
        return _default_override
    env = os.environ.get(ASYNC_MODE_ENV_VAR, "").strip()
    if env:
        return _validate(env)
    return DEFAULT_ASYNC_MODE


def set_default_async_mode(mode: Optional[str]) -> None:
    """Set (or clear, with ``None``) the process-wide default async mode."""
    global _default_override
    _default_override = None if mode is None else _validate(mode)


def resolve_async_mode(mode: Optional[str]) -> str:
    """Normalise an ``async_mode`` argument (name or ``None``) to a mode name."""
    if mode is None:
        return default_async_mode()
    return _validate(mode)


def _validate(mode: str) -> str:
    if mode not in _MODES:
        raise ValueError(
            f"unknown async mode {mode!r}; available: {', '.join(_MODES)}"
        )
    return mode


__all__ = [
    "ASYNC_MODE_ENV_VAR",
    "DEFAULT_ASYNC_MODE",
    "MODE_DESCRIPTIONS",
    "async_mode_description",
    "available_async_modes",
    "default_async_mode",
    "set_default_async_mode",
    "resolve_async_mode",
]
