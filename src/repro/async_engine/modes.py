"""Async execution-mode resolution (thin shim over :mod:`repro.runtime`).

The execution backends themselves — their registry, capability metadata and
the dispatch that runs a request — live in
:mod:`repro.runtime.backends`; this module keeps the historical
``async_mode`` *resolution* surface that solvers, the CLI and the
experiment configs consume:

1. an explicit ``async_mode`` argument passed to a solver;
2. the process-wide default set via :func:`set_default_async_mode`;
3. the ``REPRO_ASYNC_MODE`` environment variable;
4. the built-in default, ``"per_sample"`` (trace-exact ground truth).

Mode names and their one-line descriptions are sourced from the backend
registry, so registering a new backend there automatically surfaces it
here (and in ``python -m repro list`` / ``docs/reference.md``).
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from typing import Iterator, List, Optional

from repro.runtime.backends import (
    available_backend_names,
    backend_capabilities,
    get_backend,
)

#: Environment variable consulted when no explicit mode is configured.
ASYNC_MODE_ENV_VAR = "REPRO_ASYNC_MODE"

#: The built-in default execution mode.
DEFAULT_ASYNC_MODE = "per_sample"


class _ModeDescriptions(Mapping):
    """Live read-only view of the backend registry's descriptions.

    A mapping (not a snapshot) so a backend registered at runtime through
    :func:`repro.runtime.register_backend` appears here immediately.
    """

    def __getitem__(self, mode: str) -> str:
        try:
            return backend_capabilities(mode).description
        except ValueError:
            # Mapping contract: `in` / `.get(default)` rely on KeyError.
            raise KeyError(mode) from None

    def __iter__(self) -> Iterator[str]:
        return iter(available_backend_names())

    def __len__(self) -> int:
        return len(available_backend_names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(dict(self))


#: One-line description per mode (surfaced by ``python -m repro list`` and
#: the generated ``docs/reference.md``); mirrors the backend capabilities.
MODE_DESCRIPTIONS = _ModeDescriptions()

_default_override: Optional[str] = None


def available_async_modes() -> List[str]:
    """Mode names accepted by :func:`resolve_async_mode`."""
    return available_backend_names()


def async_mode_description(mode: str) -> str:
    """One-line description of a mode (for registries and generated docs)."""
    return backend_capabilities(_validate(mode)).description


def default_async_mode() -> str:
    """The mode the process currently resolves ``async_mode=None`` to."""
    if _default_override is not None:
        return _default_override
    env = os.environ.get(ASYNC_MODE_ENV_VAR, "").strip()
    if env:
        return _validate(env)
    return DEFAULT_ASYNC_MODE


def set_default_async_mode(mode: Optional[str]) -> None:
    """Set (or clear, with ``None``) the process-wide default async mode."""
    global _default_override
    _default_override = None if mode is None else _validate(mode)


def resolve_async_mode(mode: Optional[str]) -> str:
    """Normalise an ``async_mode`` argument (name or ``None``) to a mode name."""
    if mode is None:
        return default_async_mode()
    return _validate(mode)


def _validate(mode: str) -> str:
    get_backend(mode)  # raises with the list of valid modes
    return mode


__all__ = [
    "ASYNC_MODE_ENV_VAR",
    "DEFAULT_ASYNC_MODE",
    "MODE_DESCRIPTIONS",
    "async_mode_description",
    "available_async_modes",
    "default_async_mode",
    "set_default_async_mode",
    "resolve_async_mode",
]
