"""Real thread-based Hogwild backend.

This backend runs genuine lock-free updates from multiple Python threads
over one shared NumPy buffer, exactly as Hogwild prescribes (no locks, last
writer wins per coordinate).  Under CPython the GIL serialises the byte-code
of the workers, so this backend demonstrates *correctness* (the solvers
tolerate truly interleaved, unsynchronised updates) rather than speed; the
performance side of the paper is reproduced by the simulator + cost model.

The implementation releases the GIL as often as NumPy allows (vector ops on
the sample support) and keeps the per-iteration Python overhead minimal.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.partition import Partition
from repro.core.sampler import SampleSequence
from repro.objectives.base import Objective
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import RandomState, as_rng, spawn_rngs


@dataclass
class HogwildWorkerStats:
    """Per-thread execution statistics."""

    worker_id: int
    iterations: int = 0
    coordinate_writes: int = 0


class HogwildThreadPool:
    """Lock-free multi-threaded SGD executor over a shared weight buffer.

    Parameters
    ----------
    X, y, objective:
        The problem definition.
    partition:
        Worker shards (each thread trains on its own shard, as in the
        paper's local-data-training setting).
    step_size:
        Base step size λ.
    importance_sampling:
        Whether threads draw samples from their local importance
        distribution (with the ``1/(n p)`` re-weighting) or uniformly.
    step_clip:
        Cap on the re-weighting factor.
    seed:
        Master seed for the per-thread sample sequences.
    """

    def __init__(
        self,
        X: CSRMatrix,
        y: np.ndarray,
        objective: Objective,
        partition: Partition,
        *,
        step_size: float,
        importance_sampling: bool = True,
        step_clip: float = 100.0,
        seed: RandomState = 0,
    ) -> None:
        if y.shape[0] != X.n_rows:
            raise ValueError("X and y row counts differ")
        self.X = X
        self.y = y
        self.objective = objective
        self.partition = partition
        self.step_size = float(step_size)
        self.importance_sampling = importance_sampling
        self.step_clip = float(step_clip)
        self.seed = seed
        self.weights = np.zeros(X.n_cols, dtype=np.float64)
        self.stats: List[HogwildWorkerStats] = []

    # ------------------------------------------------------------------ #
    def _worker_loop(
        self,
        worker_id: int,
        rows: np.ndarray,
        weights_per_row: np.ndarray,
        sequence: np.ndarray,
        stats: HogwildWorkerStats,
        barrier: threading.Barrier,
    ) -> None:
        X, y, obj, w = self.X, self.y, self.objective, self.weights
        lam = self.step_size
        barrier.wait()
        for local in sequence:
            row = int(rows[local])
            x_idx, x_val = X.row(row)
            grad = obj.sample_grad(w, x_idx, x_val, float(y[row]))
            scale = -lam * float(weights_per_row[local])
            # Lock-free write: np.add.at is not atomic across threads, which
            # is precisely the Hogwild semantics we want to exercise.
            np.add.at(w, grad.indices, scale * grad.values)
            stats.iterations += 1
            stats.coordinate_writes += int(grad.indices.size)

    def run_epoch(self, iterations_per_worker: int, *, epoch_seed: Optional[int] = None) -> None:
        """Run one epoch: every thread performs ``iterations_per_worker`` updates."""
        if iterations_per_worker < 1:
            raise ValueError("iterations_per_worker must be >= 1")
        rngs = spawn_rngs(epoch_seed if epoch_seed is not None else self.seed, self.partition.num_workers)
        threads: List[threading.Thread] = []
        barrier = threading.Barrier(self.partition.num_workers)
        self.stats = [HogwildWorkerStats(worker_id=s.worker_id) for s in self.partition.shards]

        for shard, rng, stats in zip(self.partition.shards, rngs, self.stats):
            if self.importance_sampling:
                probs = shard.probabilities
                with np.errstate(divide="ignore"):
                    reweight = 1.0 / (shard.size * probs)
                reweight = np.minimum(reweight, self.step_clip)
            else:
                probs = np.full(shard.size, 1.0 / shard.size)
                reweight = np.ones(shard.size)
            sequence = SampleSequence.generate(probs, iterations_per_worker, seed=rng).indices
            thread = threading.Thread(
                target=self._worker_loop,
                args=(shard.worker_id, shard.row_indices, reweight, sequence, stats, barrier),
                daemon=True,
            )
            threads.append(thread)

        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def run(self, epochs: int, iterations_per_worker: int,
            epoch_callback: Optional[Callable[[int, np.ndarray], None]] = None) -> np.ndarray:
        """Run ``epochs`` epochs and return the final shared weights."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        base = as_rng(self.seed)
        for epoch in range(epochs):
            self.run_epoch(iterations_per_worker, epoch_seed=int(base.integers(0, 2**31 - 1)))
            if epoch_callback is not None:
                epoch_callback(epoch, self.weights.copy())
        return self.weights


def run_hogwild_threads(
    X: CSRMatrix,
    y: np.ndarray,
    objective: Objective,
    partition: Partition,
    *,
    step_size: float,
    epochs: int,
    importance_sampling: bool = True,
    seed: RandomState = 0,
    epoch_callback: Optional[Callable[[int, np.ndarray], None]] = None,
) -> np.ndarray:
    """Convenience wrapper: build a :class:`HogwildThreadPool` and run it."""
    pool = HogwildThreadPool(
        X,
        y,
        objective,
        partition,
        step_size=step_size,
        importance_sampling=importance_sampling,
        seed=seed,
    )
    iterations = max(1, X.n_rows // max(partition.num_workers, 1))
    return pool.run(epochs, iterations, epoch_callback=epoch_callback)


__all__ = ["HogwildThreadPool", "HogwildWorkerStats", "run_hogwild_threads"]
