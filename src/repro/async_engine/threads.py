"""Real thread-based Hogwild backend.

This backend runs genuine lock-free updates from multiple Python threads
over one shared NumPy buffer, exactly as Hogwild prescribes (no locks, last
writer wins per coordinate).  Under CPython the GIL serialises the byte-code
of the workers, so this backend demonstrates *correctness* (the solvers
tolerate truly interleaved, unsynchronised updates) rather than speed; the
performance side of the paper is reproduced by the simulator + cost model.

Since the runtime refactor the inner loop is rule-driven: every iteration
goes through the scalar entry point of a
:class:`~repro.rules.base.UpdateRuleKernel`, so the threaded tier executes
the *same* coefficient/step math as the simulated and cluster tiers — SGD,
IS-SGD, SVRG (incl. the skip-µ ablation) and SAGA all run here through one
definition.  :class:`ThreadedRuleEngine` wraps the pool with the epoch
machinery the runtime backends need: rule epoch hooks (SVRG's sync step,
SAGA's table build), trace estimation and per-epoch weight snapshots.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.core.partition import Partition
from repro.core.sampler import SampleSequence
from repro.objectives.base import Objective
from repro.runtime.trace_fold import fold_block
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import RandomState, as_rng, spawn_rngs


@dataclass
class HogwildWorkerStats:
    """Per-thread execution statistics."""

    worker_id: int
    iterations: int = 0
    coordinate_writes: int = 0


class HogwildThreadPool:
    """Lock-free multi-threaded executor over a shared weight buffer.

    Parameters
    ----------
    X, y, objective:
        The problem definition.
    partition:
        Worker shards (each thread trains on its own shard, as in the
        paper's local-data-training setting).
    step_size:
        Base step size λ.
    rule:
        The update rule executed by every thread; defaults to the
        registered ``sgd`` rule, which reproduces the historic Hogwild SGD
        behaviour.  Rules with a dense term (SVRG, SAGA) have their
        ``dense_delta`` applied before each sparse write, exactly as the
        per-sample simulator orders it.
    importance_sampling:
        Whether threads draw samples from their local importance
        distribution (with the ``1/(n p)`` re-weighting) or uniformly.
    step_clip:
        Cap on the re-weighting factor.
    seed:
        Master seed for the per-thread sample sequences.
    """

    def __init__(
        self,
        X: CSRMatrix,
        y: np.ndarray,
        objective: Objective,
        partition: Partition,
        *,
        step_size: float,
        rule=None,
        importance_sampling: bool = True,
        step_clip: float = 100.0,
        seed: RandomState = 0,
    ) -> None:
        if y.shape[0] != X.n_rows:
            raise ValueError("X and y row counts differ")
        self.X = X
        self.y = y
        self.objective = objective
        self.partition = partition
        self.step_size = float(step_size)
        if rule is None:
            from repro.rules import make_rule

            rule = make_rule("sgd", objective, self.step_size)
        self.rule = rule
        self.importance_sampling = importance_sampling
        self.step_clip = float(step_clip)
        self.seed = seed
        self.weights = np.zeros(X.n_cols, dtype=np.float64)
        self.stats: List[HogwildWorkerStats] = []

    # ------------------------------------------------------------------ #
    def _worker_loop(
        self,
        worker_id: int,
        rows: np.ndarray,
        weights_per_row: np.ndarray,
        sequence: np.ndarray,
        stats: HogwildWorkerStats,
        barrier: threading.Barrier,
    ) -> None:
        X, y, w, rule = self.X, self.y, self.weights, self.rule
        barrier.wait()
        for local in sequence:
            row = int(rows[local])
            x_idx, x_val = X.row(row)
            # Lock-free reads and writes: fancy indexing copies the current
            # (possibly mid-update) coordinates, np.add.at is not atomic
            # across threads — precisely the Hogwild semantics we want.
            values, _dense = rule.compute_update(
                w[x_idx], x_idx, x_val, float(y[row]),
                float(weights_per_row[local]), row=row,
            )
            dense_delta = rule.dense_delta
            if dense_delta is not None:
                w += dense_delta
            np.add.at(w, x_idx, values)
            stats.iterations += 1
            stats.coordinate_writes += int(x_idx.size)

    def run_epoch(self, iterations_per_worker: int, *, epoch_seed: Optional[int] = None) -> None:
        """Run one epoch: every thread performs ``iterations_per_worker`` updates."""
        if iterations_per_worker < 1:
            raise ValueError("iterations_per_worker must be >= 1")
        rngs = spawn_rngs(epoch_seed if epoch_seed is not None else self.seed, self.partition.num_workers)
        threads: List[threading.Thread] = []
        barrier = threading.Barrier(self.partition.num_workers)
        self.stats = [HogwildWorkerStats(worker_id=s.worker_id) for s in self.partition.shards]

        for shard, rng, stats in zip(self.partition.shards, rngs, self.stats):
            if self.importance_sampling:
                probs = shard.probabilities
                with np.errstate(divide="ignore"):
                    reweight = 1.0 / (shard.size * probs)
                reweight = np.minimum(reweight, self.step_clip)
            else:
                probs = np.full(shard.size, 1.0 / shard.size)
                reweight = np.ones(shard.size)
            sequence = SampleSequence.generate(probs, iterations_per_worker, seed=rng).indices
            thread = threading.Thread(
                target=self._worker_loop,
                args=(shard.worker_id, shard.row_indices, reweight, sequence, stats, barrier),
                daemon=True,
            )
            threads.append(thread)

        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def run(self, epochs: int, iterations_per_worker: int,
            epoch_callback: Optional[Callable[[int, np.ndarray], None]] = None) -> np.ndarray:
        """Run ``epochs`` epochs and return the final shared weights."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        base = as_rng(self.seed)
        for epoch in range(epochs):
            self.run_epoch(iterations_per_worker, epoch_seed=int(base.integers(0, 2**31 - 1)))
            if epoch_callback is not None:
                epoch_callback(epoch, self.weights.copy())
        return self.weights


class ThreadedRuleEngine:
    """Epoch driver around :class:`HogwildThreadPool` for the runtime layer.

    Satisfies the :class:`~repro.rules.base.EngineFacade` protocol, so rule
    epoch hooks (SVRG's snapshot sync, SAGA's table initialisation, the
    skip-µ epoch-level dense add) run on the driver thread between epochs —
    written once in the rule, shared with the simulated tiers.  Thread
    scheduling is real, so the trace carries *estimated* operation counters
    (iterations, average-support traffic) and no delay/conflict replay.
    """

    def __init__(
        self,
        X: CSRMatrix,
        y: np.ndarray,
        objective: Objective,
        partition: Partition,
        rule,
        *,
        importance_sampling: bool = False,
        step_clip: float = 100.0,
        seed: RandomState = 0,
        kernel=None,
    ) -> None:
        from repro.kernels.registry import resolve_backend

        self.X = X
        self.y = y
        self.kernel = resolve_backend(kernel)
        self.rule = rule
        self.pool = HogwildThreadPool(
            X, y, objective, partition,
            step_size=rule.step_size,
            rule=rule,
            importance_sampling=importance_sampling,
            step_clip=step_clip,
            seed=seed,
        )
        # partition_dataset caps the shard count at n_samples; size the
        # thread pool (and its barrier) from the partition, not from the
        # requested worker count.
        self.num_threads = partition.num_workers
        self.iterations_per_worker = max(1, X.n_rows // self.num_threads)

    # ------------------------------------------------------------------ #
    # EngineFacade surface
    # ------------------------------------------------------------------ #
    @property
    def weights(self) -> np.ndarray:
        """The live shared weight buffer."""
        return self.pool.weights

    @property
    def inner_iterations(self) -> int:
        """Inner iterations per epoch (all threads combined)."""
        return self.iterations_per_worker * self.num_threads

    def apply_dense_update(self, delta: np.ndarray, *, worker_id: int = -1) -> None:
        """Apply ``w += delta`` on the driver thread (between epochs)."""
        self.pool.weights += delta

    # ------------------------------------------------------------------ #
    def run(
        self,
        epochs: int,
        *,
        initial_weights: Optional[np.ndarray] = None,
    ):
        """Run ``epochs`` threaded epochs; returns ``(trace, weights_by_epoch)``."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if initial_weights is not None:
            self.pool.weights[:] = initial_weights
        rule = self.rule
        base = as_rng(self.pool.seed)
        trace = ExecutionTrace()
        weights_by_epoch: List[np.ndarray] = []
        avg_nnz = self.X.nnz / max(self.X.n_rows, 1)

        for epoch in range(epochs):
            event = EpochEvent(epoch=epoch)
            rule.epoch_begin(self, epoch, event)
            self.pool.run_epoch(
                self.iterations_per_worker, epoch_seed=int(base.integers(0, 2**31 - 1))
            )
            total = self.inner_iterations
            fold_block(
                event,
                rule,
                iterations=total,
                support_nnz=int(total * avg_nnz),
                conflicts=0,
            )
            rule.epoch_end(self, epoch, event)
            trace.add_epoch(event)
            weights_by_epoch.append(self.pool.weights.copy())

        return trace, weights_by_epoch


def run_hogwild_threads(
    X: CSRMatrix,
    y: np.ndarray,
    objective: Objective,
    partition: Partition,
    *,
    step_size: float,
    epochs: int,
    importance_sampling: bool = True,
    seed: RandomState = 0,
    epoch_callback: Optional[Callable[[int, np.ndarray], None]] = None,
) -> np.ndarray:
    """Convenience wrapper: build a :class:`HogwildThreadPool` and run it."""
    pool = HogwildThreadPool(
        X,
        y,
        objective,
        partition,
        step_size=step_size,
        importance_sampling=importance_sampling,
        seed=seed,
    )
    iterations = max(1, X.n_rows // max(partition.num_workers, 1))
    return pool.run(epochs, iterations, epoch_callback=epoch_callback)


__all__ = [
    "HogwildThreadPool",
    "HogwildWorkerStats",
    "ThreadedRuleEngine",
    "run_hogwild_threads",
]
