"""The shared parameter vector with staleness-aware reads.

:class:`SharedModel` is the simulated analogue of the lock-free shared model
of Hogwild: writers apply index-compressed updates immediately, and readers
may observe a *perturbed* state ``ŵ_t = w_t + θ_t`` in which the most recent
``delay`` updates are missing (perturbed-iterate model, Mania et al. 2017 /
Section 3.1 of the paper).  The model keeps a bounded history of recent
updates so a stale read can be reconstructed exactly, and counts
per-coordinate conflicts (a read that missed a concurrent write on the same
coordinate).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

import numpy as np


@dataclass
class UpdateRecord:
    """One applied update: who wrote it, where and by how much."""

    version: int
    worker_id: int
    indices: np.ndarray
    deltas: np.ndarray


class SharedModel:
    """A shared weight vector supporting stale reads and conflict accounting.

    Parameters
    ----------
    dim:
        Length of the weight vector.
    history:
        Maximum number of recent updates retained for reconstructing stale
        reads; it must be at least the largest delay the staleness model can
        request.
    initial:
        Optional initial weights (copied); zeros by default.
    """

    def __init__(self, dim: int, *, history: int = 256, initial: Optional[np.ndarray] = None) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if history < 0:
            raise ValueError("history must be >= 0")
        self.dim = int(dim)
        self.history = int(history)
        if initial is not None:
            initial = np.ascontiguousarray(initial, dtype=np.float64)
            if initial.shape != (self.dim,):
                raise ValueError(f"initial must have shape ({self.dim},), got {initial.shape}")
            self._w = initial.copy()
        else:
            self._w = np.zeros(self.dim, dtype=np.float64)
        self.version = 0
        self._updates: Deque[UpdateRecord] = deque(maxlen=self.history if self.history else 1)
        self.conflict_count = 0
        self.stale_read_count = 0
        self.read_count = 0
        self.history_overflow = 0

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def read_latest(self, indices: np.ndarray) -> np.ndarray:
        """Fresh read of ``w[indices]`` (no staleness)."""
        self.read_count += 1
        return self._w[indices].copy()

    def read_stale(self, indices: np.ndarray, delay: int, *, writer_id: Optional[int] = None) -> Tuple[np.ndarray, int]:
        """Read ``w[indices]`` as it was ``delay`` updates ago.

        The read reconstructs the perturbed iterate by *undoing* the most
        recent ``delay`` updates on the requested coordinates.  Updates
        written by ``writer_id`` itself are never undone — a worker always
        sees its own writes (the standard asynchronous consistency model).

        Returns
        -------
        (values, conflicts):
            The (possibly stale) coordinate values and the number of undone
            updates that actually touched the requested coordinates, i.e.
            the conflicts this read suffered.

        Notes
        -----
        A requested ``delay`` larger than the retained history is clamped
        *explicitly*: when records the reconstruction needed have already
        been evicted from the bounded history (as opposed to simply not
        having happened yet), the truncation is counted in
        :attr:`history_overflow` instead of passing silently — the
        simulators surface that counter on the execution trace.
        """
        self.read_count += 1
        values = self._w[indices].copy()
        requested = int(max(delay, 0))
        available = len(self._updates)
        delay = min(requested, available)
        if indices.size and requested > available and self.version > available:
            # Evicted records, not merely a short run: the reconstructed
            # window is genuinely truncated.
            self.history_overflow += 1
        if delay == 0 or indices.size == 0:
            return values, 0
        self.stale_read_count += 1
        conflicts = 0
        # Walk the most recent `delay` updates and subtract their effect on
        # the coordinates being read.
        recent = list(self._updates)[-delay:]
        # Positions of the requested indices for O(1) membership tests.
        pos = {int(ix): k for k, ix in enumerate(indices)}
        for record in recent:
            if writer_id is not None and record.worker_id == writer_id:
                continue
            hit = False
            for ix, dv in zip(record.indices, record.deltas):
                k = pos.get(int(ix))
                if k is not None:
                    values[k] -= dv
                    hit = True
            if hit:
                conflicts += 1
        self.conflict_count += conflicts
        return values, conflicts

    def snapshot(self) -> np.ndarray:
        """A copy of the full current weight vector."""
        return self._w.copy()

    @property
    def weights(self) -> np.ndarray:
        """The live weight buffer (mutable; handle with care)."""
        return self._w

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def apply_update(self, indices: np.ndarray, deltas: np.ndarray, *, worker_id: int = 0) -> int:
        """Apply the index-compressed update ``w[indices] += deltas``.

        Returns the new model version.  The update is recorded in the
        bounded history so later stale reads can reconstruct earlier states.
        """
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.float64)
        if indices.shape != deltas.shape:
            raise ValueError("indices and deltas must have identical shapes")
        if indices.size:
            np.add.at(self._w, indices, deltas)
        self.version += 1
        if self.history:
            self._updates.append(
                UpdateRecord(version=self.version, worker_id=worker_id, indices=indices, deltas=deltas)
            )
        return self.version

    def apply_dense_update(self, delta: np.ndarray, *, worker_id: int = 0) -> int:
        """Apply a dense update ``w += delta`` (used by SVRG-style solvers)."""
        delta = np.ascontiguousarray(delta, dtype=np.float64)
        if delta.shape != (self.dim,):
            raise ValueError(f"delta must have shape ({self.dim},), got {delta.shape}")
        self._w += delta
        self.version += 1
        if self.history:
            idx = np.nonzero(delta)[0].astype(np.int64)
            self._updates.append(
                UpdateRecord(version=self.version, worker_id=worker_id, indices=idx, deltas=delta[idx])
            )
        return self.version

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def reset_counters(self) -> None:
        """Zero the read/conflict counters (the weights are untouched)."""
        self.conflict_count = 0
        self.stale_read_count = 0
        self.read_count = 0
        self.history_overflow = 0

    def conflict_rate(self) -> float:
        """Conflicts per read performed so far (0.0 when nothing was read)."""
        if self.read_count == 0:
            return 0.0
        return self.conflict_count / self.read_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedModel(dim={self.dim}, version={self.version}, "
            f"conflicts={self.conflict_count})"
        )


__all__ = ["SharedModel", "UpdateRecord"]
