"""Event records emitted by the asynchronous simulator.

The simulator aggregates per-iteration information into per-epoch
:class:`EpochEvent` records; the cost model consumes those to produce the
simulated wall-clock, and the metrics module turns them into convergence
curves.  Individual :class:`IterationEvent` objects are only materialised
when the caller asks for full tracing (they are too heavy for the large
benchmark runs).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Optional


@dataclass
class IterationEvent:
    """One simulated iteration (only recorded when full tracing is enabled)."""

    global_step: int
    worker_id: int
    sample_index: int
    delay: int
    conflicts: int
    grad_nnz: int
    step_scale: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "IterationEvent":
        """Rebuild an event from :meth:`to_dict` output.

        Like :meth:`EpochEvent.from_dict`, fields absent from the payload
        fall back to their dataclass defaults (once they grow any), so
        artifacts written before a field existed still load; a payload
        missing a required field raises :class:`ValueError`, not a bare
        ``KeyError``/``TypeError``.
        """
        known = {f.name: payload[f.name] for f in fields(cls) if f.name in payload}
        try:
            return cls(**known)
        except TypeError as exc:
            raise ValueError(f"IterationEvent payload is invalid: {exc}") from exc


@dataclass
class EpochEvent:
    """Aggregate record of one epoch of simulated execution."""

    epoch: int
    iterations: int = 0
    sparse_coordinate_updates: int = 0
    dense_coordinate_updates: int = 0
    conflicts: int = 0
    stale_reads: int = 0
    sample_draws: int = 0
    max_observed_delay: int = 0
    #: Stale reads whose requested delay exceeded the retained update
    #: history (the reconstruction window was explicitly truncated — see
    #: ``SharedModel.history_overflow``).
    history_overflows: int = 0

    def merge_iteration(
        self,
        *,
        grad_nnz: int,
        dense_coords: int,
        conflicts: int,
        delay: int,
        drew_sample: bool = True,
        history_overflow: int = 0,
    ) -> None:
        """Fold one iteration's counters into the epoch aggregate."""
        self.iterations += 1
        self.sparse_coordinate_updates += int(grad_nnz)
        self.dense_coordinate_updates += int(dense_coords)
        self.conflicts += int(conflicts)
        if delay > 0:
            self.stale_reads += 1
        if drew_sample:
            self.sample_draws += 1
        if delay > self.max_observed_delay:
            self.max_observed_delay = int(delay)
        self.history_overflows += int(history_overflow)

    def merge_bulk(
        self,
        *,
        iterations: int,
        grad_nnz: int,
        dense_coords: int = 0,
        conflicts: int = 0,
        sample_draws: int = 0,
        stale_reads: int = 0,
        max_delay: int = 0,
        history_overflows: int = 0,
    ) -> None:
        """Fold a whole batch of iterations' counters in at once.

        Equivalent to ``iterations`` calls of :meth:`merge_iteration` with
        the given totals; the serial solvers use this so the Python-level
        per-iteration bookkeeping disappears from their hot loops.
        """
        self.iterations += int(iterations)
        self.sparse_coordinate_updates += int(grad_nnz)
        self.dense_coordinate_updates += int(dense_coords)
        self.conflicts += int(conflicts)
        self.sample_draws += int(sample_draws)
        self.stale_reads += int(stale_reads)
        if max_delay > self.max_observed_delay:
            self.max_observed_delay = int(max_delay)
        self.history_overflows += int(history_overflows)

    @property
    def conflict_rate(self) -> float:
        """Conflicts per iteration within the epoch."""
        return self.conflicts / self.iterations if self.iterations else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EpochEvent":
        """Rebuild an epoch record from :meth:`to_dict` output.

        Counter fields absent from the payload fall back to their dataclass
        defaults, so artifacts written before a counter existed (e.g.
        ``history_overflows``) still load.
        """
        kwargs = {f.name: payload[f.name] for f in fields(cls) if f.name in payload}
        if "epoch" not in kwargs:
            raise ValueError("EpochEvent payload is missing the 'epoch' field")
        return cls(**kwargs)


@dataclass
class ExecutionTrace:
    """The complete per-epoch trace of one training run."""

    epochs: List[EpochEvent] = field(default_factory=list)
    iterations: Optional[List[IterationEvent]] = None

    def add_epoch(self, event: EpochEvent) -> None:
        """Append an epoch record."""
        self.epochs.append(event)

    @property
    def total_iterations(self) -> int:
        """Total iterations across all epochs."""
        return int(sum(e.iterations for e in self.epochs))

    @property
    def total_conflicts(self) -> int:
        """Total conflicts across all epochs."""
        return int(sum(e.conflicts for e in self.epochs))

    @property
    def total_sparse_coordinate_updates(self) -> int:
        """Total sparse coordinate writes across all epochs."""
        return int(sum(e.sparse_coordinate_updates for e in self.epochs))

    @property
    def total_dense_coordinate_updates(self) -> int:
        """Total dense coordinate writes across all epochs."""
        return int(sum(e.dense_coordinate_updates for e in self.epochs))

    @property
    def total_history_overflows(self) -> int:
        """Total truncated stale-read reconstructions across all epochs."""
        return int(sum(e.history_overflows for e in self.epochs))

    def conflict_rate(self) -> float:
        """Overall conflicts per iteration."""
        total = self.total_iterations
        return self.total_conflicts / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (inverse of :meth:`from_dict`).

        Per-iteration events are included only when they were recorded
        (full tracing); the common per-epoch-only trace stays compact.
        """
        payload: Dict[str, Any] = {"epochs": [e.to_dict() for e in self.epochs]}
        if self.iterations is not None:
            payload["iterations"] = [it.to_dict() for it in self.iterations]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExecutionTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        trace = cls(epochs=[EpochEvent.from_dict(e) for e in payload.get("epochs", [])])
        if payload.get("iterations") is not None:
            trace.iterations = [IterationEvent.from_dict(it) for it in payload["iterations"]]
        return trace


__all__ = ["IterationEvent", "EpochEvent", "ExecutionTrace"]
