"""Staleness (delay) models.

The delay parameter τ is "the maximum lag between when a gradient is
computed and when it is applied" and is assumed to be linearly related to
the concurrency (Section 3.1).  The simulator draws a per-iteration delay
from one of the models below; the default :class:`UniformDelay` with
``max_delay = num_workers`` matches that assumption.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.utils.rng import RandomState, as_rng


class StalenessModel(ABC):
    """Interface: draw how many recent updates a read misses."""

    #: The largest delay the model can produce (used to size the history).
    max_delay: int = 0

    @abstractmethod
    def draw(self, rng: np.random.Generator) -> int:
        """Sample the delay (number of missed updates) for one read."""

    def draw_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample ``size`` delays at once (``int64`` array).

        The default falls back to ``size`` scalar :meth:`draw` calls, so a
        custom model stays exactly stream-compatible with the per-sample
        simulator; the built-in models override it with one vectorized NumPy
        draw, which consumes the ``Generator`` bit stream identically to the
        scalar loop (NumPy draws array elements sequentially) — the batched
        engine therefore sees the *same* delay sequence as the per-sample
        engine for a given seed.
        """
        return np.array([self.draw(rng) for _ in range(size)], dtype=np.int64)

    def expected_delay(self) -> float:
        """Expected delay (used by reports); subclasses may override."""
        return float(self.max_delay) / 2.0


class ConstantDelay(StalenessModel):
    """Every read misses exactly ``delay`` updates (worst-case style)."""

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.max_delay = int(delay)

    def draw(self, rng: np.random.Generator) -> int:
        return self.max_delay

    def draw_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.max_delay, dtype=np.int64)

    def expected_delay(self) -> float:
        return float(self.max_delay)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantDelay({self.max_delay})"


class UniformDelay(StalenessModel):
    """Delay drawn uniformly from ``{0, 1, ..., max_delay}``."""

    def __init__(self, max_delay: int) -> None:
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.max_delay = int(max_delay)

    def draw(self, rng: np.random.Generator) -> int:
        if self.max_delay == 0:
            return 0
        return int(rng.integers(0, self.max_delay + 1))

    def draw_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if self.max_delay == 0:
            return np.zeros(size, dtype=np.int64)
        return rng.integers(0, self.max_delay + 1, size=size, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformDelay({self.max_delay})"


class GeometricDelay(StalenessModel):
    """Geometrically distributed delay truncated at ``max_delay``.

    Models the empirical observation that most reads are nearly fresh while
    a few are very stale (heavy scheduling jitter).
    """

    def __init__(self, max_delay: int, mean_delay: Optional[float] = None) -> None:
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.max_delay = int(max_delay)
        if mean_delay is None:
            mean_delay = max(max_delay / 4.0, 1e-9)
        if mean_delay <= 0:
            raise ValueError("mean_delay must be positive")
        self.mean_delay = float(mean_delay)
        self._p = 1.0 / (1.0 + self.mean_delay)

    def draw(self, rng: np.random.Generator) -> int:
        if self.max_delay == 0:
            return 0
        # numpy's geometric counts trials >= 1; shift to start at 0.
        value = int(rng.geometric(self._p)) - 1
        return min(value, self.max_delay)

    def draw_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if self.max_delay == 0:
            return np.zeros(size, dtype=np.int64)
        values = rng.geometric(self._p, size=size).astype(np.int64) - 1
        return np.minimum(values, self.max_delay)

    def expected_delay(self) -> float:
        return min(self.mean_delay, float(self.max_delay))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GeometricDelay(max={self.max_delay}, mean={self.mean_delay:.2f})"


def make_staleness_model(kind: str, max_delay: int, **kwargs) -> StalenessModel:
    """Factory: ``"uniform"``, ``"constant"`` or ``"geometric"``."""
    kind = kind.lower()
    if kind == "uniform":
        return UniformDelay(max_delay)
    if kind == "constant":
        return ConstantDelay(max_delay)
    if kind == "geometric":
        return GeometricDelay(max_delay, kwargs.get("mean_delay"))
    raise ValueError(f"unknown staleness model {kind!r}")


__all__ = [
    "StalenessModel",
    "ConstantDelay",
    "UniformDelay",
    "GeometricDelay",
    "make_staleness_model",
]
