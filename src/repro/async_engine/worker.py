"""Simulated asynchronous worker.

A :class:`SimulatedWorker` owns one shard of the (re-ordered) dataset, its
local sampling distribution and a pre-generated sample sequence.  At every
simulated iteration the engine asks the worker for its next sample and the
step re-weighting factor; the worker does not touch the shared model itself
— separating "what to compute" (worker) from "how asynchrony perturbs it"
(the simulator and shared model) keeps both testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.partition import WorkerShard
from repro.core.sampler import SampleSequence
from repro.utils.rng import RandomState, as_rng


@dataclass
class SimulatedWorker:
    """One worker of the simulated asynchronous pool.

    Parameters
    ----------
    shard:
        The worker's data shard (global row indices, Lipschitz constants and
        local sampling probabilities).
    sequence:
        Pre-generated sample sequence of *local* indices into the shard.
    step_clip:
        Cap applied to the importance re-weighting factor ``1/(n_a p_i)``.
    seed:
        Seed for per-epoch sequence reshuffling.
    """

    shard: WorkerShard
    sequence: SampleSequence
    step_clip: float = 100.0
    seed: int = 0
    _position: int = field(default=0, init=False, repr=False)
    _epoch: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.sequence) == 0:
            raise ValueError("sample sequence must not be empty")
        self._rng = as_rng(self.seed)
        # Pre-compute the unbiased re-weighting factors 1 / (n_a * p_i) for
        # every local sample so the hot loop is a single indexed lookup.
        n_local = self.shard.size
        probs = self.shard.probabilities
        with np.errstate(divide="ignore"):
            weights = 1.0 / (n_local * probs)
        self._reweighting = np.minimum(weights, self.step_clip)

    # ------------------------------------------------------------------ #
    @property
    def worker_id(self) -> int:
        """Identifier of the worker (shard id)."""
        return self.shard.worker_id

    @property
    def iterations_per_epoch(self) -> int:
        """Number of iterations this worker performs per epoch."""
        return len(self.sequence)

    @property
    def exhausted(self) -> bool:
        """Whether the current epoch's sequence has been fully consumed."""
        return self._position >= len(self.sequence)

    # ------------------------------------------------------------------ #
    def next_sample(self) -> Tuple[int, int, float]:
        """Return ``(global_row, local_row, step_weight)`` for the next iteration.

        Raises ``RuntimeError`` when the epoch sequence is exhausted; callers
        must invoke :meth:`start_epoch` between epochs.
        """
        if self.exhausted:
            raise RuntimeError(
                f"worker {self.worker_id} exhausted its epoch sequence; call start_epoch()"
            )
        local = int(self.sequence[self._position])
        self._position += 1
        global_row = int(self.shard.row_indices[local])
        weight = float(self._reweighting[local])
        return global_row, local, weight

    def next_samples(self, count: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Consume the next ``count`` samples at once.

        Returns ``(global_rows, local_rows, step_weights)`` as arrays — the
        vectorized counterpart of ``count`` :meth:`next_sample` calls, used
        by the batched engine so worker bookkeeping is one slice per
        macro-step instead of one Python call per iteration.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        if self._position + count > len(self.sequence):
            raise RuntimeError(
                f"worker {self.worker_id} has {self.remaining_iterations()} iterations "
                f"left in its epoch sequence but {count} were requested; call start_epoch()"
            )
        local = np.asarray(
            self.sequence.indices[self._position : self._position + count], dtype=np.int64
        )
        self._position += count
        return self.shard.row_indices[local], local, self._reweighting[local]

    def start_epoch(self, *, reshuffle: bool = True, regenerate: bool = False,
                    sampler_seed: Optional[int] = None) -> None:
        """Reset the per-epoch cursor and refresh the sample sequence.

        Parameters
        ----------
        reshuffle:
            Permute the existing sequence (cheap; preserves empirical
            frequencies — the paper's recommended approximation).
        regenerate:
            Draw an entirely new i.i.d. sequence from the local distribution
            (the exact Algorithm 2/4 behaviour).  Takes precedence over
            ``reshuffle``.
        sampler_seed:
            Optional explicit seed for the regeneration draw.
        """
        self._epoch += 1
        self._position = 0
        if regenerate:
            seed = sampler_seed if sampler_seed is not None else int(self._rng.integers(0, 2**31 - 1))
            self.sequence = SampleSequence.generate(
                self.shard.probabilities, len(self.sequence), seed=seed
            )
        elif reshuffle:
            self.sequence = self.sequence.reshuffled(seed=int(self._rng.integers(0, 2**31 - 1)))

    def remaining_iterations(self) -> int:
        """Iterations left in the current epoch."""
        return len(self.sequence) - self._position


def build_workers(
    partition,
    iterations_per_worker: int,
    *,
    step_clip: float = 100.0,
    seed: RandomState = 0,
    importance_sampling: bool = True,
) -> list[SimulatedWorker]:
    """Construct one :class:`SimulatedWorker` per shard of a partition.

    Parameters
    ----------
    partition:
        A :class:`repro.core.partition.Partition`.
    iterations_per_worker:
        Length of each worker's per-epoch sample sequence (usually
        ``ceil(n / num_workers)``).
    importance_sampling:
        When False the sequences are drawn from the uniform distribution
        over the shard (plain ASGD) and the re-weighting factors collapse to
        1 exactly.
    """
    rng = as_rng(seed)
    workers = []
    for shard in partition.shards:
        if importance_sampling:
            probs = shard.probabilities
        else:
            probs = np.full(shard.size, 1.0 / shard.size)
        seq = SampleSequence.generate(
            probs, iterations_per_worker, seed=int(rng.integers(0, 2**31 - 1))
        )
        shard_for_worker = shard if importance_sampling else type(shard)(
            worker_id=shard.worker_id,
            row_indices=shard.row_indices,
            lipschitz=shard.lipschitz,
            probabilities=probs,
        )
        workers.append(
            SimulatedWorker(
                shard=shard_for_worker,
                sequence=seq,
                step_clip=step_clip,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
        )
    return workers


__all__ = ["SimulatedWorker", "build_workers"]
