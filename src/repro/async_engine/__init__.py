"""Asynchronous execution substrate.

CPython's GIL makes genuine lock-free numeric threads impossible, so the
library reproduces asynchrony at two levels:

* :mod:`repro.async_engine.simulator` — a deterministic perturbed-iterate
  simulator: workers interleave their iterations, every read may be stale by
  up to ``τ`` updates (exactly the model the paper's Section 3 analysis
  uses), and per-coordinate conflicts are accounted explicitly.  All the
  figures are produced on this engine.
* :mod:`repro.async_engine.batched` — the macro-step fast path: the same
  randomised schedule executed in blocks through the kernel backend's batch
  primitives, with the per-sample conflict/staleness accounting replayed
  exactly.  Selected per solver (``async_mode="batched"``) or process-wide
  via ``REPRO_ASYNC_MODE`` (see :mod:`repro.async_engine.modes`); the
  per-sample simulator remains the ground truth it is pinned against.
* :mod:`repro.async_engine.threads` — a real ``threading``-based Hogwild
  backend over a shared NumPy buffer, used to validate that the algorithms
  are genuinely lock-free-safe (it produces correct models, just without
  hardware speedup).

:mod:`repro.async_engine.cost_model` converts execution traces (counts of
sparse/dense operations and conflicts) into simulated wall-clock seconds,
which is how the absolute-convergence experiments (Figures 4-5) are
regenerated.
"""

from repro.async_engine.shared_model import SharedModel, UpdateRecord
from repro.async_engine.staleness import (
    ConstantDelay,
    GeometricDelay,
    StalenessModel,
    UniformDelay,
    make_staleness_model,
)
from repro.async_engine.worker import SimulatedWorker
from repro.async_engine.events import EpochEvent, IterationEvent
from repro.async_engine.simulator import AsyncSimulator, SimulationResult
from repro.async_engine.batched import BatchedSimulator, BatchedUpdateRule
from repro.async_engine.modes import (
    ASYNC_MODE_ENV_VAR,
    DEFAULT_ASYNC_MODE,
    available_async_modes,
    default_async_mode,
    resolve_async_mode,
    set_default_async_mode,
)
from repro.async_engine.threads import HogwildThreadPool, run_hogwild_threads
from repro.async_engine.cost_model import CostModel, CostParameters

__all__ = [
    "BatchedSimulator",
    "BatchedUpdateRule",
    "ASYNC_MODE_ENV_VAR",
    "DEFAULT_ASYNC_MODE",
    "available_async_modes",
    "default_async_mode",
    "resolve_async_mode",
    "set_default_async_mode",
    "SharedModel",
    "UpdateRecord",
    "StalenessModel",
    "UniformDelay",
    "ConstantDelay",
    "GeometricDelay",
    "make_staleness_model",
    "SimulatedWorker",
    "EpochEvent",
    "IterationEvent",
    "AsyncSimulator",
    "SimulationResult",
    "HogwildThreadPool",
    "run_hogwild_threads",
    "CostModel",
    "CostParameters",
]
