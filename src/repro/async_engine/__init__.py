"""Asynchronous execution substrate.

CPython's GIL makes genuine lock-free numeric threads impossible, so the
library reproduces asynchrony at two levels:

* :mod:`repro.async_engine.simulator` — a deterministic perturbed-iterate
  simulator: workers interleave their iterations, every read may be stale by
  up to ``τ`` updates (exactly the model the paper's Section 3 analysis
  uses), and per-coordinate conflicts are accounted explicitly.  All the
  figures are produced on this engine.
* :mod:`repro.async_engine.threads` — a real ``threading``-based Hogwild
  backend over a shared NumPy buffer, used to validate that the algorithms
  are genuinely lock-free-safe (it produces correct models, just without
  hardware speedup).

:mod:`repro.async_engine.cost_model` converts execution traces (counts of
sparse/dense operations and conflicts) into simulated wall-clock seconds,
which is how the absolute-convergence experiments (Figures 4-5) are
regenerated.
"""

from repro.async_engine.shared_model import SharedModel, UpdateRecord
from repro.async_engine.staleness import (
    ConstantDelay,
    GeometricDelay,
    StalenessModel,
    UniformDelay,
    make_staleness_model,
)
from repro.async_engine.worker import SimulatedWorker
from repro.async_engine.events import EpochEvent, IterationEvent
from repro.async_engine.simulator import AsyncSimulator, SimulationResult
from repro.async_engine.threads import HogwildThreadPool, run_hogwild_threads
from repro.async_engine.cost_model import CostModel, CostParameters

__all__ = [
    "SharedModel",
    "UpdateRecord",
    "StalenessModel",
    "UniformDelay",
    "ConstantDelay",
    "GeometricDelay",
    "make_staleness_model",
    "SimulatedWorker",
    "EpochEvent",
    "IterationEvent",
    "AsyncSimulator",
    "SimulationResult",
    "HogwildThreadPool",
    "run_hogwild_threads",
    "CostModel",
    "CostParameters",
]
