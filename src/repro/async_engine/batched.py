"""Batched macro-step execution engine for the asynchronous simulator.

:class:`~repro.async_engine.simulator.AsyncSimulator` reproduces asynchrony
one Python-level iteration at a time — worker bookkeeping, a staleness draw,
a stale read reconstructed record-by-record, a scalar update.  That is the
semantics the paper's Section 3 analysis wants, but it makes reproducing the
*speedup* figures the slowest path in the repository.

:class:`BatchedSimulator` is the fast path.  It executes the same randomised
schedule in **macro-steps** of ``batch_size`` consecutive iterations:

1. every worker contributes its scheduled samples for the block in one
   vectorized slice (:meth:`SimulatedWorker.next_samples`);
2. the touched rows are gathered once (:meth:`CSRMatrix.gather_rows`) and
   all block margins are computed at the block-start iterate through the
   kernel backend (:meth:`KernelBackend.segment_margins` →
   :meth:`Objective.batch_grad_coeffs` inside the update rule);
3. the per-entry update deltas of the whole block are folded into the model
   with one scatter-add (:meth:`KernelBackend.scatter_add` — a
   bincount-style accumulation in the vectorized backend);
4. the per-iteration staleness/conflict accounting of the per-sample engine
   is **replayed exactly**: the same delay sequence is drawn (array draws
   consume the ``Generator`` stream identically to scalar draws), and each
   iteration's conflicts are recomputed against the same bounded update
   history the per-sample :class:`SharedModel` would have walked.

Semantics vs the per-sample engine
----------------------------------
The *trace* (iterations, sparse/dense coordinate counts, conflicts, stale
reads, delays) is bit-identical to the per-sample simulator for the built-in
staleness models, because the schedule, the delay draws and the conflict
window arithmetic are replayed exactly.  The *iterates* are not bitwise
equal: inside one macro-step every read observes the block-start model
rather than the partially-updated one, i.e. batching injects an additional
staleness of up to ``batch_size - 1`` updates.  That is the same
perturbed-iterate approximation the paper's analysis already allows — with
the default ``batch_size = num_workers * (max_delay + 1)`` the extra lag
stays on the scale of the modelled delay ``τ`` — so batched runs remain
*statistically* faithful: the parity suite in
``tests/async_engine/test_batched.py`` pins traces exactly and final
iterates within tolerance for all three async solvers.

One caveat is inherent to batching: a worker does not see its own writes
within a macro-step (per-sample workers always do).  Choose ``batch_size``
accordingly when the step size is aggressive; the per-sample engine remains
the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Tuple, Union

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace, IterationEvent
from repro.async_engine.simulator import SimulationResult
from repro.async_engine.staleness import StalenessModel, UniformDelay
from repro.async_engine.worker import SimulatedWorker
from repro.kernels.base import KernelBackend
from repro.kernels.registry import resolve_backend
from repro.runtime.trace_fold import build_schedule, fold_block
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import segment_bool_any
from repro.utils.rng import RandomState, as_rng

#: Upper bound on the per-sample history replayed for stale reads; must
#: match ``AsyncSimulator``'s ``SharedModel(history=min(..., 4096))``.
_HISTORY_CAP = 4096


class BatchedUpdateRule(Protocol):
    """Computes a whole macro-step of update deltas from gathered rows.

    A batched rule is the macro-step counterpart of
    :class:`~repro.async_engine.simulator.UpdateRule`: instead of one
    index-compressed delta per call it returns the per-entry weights for a
    whole gathered block, to be scatter-added in one kernel call.
    """

    #: How many update records the per-sample engine writes per iteration
    #: (1 for SGD-style rules, 2 for SVRG's dense-µ + sparse pair); drives
    #: the window arithmetic of the conflict replay.
    records_per_iteration: int

    #: Trace ``grad_nnz`` per iteration as a multiple of ``nnz(x_i)``
    #: (1 for SGD-style rules, 2 for SVRG's two margin evaluations).
    grad_nnz_multiplier: int

    #: The dense delta the rule applies once per iteration (SVRG's ``-λµ``),
    #: or ``None`` for purely sparse rules.
    dense_delta: Optional[np.ndarray]

    def block_entry_weights(
        self,
        *,
        w: np.ndarray,
        rows: np.ndarray,
        y: np.ndarray,
        margins: np.ndarray,
        step_weights: np.ndarray,
        idx: np.ndarray,
        val: np.ndarray,
        lengths: np.ndarray,
    ) -> np.ndarray:
        """Per-entry additive deltas aligned with the gathered ``(idx, val)``.

        ``margins`` are the block-start margins of ``rows``; the returned
        array has one weight per gathered entry (already scaled by the step
        size and importance re-weighting) and is scatter-added into the
        model by the simulator.
        """
        ...


@dataclass
class _RecordLog:
    """Rolling tail of the per-sample engine's update-record stream.

    Only the metadata needed to replay conflict accounting is kept — the
    writer, the record kind (dense/sparse), for sparse records the row whose
    support was written, and for dense records a reference into the
    simulator's table of dense-support masks (so a stale read is tested
    against the support the record *actually* wrote, exactly like
    ``UpdateRecord.indices``).  ``total`` counts every record ever written
    (the per-sample model's ``version``); the arrays hold the most recent
    ``keep`` of them.
    """

    keep: int
    total: int = 0
    kind: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int8))
    worker: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    row: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    dense_ref: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    def append(
        self, kind: np.ndarray, worker: np.ndarray, row: np.ndarray, dense_ref: np.ndarray
    ) -> None:
        self.total += kind.size
        self.kind = np.concatenate([self.kind, kind])[-self.keep :]
        self.worker = np.concatenate([self.worker, worker])[-self.keep :]
        self.row = np.concatenate([self.row, row])[-self.keep :]
        self.dense_ref = np.concatenate([self.dense_ref, dense_ref])[-self.keep :]


@dataclass
class BatchedSimulator:
    """Macro-step execution of asynchronous SGD-style solvers.

    Drop-in counterpart of :class:`~repro.async_engine.simulator.AsyncSimulator`
    (same constructor surface plus ``batch_size`` / ``kernel``), selected per
    solver via ``async_mode="batched"`` or globally via the
    ``REPRO_ASYNC_MODE`` environment variable (see
    :mod:`repro.async_engine.modes`).

    Parameters
    ----------
    X, y:
        Full design matrix and labels.
    workers:
        The simulated workers, one per thread.
    update_rule:
        A :class:`BatchedUpdateRule` (macro-step update computation).
    staleness:
        Delay model; defaults to ``UniformDelay(num_workers - 1)``.
    seed:
        Seed (or shared ``Generator``) for the scheduler interleaving and
        delay draws; passing the same seed as an ``AsyncSimulator`` yields
        the identical schedule and delay sequence.
    batch_size:
        Iterations per macro-step, or ``"auto"`` for
        ``num_workers * (max_delay + 1)`` — an extra lag on the scale of the
        modelled delay.  Larger blocks are faster but staler.
    kernel:
        Kernel backend (instance, registry name or ``None`` for the
        configured default) used for the batched margins and scatter-adds.
    record_iterations:
        Materialise per-iteration events (tests only).
    epoch_begin / epoch_end:
        Optional hooks ``(simulator, epoch, event)`` invoked around every
        epoch; when omitted they default to the update rule's own
        ``epoch_begin``/``epoch_end`` (SVRG's snapshot sync, SAGA's table
        build), exactly as :class:`AsyncSimulator` wires them.
    epoch_callback:
        Optional ``(epoch_index, model_snapshot)`` callable, as on
        :class:`AsyncSimulator`.
    count_sample_draws:
        Whether each iteration counts as one weighted sample draw in the
        trace (True for ASGD-style solvers, False for VR inner loops);
        ``None`` defers to the rule's ``counts_sample_draws`` metadata.
    """

    X: CSRMatrix
    y: np.ndarray
    workers: List[SimulatedWorker]
    update_rule: BatchedUpdateRule
    staleness: Optional[StalenessModel] = None
    seed: RandomState = 0
    batch_size: Union[int, str] = "auto"
    kernel: Union[KernelBackend, str, None] = None
    record_iterations: bool = False
    epoch_begin: Optional[Callable[["BatchedSimulator", int, EpochEvent], None]] = None
    epoch_end: Optional[Callable[["BatchedSimulator", int, EpochEvent], None]] = None
    epoch_callback: Optional[Callable[[int, np.ndarray], None]] = None
    count_sample_draws: Optional[bool] = None
    #: Bounded-history override mirroring ``AsyncSimulator.history`` — the
    #: replay clamps and counts ``history_overflows`` with the identical
    #: window arithmetic, so traces stay bit-equal under an override too.
    history: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.workers:
            raise ValueError("at least one worker is required")
        if self.y.shape[0] != self.X.n_rows:
            raise ValueError("X and y row counts differ")
        self._rng = as_rng(self.seed)
        if self.staleness is None:
            self.staleness = UniformDelay(max(len(self.workers) - 1, 0))
        if isinstance(self.batch_size, str):
            if self.batch_size != "auto":
                raise ValueError("batch_size must be a positive int or 'auto'")
        elif int(self.batch_size) < 1:
            raise ValueError("batch_size must be a positive int or 'auto'")
        self.kernel = resolve_backend(self.kernel)
        if self.count_sample_draws is None:
            self.count_sample_draws = bool(
                getattr(self.update_rule, "counts_sample_draws", True)
            )
        if self.epoch_begin is None:
            self.epoch_begin = getattr(self.update_rule, "epoch_begin", None)
        if self.epoch_end is None:
            self.epoch_end = getattr(self.update_rule, "epoch_end", None)
        self._w: Optional[np.ndarray] = None
        self._log: Optional[_RecordLog] = None
        self._maxlen = 0
        self._dense_masks: dict[int, np.ndarray] = {}
        self._dense_ref_counter = 0
        self._last_dense_obj: Optional[np.ndarray] = None
        self._last_dense_ref = -1

    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        """Number of simulated workers."""
        return len(self.workers)

    @property
    def weights(self) -> np.ndarray:
        """The live weight buffer of the current run (hooks may read it)."""
        if self._w is None:
            raise RuntimeError("weights are only available while run() is active")
        return self._w

    @property
    def inner_iterations(self) -> int:
        """Inner iterations per epoch (all workers combined)."""
        return sum(w.iterations_per_epoch for w in self.workers)

    def resolved_batch_size(self) -> int:
        """The macro-step length actually used."""
        if self.batch_size == "auto":
            tau = self.staleness.max_delay
            return int(min(max(self.num_workers * (tau + 1), 1), _HISTORY_CAP))
        return int(self.batch_size)

    def apply_dense_update(self, delta: np.ndarray, *, worker_id: int = -1) -> None:
        """Apply ``w += delta`` and log one dense update record.

        Epoch hooks use this (e.g. SVRG's accumulated ``-λµ`` term in
        skip-dense mode) so the dense write participates in the conflict
        replay exactly as :meth:`SharedModel.apply_dense_update` would —
        including the record's support, ``nonzero(delta)``.
        """
        if self._w is None or self._log is None:
            raise RuntimeError("apply_dense_update is only valid while run() is active")
        self._w += delta
        self._log.append(
            np.zeros(1, dtype=np.int8),
            np.full(1, worker_id, dtype=np.int64),
            np.full(1, -1, dtype=np.int64),
            np.full(1, self._register_dense_mask(delta), dtype=np.int64),
        )
        self._prune_dense_masks()

    def _register_dense_mask(self, vec: np.ndarray) -> int:
        """Store ``nonzero(vec)`` as a support mask; returns its reference id."""
        ref = self._dense_ref_counter
        self._dense_ref_counter += 1
        self._dense_masks[ref] = vec != 0
        return ref

    def _prune_dense_masks(self) -> None:
        """Drop support masks no longer referenced by the retained tail."""
        live = {int(r) for r in self._log.dense_ref[self._log.kind == 0]}
        live.add(self._last_dense_ref)
        self._dense_masks = {k: v for k, v in self._dense_masks.items() if k in live}

    # ------------------------------------------------------------------ #
    def run(
        self,
        epochs: int,
        *,
        initial_weights: Optional[np.ndarray] = None,
        reshuffle: bool = True,
        regenerate: bool = False,
        keep_epoch_weights: bool = False,
    ) -> SimulationResult:
        """Simulate ``epochs`` passes of batched asynchronous execution."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        d = self.X.n_cols
        if initial_weights is not None:
            w = np.ascontiguousarray(initial_weights, dtype=np.float64).copy()
            if w.shape != (d,):
                raise ValueError(f"initial_weights must have shape ({d},)")
        else:
            w = np.zeros(d, dtype=np.float64)
        self._w = w
        if self.history is not None:
            self._maxlen = min(int(self.history), _HISTORY_CAP)
        else:
            self._maxlen = min(
                max(self.staleness.max_delay, 1) * max(self.num_workers, 1), _HISTORY_CAP
            )
        rpi = int(getattr(self.update_rule, "records_per_iteration", 1))
        # A stale read looks back at most max_delay records; keep one extra
        # iteration's worth so block boundaries never truncate a window.
        self._log = _RecordLog(keep=max(min(self.staleness.max_delay, self._maxlen) + rpi, rpi))
        self._dense_masks = {}
        self._dense_ref_counter = 0
        self._last_dense_obj = None
        self._last_dense_ref = -1
        block = self.resolved_batch_size()

        trace = ExecutionTrace(iterations=[] if self.record_iterations else None)
        epoch_weights: List[np.ndarray] = []
        global_step = 0

        for epoch in range(epochs):
            event = EpochEvent(epoch=epoch)
            if self.epoch_begin is not None:
                self.epoch_begin(self, epoch, event)
            if epoch > 0:
                for worker in self.workers:
                    worker.start_epoch(reshuffle=reshuffle, regenerate=regenerate)
            schedule = build_schedule(self.workers, self._rng)

            # Vectorized worker bookkeeping: each worker hands over its
            # scheduled samples for the whole epoch in one slice, placed at
            # its schedule positions (the consumption order per worker is
            # identical to the per-sample engine's).
            rows = np.empty(schedule.size, dtype=np.int64)
            step_weights = np.empty(schedule.size, dtype=np.float64)
            for worker in self.workers:
                mask = schedule == worker.worker_id
                count = int(mask.sum())
                if count:
                    g_rows, _local, s_w = worker.next_samples(count)
                    rows[mask] = g_rows
                    step_weights[mask] = s_w

            for start in range(0, schedule.size, block):
                stop = min(start + block, schedule.size)
                global_step = self._run_block(
                    event,
                    trace,
                    rows[start:stop],
                    schedule[start:stop],
                    step_weights[start:stop],
                    global_step,
                )

            if self.epoch_end is not None:
                self.epoch_end(self, epoch, event)
            trace.add_epoch(event)
            snapshot = w.copy()
            if keep_epoch_weights:
                epoch_weights.append(snapshot)
            if self.epoch_callback is not None:
                self.epoch_callback(epoch, snapshot)

        self._w = None
        self._log = None
        return SimulationResult(
            weights=w.copy(),
            trace=trace,
            epoch_weights=epoch_weights if keep_epoch_weights else None,
        )

    # ------------------------------------------------------------------ #
    def _run_block(
        self,
        event: EpochEvent,
        trace: ExecutionTrace,
        rows: np.ndarray,
        wids: np.ndarray,
        step_weights: np.ndarray,
        global_step: int,
    ) -> int:
        """Execute one macro-step; returns the advanced global step counter."""
        w = self._w
        rule = self.update_rule
        n_iter = rows.size
        delays = self.staleness.draw_batch(self._rng, n_iter)

        idx, val, lengths = self.X.gather_rows(rows)
        # Stateless SGD-style rules on a kernel with a fused frozen-block
        # primitive skip the composable margins → entry-weights → scatter
        # sequence: the whole macro-step (same frozen-margin semantics, same
        # regulariser-at-block-start evaluation) runs as one native call
        # after the conflict replay below.
        fused = (
            getattr(rule, "frozen_fusable", False)
            and getattr(self.kernel, "fused_sample_block", False)
            and self.kernel.supports_objective(rule.objective)
        )
        entry_weights = None
        if not fused:
            margins = self.kernel.segment_margins(idx, val, lengths, w)
            entry_weights = rule.block_entry_weights(
                w=w,
                rows=rows,
                y=self.y[rows],
                margins=margins,
                step_weights=step_weights,
                idx=idx,
                val=val,
                lengths=lengths,
            )

        # Register the support of the rule's dense delta (one mask per
        # distinct vector — SVRG installs a fresh -λµ each epoch), then
        # replay the per-sample conflict accounting against the pre-update
        # history plus this block's own record stream.
        dense = rule.dense_delta
        if dense is not None and self._last_dense_obj is not dense:
            self._last_dense_ref = self._register_dense_mask(dense)
            self._last_dense_obj = dense
        block_records = self._block_records(
            wids, rows, self._last_dense_ref if dense is not None else -1
        )
        conflicts = self._replay_conflicts(rows, wids, delays, idx, lengths, block_records)

        if dense is not None:
            w += n_iter * dense
        if fused:
            self.kernel.run_frozen_block(
                w, rule.objective, idx, val, lengths, self.y[rows],
                -rule.step_size * step_weights,
            )
        else:
            self.kernel.scatter_add(w, idx, entry_weights)
        self._log.append(*block_records)
        self._prune_dense_masks()

        # Replay SharedModel.read_stale's explicit history clamp: iteration
        # k reads at record position log.total + rpi*k with at most _maxlen
        # retained records; a requested delay beyond what is retained *and*
        # ever written counts as a truncated reconstruction.
        rpi = int(getattr(rule, "records_per_iteration", 1))
        read_pos = self._log.total - rpi * n_iter + rpi * np.arange(n_iter, dtype=np.int64)
        avail = np.minimum(read_pos, self._maxlen)
        overflows = int(
            np.count_nonzero((delays > avail) & (read_pos > avail) & (lengths > 0))
        )

        # The per-sample engine prices a dense update at the full dimension
        # (SharedModel.apply_dense_update touches every coordinate).
        fold_block(
            event,
            rule,
            iterations=n_iter,
            support_nnz=int(lengths.sum()),
            conflicts=int(conflicts.sum()),
            delays=delays,
            history_overflows=overflows,
            dense_coords_per_iteration=int(dense.shape[0]) if dense is not None else 0,
            count_sample_draws=self.count_sample_draws,
        )
        if self.record_iterations and trace.iterations is not None:
            for k in range(n_iter):
                trace.iterations.append(
                    IterationEvent(
                        global_step=global_step + k,
                        worker_id=int(wids[k]),
                        sample_index=int(rows[k]),
                        delay=int(delays[k]),
                        conflicts=int(conflicts[k]),
                        grad_nnz=int(lengths[k]),
                        step_scale=float(step_weights[k]),
                    )
                )
        return global_step + n_iter

    # ------------------------------------------------------------------ #
    def _block_records(
        self, wids: np.ndarray, rows: np.ndarray, dense_ref: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """This block's ``(kind, worker, row, dense_ref)`` record stream.

        One sparse record per iteration, preceded by ``rpi - 1`` dense
        records (SVRG applies its dense µ term before the sparse delta, so
        within an iteration the sparse record comes last).
        """
        rpi = int(getattr(self.update_rule, "records_per_iteration", 1))
        n_iter = wids.size
        if rpi == 1:
            return np.ones(n_iter, dtype=np.int8), wids, rows, np.full(n_iter, -1, dtype=np.int64)
        per_iter = np.concatenate([np.zeros(rpi - 1, dtype=np.int8), np.ones(1, dtype=np.int8)])
        kind = np.tile(per_iter, n_iter)
        worker = np.repeat(wids, rpi)
        row = np.where(kind == 1, np.repeat(rows, rpi), -1)
        ref = np.where(kind == 0, dense_ref, -1).astype(np.int64)
        return kind, worker, row, ref

    def _replay_conflicts(
        self,
        rows: np.ndarray,
        wids: np.ndarray,
        delays: np.ndarray,
        idx: np.ndarray,
        lengths: np.ndarray,
        block_records: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> np.ndarray:
        """Per-iteration conflict counts, replaying the per-sample semantics.

        Iteration ``k`` of the block reads at record position
        ``R_k = total_records + rpi * k`` and misses the last
        ``min(delay_k, R_k, maxlen)`` records; every missed record written
        by another worker whose support intersects the read support counts
        once — exactly :meth:`SharedModel.read_stale`.
        """
        n_iter = rows.size
        conflicts = np.zeros(n_iter, dtype=np.int64)
        max_delay = int(self.staleness.max_delay)
        if max_delay == 0:
            return conflicts
        rpi = int(getattr(self.update_rule, "records_per_iteration", 1))
        log = self._log

        # Record positions and clamped window lengths.
        read_pos = log.total + rpi * np.arange(n_iter, dtype=np.int64)
        eff = np.minimum(delays, np.minimum(read_pos, self._maxlen))
        eff = np.where(lengths > 0, eff, 0)  # empty-support reads never conflict
        if not eff.any():
            return conflicts

        # Combined record view: retained tail + this block's records, with
        # implicit positions base + j for combined index j.
        n_tail = log.kind.size
        base = log.total - n_tail
        blk_kind, blk_worker, blk_row, blk_ref = block_records
        kind = np.concatenate([log.kind, blk_kind])
        worker = np.concatenate([log.worker, blk_worker])
        row = np.concatenate([log.row, blk_row])
        dense_ref = np.concatenate([log.dense_ref, blk_ref])

        lo = read_pos - eff - base  # combined-index window [lo, hi)
        hi = read_pos - base
        lo = np.maximum(lo, 0)

        # ---- dense records: one conflict per foreign dense write whose ---- #
        # ---- recorded support (nonzero of the written delta) touches  ---- #
        # ---- the read support, grouped by support mask                ---- #
        if (kind == 0).any():
            for ref in np.unique(dense_ref[kind == 0]):
                mask_vec = self._dense_masks.get(int(ref))
                if mask_vec is not None:
                    hit = segment_bool_any(mask_vec[idx], lengths)
                else:  # untracked record (defensive): assume a dense support
                    hit = lengths > 0
                is_ref = (kind == 0) & (dense_ref == ref)
                prefix_total = np.concatenate([[0], np.cumsum(is_ref)])
                total_cnt = prefix_total[hi] - prefix_total[lo]
                own_cnt = np.zeros(n_iter, dtype=np.int64)
                for worker_id in np.unique(wids):
                    sel = wids == worker_id
                    prefix_own = np.concatenate([[0], np.cumsum(is_ref & (worker == worker_id))])
                    own_cnt[sel] = (prefix_own[hi] - prefix_own[lo])[sel]
                conflicts += np.where(hit, total_cnt - own_cnt, 0)

        # ---- sparse records: banded pair machinery over shared columns ---- #
        sparse_mask = kind == 1
        spos = np.nonzero(sparse_mask)[0]  # combined indices of sparse records
        if spos.size == 0:
            return conflicts
        srow = row[spos]
        sworker = worker[spos]
        # Local sparse index of each reader's own record: block iteration k is
        # the (n_tail_sparse + k)-th sparse record.
        n_tail_sparse = int(np.count_nonzero(log.kind == 1))
        reader_q = n_tail_sparse + np.arange(n_iter, dtype=np.int64)
        # Window bounds in sparse-index space.
        lo_q = np.searchsorted(spos, lo, side="left")
        width = reader_q - lo_q
        max_width = int(width.max(initial=0))
        if max_width <= 0:
            return conflicts

        # Gather supports for the tail's sparse rows once (block rows reuse
        # the already-gathered arrays; sparse records always carry a real row).
        t_idx, _t_val, t_lengths = self.X.gather_rows(srow[:n_tail_sparse])
        ecol = np.concatenate([t_idx, idx])
        eq = np.concatenate(
            [
                np.repeat(np.arange(n_tail_sparse, dtype=np.int64), t_lengths),
                np.repeat(reader_q, lengths),
            ]
        )
        if ecol.size == 0:
            return conflicts

        order = np.lexsort((eq, ecol))
        cs = ecol[order]
        qs = eq[order]

        # Banded pair sweep: at offset o, each entry is paired with the o-th
        # previous touch of the same column; a pair conflicts when the later
        # touch is a block reader and the earlier one falls inside its
        # window.  Validity is monotone in o (the o-th predecessor only
        # recedes), so the sweep stops at the first empty offset.
        pair_writer: list[np.ndarray] = []
        pair_reader: list[np.ndarray] = []
        for offset in range(1, min(max_width, cs.size - 1) + 1):
            a = qs[:-offset]
            b = qs[offset:]
            m = (cs[offset:] == cs[:-offset]) & (b >= n_tail_sparse)
            k_of_b = np.clip(b - n_tail_sparse, 0, n_iter - 1)
            m &= a >= lo_q[k_of_b]
            if not m.any():
                break
            pair_writer.append(a[m])
            pair_reader.append(b[m])
        if not pair_writer:
            return conflicts
        writers = np.concatenate(pair_writer)
        readers = np.concatenate(pair_reader)
        # Deduplicate (reader, writer) pairs shared by several columns: one
        # undone update counts once however many coordinates it hits.
        n_sparse = spos.size
        keys = np.unique(readers * n_sparse + writers)
        u_readers = keys // n_sparse
        u_writers = keys % n_sparse
        foreign = sworker[u_writers] != sworker[u_readers]
        if foreign.any():
            counted = np.bincount(u_readers[foreign] - n_tail_sparse, minlength=n_iter)
            conflicts += counted
        return conflicts


__all__ = ["BatchedSimulator", "BatchedUpdateRule"]
