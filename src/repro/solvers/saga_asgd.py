"""Asynchronous SAGA — a paper-adjacent scenario unlocked by the runtime.

The paper lumps SAGA with SVRG as "SVRG-styled" variance reduction: both
pay a dense per-iteration term on sparse data (SAGA's running average
gradient ``ḡ`` plays µ's role), so both lose the absolute-time race to
IS-ASGD even while winning per epoch.  The original codebase only ran SAGA
serially; with the update math factored into the single
:class:`~repro.rules.saga.SAGARule` definition, the asynchronous variant
costs *one declaration* — this file — and immediately runs on all four
execution tiers (per-sample ground truth, batched macro-steps, real
threads, and the multi-process cluster, where the coefficient table and
``ḡ`` live in shared memory).

Asynchrony-specific semantics (lock-free ``ḡ`` updates, per-block state
freezing on the batched tiers) are documented on the rule.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.async_engine.modes import resolve_async_mode
from repro.async_engine.staleness import StalenessModel, UniformDelay
from repro.core.balancing import random_order
from repro.core.partition import partition_dataset
from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import RandomState, as_rng


class SAGAASGDSolver(BaseSolver):
    """Lock-free asynchronous SAGA with uniform sampling.

    Parameters mirror :class:`~repro.solvers.asgd.ASGDSolver`; the update
    rule is the registered ``saga`` definition (coefficient table + running
    average gradient shared across workers).
    """

    name = "saga_asgd"
    #: Registered update rule this solver declares.
    rule = "saga"

    def __init__(
        self,
        *,
        step_size: float = 0.1,
        epochs: int = 10,
        num_workers: int = 4,
        seed: RandomState = 0,
        cost_model=None,
        record_every: int = 1,
        staleness: Optional[StalenessModel] = None,
        kernel=None,
        async_mode: Optional[str] = None,
        batch_size="auto",
        shard_scheme: str = "range",
        num_shards: Optional[int] = None,
    ) -> None:
        super().__init__(step_size=step_size, epochs=epochs, seed=seed,
                         cost_model=cost_model, record_every=record_every, kernel=kernel)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self.staleness = staleness
        self.async_mode = resolve_async_mode(async_mode)
        self.batch_size = batch_size
        self.shard_scheme = shard_scheme
        self.num_shards = num_shards

    @property
    def parallel_workers(self) -> int:
        return self.num_workers

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run asynchronous SAGA on ``problem``."""
        rng = as_rng(self.seed)
        order = random_order(problem.n_samples, seed=rng)
        partition = partition_dataset(order, problem.lipschitz_constants(), self.num_workers,
                                      scheme="uniform")
        return self._execute_async(
            problem,
            partition,
            rng,
            rule=self.rule,
            staleness=self.staleness or UniformDelay(max(self.num_workers - 1, 0)),
            include_sampling=False,
            extra_info={"num_workers": self.num_workers},
            initial_weights=initial_weights,
        )


__all__ = ["SAGAASGDSolver"]
