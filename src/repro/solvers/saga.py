"""SAGA (Defazio et al. 2014), the other VR baseline the paper cites.

SAGA keeps a table of the most recent gradient of every sample and updates

    w_{t+1} = w_t - λ [ ∇f_i(w_t) - g_i + ḡ ]

where ``g_i`` is the stored gradient of sample ``i`` and ``ḡ`` their
average.  For linear models the stored gradient of a sample is a scalar
multiple of ``x_i``, so the table costs O(n) memory, but the running
average ``ḡ`` is dense — SAGA therefore suffers exactly the same dense-
update penalty as SVRG on sparse data, which is why the paper lumps the two
together as "SVRG-styled" VR.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.solvers.base import BaseSolver, EpochEngine, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import as_rng


class SAGASolver(BaseSolver):
    """Serial SAGA with the scalar-coefficient gradient table."""

    name = "saga"

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run ``epochs`` passes of SAGA."""
        rng = as_rng(self.seed)
        X, y, obj = problem.X, problem.y, problem.objective
        n, d = problem.n_samples, problem.n_features
        kernel = self.kernel
        engine = EpochEngine(problem, initial_weights)

        # Stored loss-derivative coefficient per sample (gradient = coef * x_i
        # + regulariser); initialised at the starting iterate's coefficients.
        # Both the table and its running average are batched kernel calls.
        coefs = kernel.grad_coeffs(obj, X, y, engine.w)
        avg_grad = kernel.accumulate_rows(
            X, np.arange(n), coefs / n, np.zeros(d, dtype=np.float64)
        )
        lam = self.step_size

        def epoch_body(epoch: int, event) -> None:
            w = engine.w
            if epoch == 0:
                # Fold the table-initialisation cost into the first epoch.
                event.merge_iteration(grad_nnz=X.nnz, dense_coords=d, conflicts=0, delay=0,
                                      drew_sample=False)
            order = rng.permutation(n)
            total_nnz = 0
            for row in order:
                row = int(row)
                x_idx, x_val = kernel.row(X, row)
                margin = kernel.row_margin(X, row, w)
                new_coef = obj._loss_derivative(margin, float(y[row]))
                old_coef = coefs[row]

                # Dense part: the running average gradient (plus regulariser).
                reg_grad = obj.regularizer.grad_dense(w)
                w -= lam * (avg_grad + reg_grad)
                # Sparse part: (new - old) * x_i on the support.
                if x_idx.size:
                    delta = (new_coef - old_coef) * x_val
                    kernel.row_update(w, X, row, delta, -lam)
                    # Maintain the running average and the table.
                    kernel.row_update(avg_grad, X, row, delta / n, 1.0)
                coefs[row] = new_coef
                total_nnz += 2 * int(x_idx.size)
            event.merge_bulk(iterations=n, grad_nnz=total_nnz, dense_coords=2 * d * n)

        engine.run(self.epochs, epoch_body)
        return self._finalize(
            problem, engine.weights_by_epoch, engine.trace, include_sampling=False
        )


__all__ = ["SAGASolver"]
