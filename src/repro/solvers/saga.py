"""SAGA (Defazio et al. 2014), the other VR baseline the paper cites.

SAGA keeps a table of the most recent gradient of every sample and updates

    w_{t+1} = w_t - λ [ ∇f_i(w_t) - g_i + ḡ ]

where ``g_i`` is the stored gradient of sample ``i`` and ``ḡ`` their
average.  For linear models the stored gradient of a sample is a scalar
multiple of ``x_i``, so the table costs O(n) memory, but the running
average ``ḡ`` is dense — SAGA therefore suffers exactly the same dense-
update penalty as SVRG on sparse data, which is why the paper lumps the two
together as "SVRG-styled" VR.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import as_rng


class SAGASolver(BaseSolver):
    """Serial SAGA with the scalar-coefficient gradient table."""

    name = "saga"

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run ``epochs`` passes of SAGA."""
        rng = as_rng(self.seed)
        X, y, obj = problem.X, problem.y, problem.objective
        n, d = problem.n_samples, problem.n_features
        w = (
            np.zeros(d)
            if initial_weights is None
            else np.ascontiguousarray(initial_weights, dtype=np.float64).copy()
        )

        # Stored loss-derivative coefficient per sample (gradient = coef * x_i
        # + regulariser); initialised at the zero vector's coefficients.
        coefs = np.zeros(n, dtype=np.float64)
        avg_grad = np.zeros(d, dtype=np.float64)
        for i in range(n):
            x_idx, x_val = X.row(i)
            margin = float(np.dot(x_val, w[x_idx])) if x_idx.size else 0.0
            coefs[i] = obj._loss_derivative(margin, float(y[i]))
            if x_idx.size:
                np.add.at(avg_grad, x_idx, coefs[i] * x_val / n)

        trace = ExecutionTrace()
        weights_by_epoch = []
        lam = self.step_size

        init_event = EpochEvent(epoch=-1)
        init_event.merge_iteration(grad_nnz=X.nnz, dense_coords=d, conflicts=0, delay=0,
                                   drew_sample=False)

        for epoch in range(self.epochs):
            event = EpochEvent(epoch=epoch)
            if epoch == 0:
                # Fold the table-initialisation cost into the first epoch.
                event.merge_iteration(grad_nnz=X.nnz, dense_coords=d, conflicts=0, delay=0,
                                      drew_sample=False)
            order = rng.permutation(n)
            for row in order:
                row = int(row)
                x_idx, x_val = X.row(row)
                margin = float(np.dot(x_val, w[x_idx])) if x_idx.size else 0.0
                new_coef = obj._loss_derivative(margin, float(y[row]))
                old_coef = coefs[row]

                # Dense part: the running average gradient (plus regulariser).
                step_dense = avg_grad.copy()
                reg_grad = obj.regularizer.grad_dense(w)
                w -= lam * (step_dense + reg_grad)
                # Sparse part: (new - old) * x_i on the support.
                if x_idx.size:
                    np.add.at(w, x_idx, -lam * (new_coef - old_coef) * x_val)
                    # Maintain the running average and the table.
                    np.add.at(avg_grad, x_idx, (new_coef - old_coef) * x_val / n)
                coefs[row] = new_coef

                event.merge_iteration(
                    grad_nnz=2 * int(x_idx.size),
                    dense_coords=2 * d,
                    conflicts=0,
                    delay=0,
                    drew_sample=False,
                )
            trace.add_epoch(event)
            weights_by_epoch.append(w.copy())

        return self._finalize(problem, weights_by_epoch, trace, include_sampling=False)


__all__ = ["SAGASolver"]
