"""Training results returned by every solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.async_engine.events import ExecutionTrace
from repro.metrics.convergence import ConvergenceCurve


@dataclass
class TrainResult:
    """The outcome of one ``solver.fit(problem)`` call.

    Attributes
    ----------
    solver:
        Name of the solver that produced the result.
    weights:
        Final model weights.
    curve:
        Per-epoch convergence curve (RMSE, error rate, simulated
        wall-clock).
    trace:
        Execution trace with operation counts and conflicts; serial solvers
        also produce one (with zero conflicts) so the cost model can assign
        them a wall-clock on the same footing.
    info:
        Solver-specific extras: balancing decision, ρ, sampling overhead,
        measured training time, ...
    """

    solver: str
    weights: np.ndarray
    curve: ConvergenceCurve
    trace: Optional[ExecutionTrace] = None
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def final_rmse(self) -> float:
        """RMSE of the last recorded epoch."""
        return self.curve.final_rmse

    @property
    def final_error_rate(self) -> float:
        """Error rate of the last recorded epoch."""
        return self.curve.final_error_rate

    @property
    def best_error_rate(self) -> float:
        """Best (lowest) error rate reached during training."""
        return self.curve.best_error_rate

    @property
    def total_time(self) -> float:
        """Simulated wall-clock of the full run."""
        return self.curve.total_time

    def summary(self) -> Dict[str, Any]:
        """Flat summary dict for reports and tests."""
        row: Dict[str, Any] = {
            "solver": self.solver,
            "epochs": len(self.curve),
            "final_rmse": self.final_rmse,
            "final_error_rate": self.final_error_rate,
            "best_error_rate": self.best_error_rate,
            "total_time": self.total_time,
        }
        if self.trace is not None:
            row["iterations"] = self.trace.total_iterations
            row["conflict_rate"] = self.trace.conflict_rate()
        for key, value in self.info.items():
            if isinstance(value, (int, float, str, bool, np.integer, np.floating)):
                row[key] = value
        return row


__all__ = ["TrainResult"]
