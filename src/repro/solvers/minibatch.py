"""Mini-batch SGD with optional importance sampling.

The paper's related work cites importance sampling for mini-batches
(Csiba & Richtárik, 2016) as the natural companion of per-sample IS; this
solver provides the straightforward independent-sampling variant as an
extension of the reproduction:

* a batch ``B_t`` of ``batch_size`` indices is drawn i.i.d. from the sampling
  distribution (uniform, or the Eq.-12 Lipschitz distribution);
* the update averages the re-weighted per-sample gradients,

    w_{t+1} = w_t - (λ / |B_t|) Σ_{i ∈ B_t} (n p_i)^{-1} ∇f_i(w_t),

  which keeps the estimator unbiased for any sampling distribution and
  reduces its variance by a further factor ``1/|B_t|``.

The solver is serial; its purpose is to quantify how much of the IS gain
survives (or is amplified by) mini-batching, which the ablation benchmark
uses for the optional-extension experiment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.core.importance import lipschitz_probabilities, stepsize_reweighting
from repro.core.sampler import AliasSampler
from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import RandomState, as_rng


class MiniBatchSGDSolver(BaseSolver):
    """Serial mini-batch SGD with uniform or Lipschitz importance sampling.

    Parameters
    ----------
    batch_size:
        Number of samples drawn per update.
    importance_sampling:
        Draw batches from the Eq.-12 Lipschitz distribution (True) or
        uniformly (False).
    step_clip:
        Cap on the per-sample re-weighting factor ``1/(n p_i)``.
    """

    name = "minibatch_sgd"

    def __init__(
        self,
        *,
        step_size: float = 0.1,
        epochs: int = 10,
        batch_size: int = 16,
        importance_sampling: bool = True,
        step_clip: float = 100.0,
        seed: RandomState = 0,
        cost_model=None,
        record_every: int = 1,
    ) -> None:
        super().__init__(step_size=step_size, epochs=epochs, seed=seed,
                         cost_model=cost_model, record_every=record_every)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if step_clip <= 0:
            raise ValueError("step_clip must be positive")
        self.batch_size = int(batch_size)
        self.importance_sampling = bool(importance_sampling)
        self.step_clip = float(step_clip)

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run ``epochs`` passes of mini-batch (IS-)SGD over ``problem``."""
        rng = as_rng(self.seed)
        X, y, obj = problem.X, problem.y, problem.objective
        n = problem.n_samples
        w = (
            np.zeros(problem.n_features)
            if initial_weights is None
            else np.ascontiguousarray(initial_weights, dtype=np.float64).copy()
        )

        if self.importance_sampling:
            L = problem.lipschitz_constants()
            probs = lipschitz_probabilities(L)
            reweight = np.minimum(stepsize_reweighting(probs), self.step_clip)
        else:
            probs = np.full(n, 1.0 / n)
            reweight = np.ones(n)
        sampler = AliasSampler(probs, seed=int(rng.integers(0, 2**31 - 1)))

        batches_per_epoch = max(1, n // self.batch_size)
        lam = self.step_size
        trace = ExecutionTrace()
        weights_by_epoch = []

        for epoch in range(self.epochs):
            event = EpochEvent(epoch=epoch)
            for _ in range(batches_per_epoch):
                batch = sampler.sample(self.batch_size, rng=rng)
                batch_nnz = 0
                # Accumulate the averaged, re-weighted batch gradient sparsely.
                accum: dict[int, float] = {}
                for row in batch:
                    row = int(row)
                    x_idx, x_val = X.row(row)
                    grad = obj.sample_grad(w, x_idx, x_val, float(y[row]))
                    scale = reweight[row] / self.batch_size
                    batch_nnz += grad.nnz
                    for col, val in zip(grad.indices, grad.values):
                        accum[int(col)] = accum.get(int(col), 0.0) + scale * float(val)
                if accum:
                    cols = np.fromiter(accum.keys(), dtype=np.int64, count=len(accum))
                    vals = np.fromiter(accum.values(), dtype=np.float64, count=len(accum))
                    np.add.at(w, cols, -lam * vals)
                event.merge_iteration(
                    grad_nnz=batch_nnz, dense_coords=0, conflicts=0, delay=0, drew_sample=True
                )
            trace.add_epoch(event)
            weights_by_epoch.append(w.copy())

        info = {
            "batch_size": self.batch_size,
            "importance_sampling": self.importance_sampling,
        }
        return self._finalize(problem, weights_by_epoch, trace,
                              include_sampling=self.importance_sampling, info=info)


__all__ = ["MiniBatchSGDSolver"]
