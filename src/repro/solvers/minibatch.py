"""Mini-batch SGD with optional importance sampling.

The paper's related work cites importance sampling for mini-batches
(Csiba & Richtárik, 2016) as the natural companion of per-sample IS; this
solver provides the straightforward independent-sampling variant as an
extension of the reproduction:

* a batch ``B_t`` of ``batch_size`` indices is drawn i.i.d. from the sampling
  distribution (uniform, or the Eq.-12 Lipschitz distribution);
* the update averages the re-weighted per-sample gradients,

    w_{t+1} = w_t - (λ / |B_t|) Σ_{i ∈ B_t} (n p_i)^{-1} ∇f_i(w_t),

  which keeps the estimator unbiased for any sampling distribution and
  reduces its variance by a further factor ``1/|B_t|``.

The solver is serial; its purpose is to quantify how much of the IS gain
survives (or is amplified by) mini-batching, which the ablation benchmark
uses for the optional-extension experiment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.importance import lipschitz_probabilities, stepsize_reweighting
from repro.core.sampler import AliasSampler
from repro.solvers.base import BaseSolver, EpochEngine, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import RandomState, as_rng


class MiniBatchSGDSolver(BaseSolver):
    """Serial mini-batch SGD with uniform or Lipschitz importance sampling.

    Parameters
    ----------
    batch_size:
        Number of samples drawn per update.
    importance_sampling:
        Draw batches from the Eq.-12 Lipschitz distribution (True) or
        uniformly (False).
    step_clip:
        Cap on the per-sample re-weighting factor ``1/(n p_i)``.
    """

    name = "minibatch_sgd"

    def __init__(
        self,
        *,
        step_size: float = 0.1,
        epochs: int = 10,
        batch_size: int = 16,
        importance_sampling: bool = True,
        step_clip: float = 100.0,
        seed: RandomState = 0,
        cost_model=None,
        record_every: int = 1,
        kernel=None,
    ) -> None:
        super().__init__(step_size=step_size, epochs=epochs, seed=seed,
                         cost_model=cost_model, record_every=record_every, kernel=kernel)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if step_clip <= 0:
            raise ValueError("step_clip must be positive")
        self.batch_size = int(batch_size)
        self.importance_sampling = bool(importance_sampling)
        self.step_clip = float(step_clip)

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run ``epochs`` passes of mini-batch (IS-)SGD over ``problem``."""
        rng = as_rng(self.seed)
        X, y, obj = problem.X, problem.y, problem.objective
        n = problem.n_samples
        kernel = self.kernel
        engine = EpochEngine(problem, initial_weights)

        if self.importance_sampling:
            L = problem.lipschitz_constants()
            probs = lipschitz_probabilities(L)
            reweight = np.minimum(stepsize_reweighting(probs), self.step_clip)
        else:
            probs = np.full(n, 1.0 / n)
            reweight = np.ones(n)
        sampler = AliasSampler(probs, seed=int(rng.integers(0, 2**31 - 1)))

        batches_per_epoch = max(1, n // self.batch_size)
        lam = self.step_size
        row_nnz = np.diff(X.indptr)

        def epoch_body(epoch: int, event) -> None:
            w = engine.w
            total_nnz = 0
            for _ in range(batches_per_epoch):
                batch = sampler.sample(self.batch_size, rng=rng)
                # The averaged, re-weighted batch gradient in one batched
                # kernel call (gather → margins → coeffs → compress), applied
                # index-compressed: only the batch support is touched.
                cols, vals = kernel.batch_grad(
                    obj, X, batch, w, y, reweight[batch] / self.batch_size
                )
                if cols.size:
                    w[cols] -= lam * vals
                total_nnz += int(row_nnz[batch].sum())
            event.merge_bulk(
                iterations=batches_per_epoch,
                grad_nnz=total_nnz,
                sample_draws=batches_per_epoch,
            )

        engine.run(self.epochs, epoch_body)
        info = {
            "batch_size": self.batch_size,
            "importance_sampling": self.importance_sampling,
        }
        return self._finalize(problem, engine.weights_by_epoch, engine.trace,
                              include_sampling=self.importance_sampling, info=info)


__all__ = ["MiniBatchSGDSolver"]
