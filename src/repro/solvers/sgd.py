"""Serial stochastic gradient descent (the paper's SGD baseline).

Plain SGD with uniform sampling, Eq. 3:

    w_{t+1} = w_t - λ ∇f_{i_t}(w_t),      i_t ~ Uniform{1..n}.

Sampling is without replacement within each epoch (a fresh random
permutation per epoch), the standard practical variant.  The whole epoch is
handed to the kernel backend as one schedule block
(:meth:`~repro.solvers.base.EpochEngine.run_sample_block`): a single fused
C call on the ``native`` backend, the identical per-step loop elsewhere.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.solvers.base import BaseSolver, EpochEngine, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import as_rng


class SGDSolver(BaseSolver):
    """Serial uniform-sampling SGD."""

    name = "sgd"

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run ``epochs`` passes of serial SGD over ``problem``."""
        rng = as_rng(self.seed)
        obj = problem.objective
        n = problem.n_samples
        kernel = self.kernel
        engine = EpochEngine(problem, initial_weights)
        lam = self.step_size

        def epoch_body(epoch: int, event) -> None:
            order = rng.permutation(n)
            total_nnz = engine.run_sample_block(kernel, obj, order, np.full(n, -lam))
            event.merge_bulk(iterations=n, grad_nnz=total_nnz)

        engine.run(self.epochs, epoch_body)
        return self._finalize(
            problem, engine.weights_by_epoch, engine.trace, include_sampling=False
        )


__all__ = ["SGDSolver"]
