"""Serial stochastic gradient descent (the paper's SGD baseline).

Plain SGD with uniform sampling, Eq. 3:

    w_{t+1} = w_t - λ ∇f_{i_t}(w_t),      i_t ~ Uniform{1..n}.

Sampling is without replacement within each epoch (a fresh random
permutation per epoch), the standard practical variant.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import as_rng


class SGDSolver(BaseSolver):
    """Serial uniform-sampling SGD."""

    name = "sgd"

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run ``epochs`` passes of serial SGD over ``problem``."""
        rng = as_rng(self.seed)
        X, y, obj = problem.X, problem.y, problem.objective
        n = problem.n_samples
        w = (
            np.zeros(problem.n_features)
            if initial_weights is None
            else np.ascontiguousarray(initial_weights, dtype=np.float64).copy()
        )

        trace = ExecutionTrace()
        weights_by_epoch = []
        lam = self.step_size

        for epoch in range(self.epochs):
            event = EpochEvent(epoch=epoch)
            order = rng.permutation(n)
            for row in order:
                x_idx, x_val = X.row(int(row))
                grad = obj.sample_grad(w, x_idx, x_val, float(y[row]))
                if grad.indices.size:
                    np.add.at(w, grad.indices, -lam * grad.values)
                event.merge_iteration(
                    grad_nnz=grad.nnz, dense_coords=0, conflicts=0, delay=0, drew_sample=False
                )
            trace.add_epoch(event)
            weights_by_epoch.append(w.copy())

        return self._finalize(problem, weights_by_epoch, trace, include_sampling=False)


__all__ = ["SGDSolver"]
