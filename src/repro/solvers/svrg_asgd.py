"""Asynchronous SVRG (Algorithm 1 of the paper, the "SVRG-ASGD" baseline).

Workers run lock-free over the shared model; once per epoch a snapshot
``s = w`` and its full gradient ``µ = ∇F(s)`` are computed, and every inner
iteration applies the variance-reduced gradient
``v_t = ∇f_i(ŵ_t) - ∇f_i(s) + µ``.  The implementation follows the
literature version faithfully — the dense ``µ`` is added at *every*
iteration (no skip-µ approximation) — because the paper explicitly
evaluates that version; the approximation is available as an ablation flag.

The per-iteration dense cost is what makes this solver lose the absolute
convergence race on sparse data even though it wins per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.async_engine.batched import BatchedSimulator
from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.async_engine.modes import resolve_async_mode
from repro.async_engine.shared_model import SharedModel
from repro.async_engine.staleness import StalenessModel, UniformDelay
from repro.async_engine.worker import build_workers
from repro.core.balancing import random_order
from repro.core.partition import partition_dataset
from repro.objectives.base import Objective
from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import RandomState, as_rng


@dataclass
class BatchedSVRGRule:
    """Macro-step SVRG update: variance-reduced deltas from block-start margins.

    The epoch hook installs the snapshot state (``s``, ``µ`` and the
    precomputed snapshot margins ``X @ s``); each block then evaluates
    ``-λ (phi'(⟨x_i, ŵ⟩) - phi'(⟨x_i, s⟩)) x_i`` for every scheduled sample
    through the objective's batch API, and the simulator applies the dense
    ``-λµ`` term once per iteration (folded into one vector add per block).
    """

    objective: Objective
    step_size: float
    skip_dense_term: bool = False
    dense_delta: Optional[np.ndarray] = None
    records_per_iteration: int = 2
    grad_nnz_multiplier: int = 2

    def __post_init__(self) -> None:
        if self.skip_dense_term:
            # Skip-µ ablation: one sparse record per iteration; the dense
            # term is applied (and logged) once per epoch by the epoch hook.
            self.records_per_iteration = 1
        self._snapshot_margins: Optional[np.ndarray] = None
        self._mu: Optional[np.ndarray] = None

    def set_snapshot(self, mu: np.ndarray, snapshot_margins: np.ndarray) -> None:
        """Install the per-epoch snapshot state (called by the epoch hook)."""
        self._mu = mu
        self._snapshot_margins = snapshot_margins
        self.dense_delta = None if self.skip_dense_term else -self.step_size * mu

    def epoch_dense_delta(self, iterations: int) -> np.ndarray:
        """The accumulated ``-λ µ · iterations`` term of the skip-µ ablation."""
        if self._mu is None:
            raise RuntimeError("set_snapshot must be called before epoch_dense_delta")
        return -self.step_size * self._mu * iterations

    def block_entry_weights(
        self,
        *,
        w: np.ndarray,
        rows: np.ndarray,
        y: np.ndarray,
        margins: np.ndarray,
        step_weights: np.ndarray,
        idx: np.ndarray,
        val: np.ndarray,
        lengths: np.ndarray,
    ) -> np.ndarray:
        if self._snapshot_margins is None:
            raise RuntimeError("set_snapshot must be called before the first block")
        coef_w = self.objective.batch_grad_coeffs(margins, y)
        coef_s = self.objective.batch_grad_coeffs(self._snapshot_margins[rows], y)
        return -self.step_size * np.repeat(coef_w - coef_s, lengths) * val


class SVRGASGDSolver(BaseSolver):
    """Lock-free asynchronous SVRG (generic SVRG-styled ASGD of Algorithm 1)."""

    name = "svrg_asgd"

    def __init__(
        self,
        *,
        step_size: float = 0.1,
        epochs: int = 10,
        num_workers: int = 4,
        seed: RandomState = 0,
        cost_model=None,
        record_every: int = 1,
        staleness: Optional[StalenessModel] = None,
        skip_dense_term: bool = False,
        kernel=None,
        async_mode: Optional[str] = None,
        batch_size="auto",
        shard_scheme: str = "range",
        num_shards: Optional[int] = None,
    ) -> None:
        super().__init__(step_size=step_size, epochs=epochs, seed=seed,
                         cost_model=cost_model, record_every=record_every, kernel=kernel)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self.staleness = staleness
        self.skip_dense_term = bool(skip_dense_term)
        self.async_mode = resolve_async_mode(async_mode)
        self.batch_size = batch_size
        self.shard_scheme = shard_scheme
        self.num_shards = num_shards

    @property
    def parallel_workers(self) -> int:
        return self.num_workers

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run asynchronous SVRG on ``problem``.

        The epoch loop is written directly against the shared model (rather
        than through :class:`~repro.async_engine.simulator.AsyncSimulator`)
        because the update has both a sparse component (applied per support
        coordinate, with staleness) and a dense component (µ) that must be
        applied to the whole vector every iteration.
        """
        rng = as_rng(self.seed)
        X, y, obj = problem.X, problem.y, problem.objective
        n, d = problem.n_samples, problem.n_features

        order = random_order(n, seed=rng)
        partition = partition_dataset(order, problem.lipschitz_constants(), self.num_workers,
                                      scheme="uniform")
        if self.async_mode == "process":
            return self._fit_process(problem, partition, rng, initial_weights)
        if self.async_mode == "threads":
            return self._fit_threads(problem, partition, rng, initial_weights)
        iterations_per_worker = max(1, n // self.num_workers)
        workers = build_workers(partition, iterations_per_worker,
                                seed=int(rng.integers(0, 2**31 - 1)),
                                importance_sampling=False)
        staleness = self.staleness or UniformDelay(max(self.num_workers - 1, 0))

        if self.async_mode == "batched":
            return self._fit_batched(problem, rng, workers, staleness, initial_weights)

        history = max(staleness.max_delay, 1) * max(self.num_workers, 1)
        model = SharedModel(d, history=min(history, 4096), initial=initial_weights)
        lam = self.step_size

        trace = ExecutionTrace()
        weights_by_epoch = []

        for epoch in range(self.epochs):
            event = EpochEvent(epoch=epoch)
            # sync(t): snapshot + full gradient (Algorithm 1, lines 4-6).
            snapshot = model.snapshot()
            mu = obj.full_gradient(snapshot, X, y)
            event.merge_iteration(grad_nnz=X.nnz, dense_coords=d, conflicts=0, delay=0,
                                  drew_sample=False)

            if epoch > 0:
                for worker in workers:
                    worker.start_epoch(reshuffle=True)
            schedule = np.concatenate(
                [np.full(w.iterations_per_epoch, w.worker_id, dtype=np.int64) for w in workers]
            )
            rng.shuffle(schedule)
            worker_by_id = {w.worker_id: w for w in workers}
            dense_step = -lam * mu

            for wid in schedule:
                worker = worker_by_id[int(wid)]
                global_row, _local, _weight = worker.next_sample()
                x_idx, x_val = X.row(global_row)
                delay = staleness.draw(rng)
                overflow_before = model.history_overflow
                stale_coords, conflicts = model.read_stale(x_idx, delay,
                                                           writer_id=worker.worker_id)
                overflowed = model.history_overflow - overflow_before
                margin_w = float(np.dot(x_val, stale_coords)) if x_idx.size else 0.0
                margin_s = float(np.dot(x_val, snapshot[x_idx])) if x_idx.size else 0.0
                coef_w = obj._loss_derivative(margin_w, float(y[global_row]))
                coef_s = obj._loss_derivative(margin_s, float(y[global_row]))
                sparse_delta = -lam * (coef_w - coef_s) * x_val

                if self.skip_dense_term:
                    dense_coords = 0
                    model.apply_update(x_idx, sparse_delta, worker_id=worker.worker_id)
                else:
                    dense_coords = d
                    model.apply_dense_update(dense_step, worker_id=worker.worker_id)
                    model.apply_update(x_idx, sparse_delta, worker_id=worker.worker_id)

                event.merge_iteration(
                    grad_nnz=2 * int(x_idx.size),
                    dense_coords=dense_coords,
                    conflicts=conflicts,
                    delay=delay,
                    drew_sample=False,
                    history_overflow=overflowed,
                )

            if self.skip_dense_term:
                total_inner = int(schedule.size)
                model.apply_dense_update(dense_step * total_inner, worker_id=-1)
                event.merge_iteration(grad_nnz=0, dense_coords=d, conflicts=0, delay=0,
                                      drew_sample=False)

            trace.add_epoch(event)
            weights_by_epoch.append(model.snapshot())

        info = {
            "num_workers": self.num_workers,
            "max_delay": staleness.max_delay,
            "skip_dense_term": self.skip_dense_term,
            "async_mode": "per_sample",
            "conflict_rate": trace.conflict_rate(),
        }
        return self._finalize(problem, weights_by_epoch, trace, include_sampling=False, info=info)

    # ------------------------------------------------------------------ #
    def _fit_process(self, problem: Problem, partition, rng, initial_weights) -> TrainResult:
        """Algorithm 1 on the true multi-process parameter-server tier."""
        return self._run_cluster(
            problem,
            partition,
            rule="svrg",
            seed=int(rng.integers(0, 2**31 - 1)),
            include_sampling=False,
            skip_dense_term=self.skip_dense_term,
            count_sample_draws=False,
            extra_info={"skip_dense_term": self.skip_dense_term},
            initial_weights=initial_weights,
        )

    # ------------------------------------------------------------------ #
    def _fit_threads(self, problem: Problem, partition, rng, initial_weights) -> TrainResult:
        """Real lock-free threaded execution of Algorithm 1.

        Genuine unsynchronised updates over one shared NumPy buffer, as in
        :mod:`repro.async_engine.threads` — functional validation (the GIL
        serialises the byte-code); the per-epoch sync step (snapshot + µ)
        happens on the driver thread between epochs.
        """
        import threading

        from repro.utils.rng import spawn_rngs

        X, y, obj = problem.X, problem.y, problem.objective
        n, d = problem.n_samples, problem.n_features
        lam = self.step_size
        w = np.zeros(d) if initial_weights is None else np.ascontiguousarray(
            initial_weights, dtype=np.float64).copy()
        # partition_dataset caps the shard count at n_samples; size the
        # thread pool (and the barrier!) from the partition, not the
        # requested worker count.
        num_threads = partition.num_workers
        iterations_per_worker = max(1, n // num_threads)
        trace = ExecutionTrace()
        weights_by_epoch = []
        avg_nnz = X.nnz / max(n, 1)

        def worker_loop(w, rows, sequence, snap_margins, dense_step, barrier):
            barrier.wait()
            for local in sequence:
                row = int(rows[local])
                x_idx, x_val = X.row(row)
                margin_w = float(np.dot(x_val, w[x_idx])) if x_idx.size else 0.0
                coef_w = obj._loss_derivative(margin_w, float(y[row]))
                coef_s = obj._loss_derivative(float(snap_margins[row]), float(y[row]))
                if dense_step is not None:
                    w += dense_step
                np.add.at(w, x_idx, -lam * (coef_w - coef_s) * x_val)

        for epoch in range(self.epochs):
            event = EpochEvent(epoch=epoch)
            snapshot = w.copy()
            mu = obj.full_gradient(snapshot, X, y)
            snap_margins = X.dot(snapshot)
            dense_step = None if self.skip_dense_term else -lam * mu
            event.merge_bulk(iterations=1, grad_nnz=X.nnz, dense_coords=d)

            rngs = spawn_rngs(int(rng.integers(0, 2**31 - 1)), num_threads)
            barrier = threading.Barrier(num_threads)
            threads = []
            for shard, worker_rng in zip(partition.shards, rngs):
                sequence = worker_rng.integers(0, shard.size, size=iterations_per_worker)
                threads.append(
                    threading.Thread(
                        target=worker_loop,
                        args=(w, shard.row_indices, sequence, snap_margins, dense_step, barrier),
                        daemon=True,
                    )
                )
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            total_inner = iterations_per_worker * num_threads
            if self.skip_dense_term:
                w += (-lam * mu) * total_inner
                event.merge_bulk(iterations=1, grad_nnz=0, dense_coords=d)
            event.merge_bulk(
                iterations=total_inner,
                grad_nnz=int(2 * total_inner * avg_nnz),
                dense_coords=0 if self.skip_dense_term else total_inner * d,
            )
            trace.add_epoch(event)
            weights_by_epoch.append(w.copy())

        info = {
            "async_mode": "threads",
            "backend": "threads",
            "num_workers": self.num_workers,
            "skip_dense_term": self.skip_dense_term,
        }
        return self._finalize(problem, weights_by_epoch, trace, include_sampling=False, info=info)

    # ------------------------------------------------------------------ #
    def _fit_batched(self, problem: Problem, rng, workers, staleness, initial_weights) -> TrainResult:
        """Macro-step execution through :class:`BatchedSimulator`.

        The epoch-begin hook performs Algorithm 1's sync step (snapshot +
        full gradient, computed through the kernel backend) and installs the
        snapshot margins in the rule; every inner block then goes through
        the kernel's batch primitives.  The same ``rng`` drives the schedule
        shuffles and delay draws, so the trace matches the per-sample loop.
        """
        X, y, obj = problem.X, problem.y, problem.objective
        d = problem.n_features
        rule = BatchedSVRGRule(
            objective=obj, step_size=self.step_size, skip_dense_term=self.skip_dense_term
        )
        inner_per_epoch = sum(w.iterations_per_epoch for w in workers)
        kernel = self.kernel

        def epoch_begin(sim: BatchedSimulator, epoch: int, event: EpochEvent) -> None:
            snapshot = sim.weights.copy()
            mu = obj.full_gradient(snapshot, X, y)
            rule.set_snapshot(mu, kernel.matvec(X, snapshot))
            event.merge_bulk(iterations=1, grad_nnz=X.nnz, dense_coords=d)

        def epoch_end(sim: BatchedSimulator, epoch: int, event: EpochEvent) -> None:
            if self.skip_dense_term:
                sim.apply_dense_update(rule.epoch_dense_delta(inner_per_epoch), worker_id=-1)
                event.merge_bulk(iterations=1, grad_nnz=0, dense_coords=d)

        simulator = BatchedSimulator(
            X=X,
            y=y,
            workers=workers,
            update_rule=rule,
            staleness=staleness,
            seed=rng,
            batch_size=self.batch_size,
            kernel=kernel,
            epoch_begin=epoch_begin,
            epoch_end=epoch_end,
            count_sample_draws=False,
        )
        sim_result = simulator.run(self.epochs, initial_weights=initial_weights,
                                   keep_epoch_weights=True)
        info = {
            "num_workers": self.num_workers,
            "max_delay": staleness.max_delay,
            "skip_dense_term": self.skip_dense_term,
            "async_mode": "batched",
            "conflict_rate": sim_result.trace.conflict_rate(),
        }
        return self._finalize(
            problem,
            sim_result.epoch_weights or [sim_result.weights],
            sim_result.trace,
            include_sampling=False,
            info=info,
        )


__all__ = ["SVRGASGDSolver", "BatchedSVRGRule"]
