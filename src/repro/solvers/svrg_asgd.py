"""Asynchronous SVRG (Algorithm 1 of the paper, the "SVRG-ASGD" baseline).

Workers run lock-free over the shared model; once per epoch a snapshot
``s = w`` and its full gradient ``µ = ∇F(s)`` are computed, and every inner
iteration applies the variance-reduced gradient
``v_t = ∇f_i(ŵ_t) - ∇f_i(s) + µ``.  The implementation follows the
literature version faithfully — the dense ``µ`` is added at *every*
iteration (no skip-µ approximation) — because the paper explicitly
evaluates that version; the approximation is available as an ablation flag.

The per-iteration dense cost is what makes this solver lose the absolute
convergence race on sparse data even though it wins per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.async_engine.shared_model import SharedModel
from repro.async_engine.staleness import StalenessModel, UniformDelay
from repro.async_engine.worker import build_workers
from repro.core.balancing import random_order
from repro.core.partition import partition_dataset
from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import RandomState, as_rng


class SVRGASGDSolver(BaseSolver):
    """Lock-free asynchronous SVRG (generic SVRG-styled ASGD of Algorithm 1)."""

    name = "svrg_asgd"

    def __init__(
        self,
        *,
        step_size: float = 0.1,
        epochs: int = 10,
        num_workers: int = 4,
        seed: RandomState = 0,
        cost_model=None,
        record_every: int = 1,
        staleness: Optional[StalenessModel] = None,
        skip_dense_term: bool = False,
        kernel=None,
    ) -> None:
        super().__init__(step_size=step_size, epochs=epochs, seed=seed,
                         cost_model=cost_model, record_every=record_every, kernel=kernel)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self.staleness = staleness
        self.skip_dense_term = bool(skip_dense_term)

    @property
    def parallel_workers(self) -> int:
        return self.num_workers

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run asynchronous SVRG on ``problem``.

        The epoch loop is written directly against the shared model (rather
        than through :class:`~repro.async_engine.simulator.AsyncSimulator`)
        because the update has both a sparse component (applied per support
        coordinate, with staleness) and a dense component (µ) that must be
        applied to the whole vector every iteration.
        """
        rng = as_rng(self.seed)
        X, y, obj = problem.X, problem.y, problem.objective
        n, d = problem.n_samples, problem.n_features

        order = random_order(n, seed=rng)
        partition = partition_dataset(order, problem.lipschitz_constants(), self.num_workers,
                                      scheme="uniform")
        iterations_per_worker = max(1, n // self.num_workers)
        workers = build_workers(partition, iterations_per_worker,
                                seed=int(rng.integers(0, 2**31 - 1)),
                                importance_sampling=False)
        staleness = self.staleness or UniformDelay(max(self.num_workers - 1, 0))

        history = max(staleness.max_delay, 1) * max(self.num_workers, 1)
        model = SharedModel(d, history=min(history, 4096), initial=initial_weights)
        lam = self.step_size

        trace = ExecutionTrace()
        weights_by_epoch = []

        for epoch in range(self.epochs):
            event = EpochEvent(epoch=epoch)
            # sync(t): snapshot + full gradient (Algorithm 1, lines 4-6).
            snapshot = model.snapshot()
            mu = obj.full_gradient(snapshot, X, y)
            event.merge_iteration(grad_nnz=X.nnz, dense_coords=d, conflicts=0, delay=0,
                                  drew_sample=False)

            if epoch > 0:
                for worker in workers:
                    worker.start_epoch(reshuffle=True)
            schedule = np.concatenate(
                [np.full(w.iterations_per_epoch, w.worker_id, dtype=np.int64) for w in workers]
            )
            rng.shuffle(schedule)
            worker_by_id = {w.worker_id: w for w in workers}
            dense_step = -lam * mu

            for wid in schedule:
                worker = worker_by_id[int(wid)]
                global_row, _local, _weight = worker.next_sample()
                x_idx, x_val = X.row(global_row)
                delay = staleness.draw(rng)
                stale_coords, conflicts = model.read_stale(x_idx, delay,
                                                           writer_id=worker.worker_id)
                margin_w = float(np.dot(x_val, stale_coords)) if x_idx.size else 0.0
                margin_s = float(np.dot(x_val, snapshot[x_idx])) if x_idx.size else 0.0
                coef_w = obj._loss_derivative(margin_w, float(y[global_row]))
                coef_s = obj._loss_derivative(margin_s, float(y[global_row]))
                sparse_delta = -lam * (coef_w - coef_s) * x_val

                if self.skip_dense_term:
                    dense_coords = 0
                    model.apply_update(x_idx, sparse_delta, worker_id=worker.worker_id)
                else:
                    dense_coords = d
                    model.apply_dense_update(dense_step, worker_id=worker.worker_id)
                    model.apply_update(x_idx, sparse_delta, worker_id=worker.worker_id)

                event.merge_iteration(
                    grad_nnz=2 * int(x_idx.size),
                    dense_coords=dense_coords,
                    conflicts=conflicts,
                    delay=delay,
                    drew_sample=False,
                )

            if self.skip_dense_term:
                total_inner = int(schedule.size)
                model.apply_dense_update(dense_step * total_inner, worker_id=-1)
                event.merge_iteration(grad_nnz=0, dense_coords=d, conflicts=0, delay=0,
                                      drew_sample=False)

            trace.add_epoch(event)
            weights_by_epoch.append(model.snapshot())

        info = {
            "num_workers": self.num_workers,
            "max_delay": staleness.max_delay,
            "skip_dense_term": self.skip_dense_term,
            "conflict_rate": trace.conflict_rate(),
        }
        return self._finalize(problem, weights_by_epoch, trace, include_sampling=False, info=info)


__all__ = ["SVRGASGDSolver"]
