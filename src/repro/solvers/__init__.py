"""Solver family.

Serial baselines (SGD, IS-SGD, SVRG, SAGA, full GD) and the asynchronous
solvers (ASGD / Hogwild, SVRG-ASGD and SAGA-ASGD) the paper compares
against or that the runtime layer unlocks.  The paper's own contribution,
IS-ASGD, lives in :mod:`repro.core.is_asgd` and shares the same
:class:`~repro.solvers.base.BaseSolver` interface.  The asynchronous
solvers are thin declarations over :mod:`repro.runtime` — a registered
update rule plus sampler configuration, executable on any backend.
"""

from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult
from repro.solvers.gd import GradientDescentSolver
from repro.solvers.sgd import SGDSolver
from repro.solvers.is_sgd import ISSGDSolver
from repro.solvers.svrg import SVRGSolver
from repro.solvers.saga import SAGASolver
from repro.solvers.asgd import ASGDSolver
from repro.solvers.svrg_asgd import SVRGASGDSolver
from repro.solvers.saga_asgd import SAGAASGDSolver
from repro.solvers.minibatch import MiniBatchSGDSolver
from repro.solvers.registry import available_solvers, make_solver

__all__ = [
    "BaseSolver",
    "Problem",
    "TrainResult",
    "GradientDescentSolver",
    "SGDSolver",
    "ISSGDSolver",
    "SVRGSolver",
    "SAGASolver",
    "ASGDSolver",
    "SVRGASGDSolver",
    "SAGAASGDSolver",
    "MiniBatchSGDSolver",
    "available_solvers",
    "make_solver",
]
