"""Serial importance-sampling SGD (Algorithm 2 of the paper).

The sampling distribution ``p_i = L_i / Σ_j L_j`` (Eq. 12) is constructed
once from the per-sample Lipschitz constants, the whole sample sequence is
pre-generated, and every step is re-weighted by ``1/(n p_i)`` (Eq. 8) to
keep the gradient estimator unbiased:

    w_{t+1} = w_t - λ / (n p_{i_t}) ∇f_{i_t}(w_t),     i_t ~ P.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.importance import lipschitz_probabilities, stepsize_reweighting
from repro.core.sampler import SampleSequence
from repro.solvers.base import BaseSolver, EpochEngine, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import RandomState, as_rng


class ISSGDSolver(BaseSolver):
    """Serial SGD with Lipschitz-based importance sampling.

    Parameters
    ----------
    step_clip:
        Cap on the re-weighting factor ``1/(n p_i)`` — rarely-sampled points
        otherwise produce destabilising steps when the Lipschitz spread is
        extreme.
    reshuffle_sequences:
        When True a fresh i.i.d. sequence is drawn every epoch; when False
        the first epoch's sequence is permuted in place (the cheaper
        approximation discussed in Section 4.2 of the paper).
    """

    name = "is_sgd"

    def __init__(
        self,
        *,
        step_size: float = 0.1,
        epochs: int = 10,
        seed: RandomState = 0,
        cost_model=None,
        record_every: int = 1,
        step_clip: float = 100.0,
        reshuffle_sequences: bool = True,
        kernel=None,
    ) -> None:
        super().__init__(
            step_size=step_size,
            epochs=epochs,
            seed=seed,
            cost_model=cost_model,
            record_every=record_every,
            kernel=kernel,
        )
        if step_clip <= 0:
            raise ValueError("step_clip must be positive")
        self.step_clip = float(step_clip)
        self.reshuffle_sequences = bool(reshuffle_sequences)

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run ``epochs`` passes of importance-sampled SGD."""
        rng = as_rng(self.seed)
        obj = problem.objective
        n = problem.n_samples
        kernel = self.kernel
        engine = EpochEngine(problem, initial_weights)

        # Algorithm 2, line 2: construct P from the Lipschitz constants.
        L = problem.lipschitz_constants()
        probs = lipschitz_probabilities(L)
        reweight = np.minimum(stepsize_reweighting(probs), self.step_clip)

        # Algorithm 2, line 3: pre-generate the sample sequence.
        state = {"sequence": SampleSequence.generate(probs, n, seed=int(rng.integers(0, 2**31 - 1)))}
        lam = self.step_size

        def epoch_body(epoch: int, event) -> None:
            if epoch > 0:
                if self.reshuffle_sequences:
                    state["sequence"] = SampleSequence.generate(
                        probs, n, seed=int(rng.integers(0, 2**31 - 1))
                    )
                else:
                    state["sequence"] = state["sequence"].reshuffled(
                        seed=int(rng.integers(0, 2**31 - 1))
                    )
            seq = np.asarray(state["sequence"].indices, dtype=np.int64)
            total_nnz = engine.run_sample_block(kernel, obj, seq, -lam * reweight[seq])
            event.merge_bulk(iterations=n, grad_nnz=total_nnz, sample_draws=n)

        engine.run(self.epochs, epoch_body)
        info = {
            "psi": float((L.sum() ** 2) / (L.size * float(np.dot(L, L)))) if L.size else 1.0,
            "step_clip": self.step_clip,
        }
        return self._finalize(problem, engine.weights_by_epoch, engine.trace, info=info)


__all__ = ["ISSGDSolver"]
