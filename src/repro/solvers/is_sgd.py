"""Serial importance-sampling SGD (Algorithm 2 of the paper).

The sampling distribution ``p_i = L_i / Σ_j L_j`` (Eq. 12) is constructed
once from the per-sample Lipschitz constants, the whole sample sequence is
pre-generated, and every step is re-weighted by ``1/(n p_i)`` (Eq. 8) to
keep the gradient estimator unbiased:

    w_{t+1} = w_t - λ / (n p_{i_t}) ∇f_{i_t}(w_t),     i_t ~ P.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.core.importance import lipschitz_probabilities, stepsize_reweighting
from repro.core.sampler import SampleSequence
from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import RandomState, as_rng


class ISSGDSolver(BaseSolver):
    """Serial SGD with Lipschitz-based importance sampling.

    Parameters
    ----------
    step_clip:
        Cap on the re-weighting factor ``1/(n p_i)`` — rarely-sampled points
        otherwise produce destabilising steps when the Lipschitz spread is
        extreme.
    reshuffle_sequences:
        When True a fresh i.i.d. sequence is drawn every epoch; when False
        the first epoch's sequence is permuted in place (the cheaper
        approximation discussed in Section 4.2 of the paper).
    """

    name = "is_sgd"

    def __init__(
        self,
        *,
        step_size: float = 0.1,
        epochs: int = 10,
        seed: RandomState = 0,
        cost_model=None,
        record_every: int = 1,
        step_clip: float = 100.0,
        reshuffle_sequences: bool = True,
    ) -> None:
        super().__init__(
            step_size=step_size,
            epochs=epochs,
            seed=seed,
            cost_model=cost_model,
            record_every=record_every,
        )
        if step_clip <= 0:
            raise ValueError("step_clip must be positive")
        self.step_clip = float(step_clip)
        self.reshuffle_sequences = bool(reshuffle_sequences)

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run ``epochs`` passes of importance-sampled SGD."""
        rng = as_rng(self.seed)
        X, y, obj = problem.X, problem.y, problem.objective
        n = problem.n_samples
        w = (
            np.zeros(problem.n_features)
            if initial_weights is None
            else np.ascontiguousarray(initial_weights, dtype=np.float64).copy()
        )

        # Algorithm 2, line 2: construct P from the Lipschitz constants.
        L = problem.lipschitz_constants()
        probs = lipschitz_probabilities(L)
        reweight = np.minimum(stepsize_reweighting(probs), self.step_clip)

        # Algorithm 2, line 3: pre-generate the sample sequence.
        sequence = SampleSequence.generate(probs, n, seed=int(rng.integers(0, 2**31 - 1)))

        trace = ExecutionTrace()
        weights_by_epoch = []
        lam = self.step_size

        for epoch in range(self.epochs):
            event = EpochEvent(epoch=epoch)
            if epoch > 0:
                if self.reshuffle_sequences:
                    sequence = SampleSequence.generate(
                        probs, n, seed=int(rng.integers(0, 2**31 - 1))
                    )
                else:
                    sequence = sequence.reshuffled(seed=int(rng.integers(0, 2**31 - 1)))
            for row in sequence.indices:
                row = int(row)
                x_idx, x_val = X.row(row)
                grad = obj.sample_grad(w, x_idx, x_val, float(y[row]))
                scale = -lam * reweight[row]
                if grad.indices.size:
                    np.add.at(w, grad.indices, scale * grad.values)
                event.merge_iteration(
                    grad_nnz=grad.nnz, dense_coords=0, conflicts=0, delay=0, drew_sample=True
                )
            trace.add_epoch(event)
            weights_by_epoch.append(w.copy())

        info = {
            "psi": float((L.sum() ** 2) / (L.size * float(np.dot(L, L)))) if L.size else 1.0,
            "step_clip": self.step_clip,
        }
        return self._finalize(problem, weights_by_epoch, trace, info=info)


__all__ = ["ISSGDSolver"]
