"""Name-based solver factory used by the experiment harness."""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.solvers.base import BaseSolver


def _make_sgd(**kwargs) -> BaseSolver:
    from repro.solvers.sgd import SGDSolver

    kwargs.pop("num_workers", None)
    return SGDSolver(**kwargs)


def _make_is_sgd(**kwargs) -> BaseSolver:
    from repro.solvers.is_sgd import ISSGDSolver

    kwargs.pop("num_workers", None)
    return ISSGDSolver(**kwargs)


def _make_gd(**kwargs) -> BaseSolver:
    from repro.solvers.gd import GradientDescentSolver

    kwargs.pop("num_workers", None)
    return GradientDescentSolver(**kwargs)


def _make_svrg(**kwargs) -> BaseSolver:
    from repro.solvers.svrg import SVRGSolver

    kwargs.pop("num_workers", None)
    return SVRGSolver(**kwargs)


def _make_saga(**kwargs) -> BaseSolver:
    from repro.solvers.saga import SAGASolver

    kwargs.pop("num_workers", None)
    return SAGASolver(**kwargs)


def _make_asgd(**kwargs) -> BaseSolver:
    from repro.solvers.asgd import ASGDSolver

    return ASGDSolver(**kwargs)


def _make_svrg_asgd(**kwargs) -> BaseSolver:
    from repro.solvers.svrg_asgd import SVRGASGDSolver

    return SVRGASGDSolver(**kwargs)


def _make_saga_asgd(**kwargs) -> BaseSolver:
    from repro.solvers.saga_asgd import SAGAASGDSolver

    return SAGAASGDSolver(**kwargs)


def _make_is_asgd(**kwargs) -> BaseSolver:
    from repro.core.is_asgd import ISASGDSolver

    cost_model = kwargs.pop("cost_model", None)
    return ISASGDSolver(cost_model=cost_model, **kwargs)


def _make_minibatch_sgd(**kwargs) -> BaseSolver:
    from repro.solvers.minibatch import MiniBatchSGDSolver

    kwargs.pop("num_workers", None)
    return MiniBatchSGDSolver(**kwargs)


_FACTORIES: Dict[str, Callable[..., BaseSolver]] = {
    "sgd": _make_sgd,
    "is_sgd": _make_is_sgd,
    "gd": _make_gd,
    "svrg": _make_svrg,
    "saga": _make_saga,
    "asgd": _make_asgd,
    "svrg_asgd": _make_svrg_asgd,
    "saga_asgd": _make_saga_asgd,
    "is_asgd": _make_is_asgd,
    "minibatch_sgd": _make_minibatch_sgd,
}

#: Solvers that execute through the runtime layer (accept ``async_mode``).
ASYNC_SOLVER_NAMES = ("asgd", "is_asgd", "svrg_asgd", "saga_asgd")


def async_solver_names() -> List[str]:
    """Registry names of the solvers that accept ``async_mode``.

    The experiment store and CLI use this to decide which runs carry an
    execution-backend dimension in their identity, instead of hard-coding
    the solver list in several places.
    """
    return list(ASYNC_SOLVER_NAMES)


def available_solvers() -> List[str]:
    """Names accepted by :func:`make_solver`."""
    return sorted(_FACTORIES)


def make_solver(name: str, **kwargs: Any) -> BaseSolver:
    """Instantiate a solver by name.

    Keyword arguments are forwarded to the solver constructor; serial
    solvers silently ignore ``num_workers`` so experiment configurations can
    pass a uniform parameter set to every algorithm in a comparison.  Every
    solver accepts ``kernel`` (a compute-backend instance or registry name,
    see :mod:`repro.kernels`) to select how its arithmetic is executed.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown solver {name!r}; available: {', '.join(available_solvers())}"
        ) from None
    return factory(**kwargs)


def register_solver(name: str, factory: Callable[..., BaseSolver]) -> None:
    """Register a custom solver factory (overwrites an existing name)."""
    _FACTORIES[name] = factory


#: Where each built-in solver class lives (``docs/reference.md`` generation).
_CLASS_PATHS: Dict[str, str] = {
    "sgd": "repro.solvers.sgd:SGDSolver",
    "is_sgd": "repro.solvers.is_sgd:ISSGDSolver",
    "gd": "repro.solvers.gd:GradientDescentSolver",
    "svrg": "repro.solvers.svrg:SVRGSolver",
    "saga": "repro.solvers.saga:SAGASolver",
    "asgd": "repro.solvers.asgd:ASGDSolver",
    "svrg_asgd": "repro.solvers.svrg_asgd:SVRGASGDSolver",
    "saga_asgd": "repro.solvers.saga_asgd:SAGAASGDSolver",
    "is_asgd": "repro.core.is_asgd:ISASGDSolver",
    "minibatch_sgd": "repro.solvers.minibatch:MiniBatchSGDSolver",
}


def solver_class(name: str) -> type:
    """The concrete solver class behind a registry name.

    Used by the reference-page generator to introspect docstrings and
    constructor signatures without instantiating anything.  Only built-in
    solvers are resolvable; custom factories registered at runtime raise.
    """
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown solver {name!r}; available: {', '.join(available_solvers())}"
        )
    try:
        path = _CLASS_PATHS[name]
    except KeyError:
        raise ValueError(
            f"solver {name!r} was registered dynamically; no class path is recorded"
        ) from None
    import importlib

    module_name, _, class_name = path.partition(":")
    return getattr(importlib.import_module(module_name), class_name)


__all__ = [
    "ASYNC_SOLVER_NAMES",
    "async_solver_names",
    "available_solvers",
    "make_solver",
    "register_solver",
    "solver_class",
]
