"""Serial stochastic variance-reduced gradient (SVRG).

Johnson & Zhang's SVRG: once per epoch take a snapshot ``s = w`` and compute
the full gradient ``µ = ∇F(s)``; each inner iteration then uses the
variance-reduced gradient

    v_t = ∇f_i(w_t) - ∇f_i(s) + µ.

The two sparse terms share the support of ``x_i``, but ``µ`` is dense — the
per-iteration cost is therefore O(d) instead of O(nnz), which is the crux of
the paper's argument against SVRG-style acceleration for sparse problems.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import as_rng


class SVRGSolver(BaseSolver):
    """Serial SVRG with one snapshot per epoch.

    Parameters
    ----------
    skip_dense_term:
        When True the dense ``µ`` term is *not* added at every inner
        iteration but applied once at the end of the epoch scaled by the
        number of inner steps — the approximation used by the public
        SVRG-ASGD code the paper criticises (Section 1.2).  Kept as an
        ablation flag; the faithful algorithm is the default.
    """

    name = "svrg"

    def __init__(self, *, step_size: float = 0.1, epochs: int = 10, seed=0,
                 cost_model=None, record_every: int = 1, skip_dense_term: bool = False) -> None:
        super().__init__(step_size=step_size, epochs=epochs, seed=seed,
                         cost_model=cost_model, record_every=record_every)
        self.skip_dense_term = bool(skip_dense_term)

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run ``epochs`` outer SVRG epochs (each with ``n`` inner iterations)."""
        rng = as_rng(self.seed)
        X, y, obj = problem.X, problem.y, problem.objective
        n = problem.n_samples
        d = problem.n_features
        w = (
            np.zeros(d)
            if initial_weights is None
            else np.ascontiguousarray(initial_weights, dtype=np.float64).copy()
        )

        trace = ExecutionTrace()
        weights_by_epoch = []
        lam = self.step_size

        for epoch in range(self.epochs):
            event = EpochEvent(epoch=epoch)
            # Snapshot and full gradient: one pass over all non-zeros plus a
            # dense reduction — accounted as one "iteration" with the full
            # nnz/dense cost so the cost model prices the epoch correctly.
            snapshot = w.copy()
            mu = obj.full_gradient(snapshot, X, y)
            event.merge_iteration(
                grad_nnz=X.nnz, dense_coords=d, conflicts=0, delay=0, drew_sample=False
            )

            order = rng.permutation(n)
            for row in order:
                row = int(row)
                x_idx, x_val = X.row(row)
                grad_w = obj.sample_grad(w, x_idx, x_val, float(y[row]))
                grad_s = obj.sample_grad(snapshot, x_idx, x_val, float(y[row]))
                sparse_part = grad_w.values - grad_s.values
                if self.skip_dense_term:
                    # Approximation: only the sparse difference is applied per step.
                    if x_idx.size:
                        np.add.at(w, x_idx, -lam * sparse_part)
                    dense_coords = 0
                else:
                    # Faithful SVRG: the dense µ is added at every iteration.
                    w -= lam * mu
                    if x_idx.size:
                        np.add.at(w, x_idx, -lam * sparse_part)
                    dense_coords = d
                event.merge_iteration(
                    grad_nnz=2 * int(x_idx.size),
                    dense_coords=dense_coords,
                    conflicts=0,
                    delay=0,
                    drew_sample=False,
                )
            if self.skip_dense_term:
                # Apply the accumulated dense correction once per epoch.
                w -= lam * n * mu
                event.merge_iteration(
                    grad_nnz=0, dense_coords=d, conflicts=0, delay=0, drew_sample=False
                )

            trace.add_epoch(event)
            weights_by_epoch.append(w.copy())

        return self._finalize(
            problem,
            weights_by_epoch,
            trace,
            include_sampling=False,
            info={"skip_dense_term": self.skip_dense_term},
        )


__all__ = ["SVRGSolver"]
