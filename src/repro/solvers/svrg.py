"""Serial stochastic variance-reduced gradient (SVRG).

Johnson & Zhang's SVRG: once per epoch take a snapshot ``s = w`` and compute
the full gradient ``µ = ∇F(s)``; each inner iteration then uses the
variance-reduced gradient

    v_t = ∇f_i(w_t) - ∇f_i(s) + µ.

The two sparse terms share the support of ``x_i``, but ``µ`` is dense — the
per-iteration cost is therefore O(d) instead of O(nnz), which is the crux of
the paper's argument against SVRG-style acceleration for sparse problems.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.solvers.base import BaseSolver, EpochEngine, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import as_rng


class SVRGSolver(BaseSolver):
    """Serial SVRG with one snapshot per epoch.

    Parameters
    ----------
    skip_dense_term:
        When True the dense ``µ`` term is *not* added at every inner
        iteration but applied once at the end of the epoch scaled by the
        number of inner steps — the approximation used by the public
        SVRG-ASGD code the paper criticises (Section 1.2).  Kept as an
        ablation flag; the faithful algorithm is the default.
    """

    name = "svrg"

    def __init__(self, *, step_size: float = 0.1, epochs: int = 10, seed=0,
                 cost_model=None, record_every: int = 1, skip_dense_term: bool = False,
                 kernel=None) -> None:
        super().__init__(step_size=step_size, epochs=epochs, seed=seed,
                         cost_model=cost_model, record_every=record_every, kernel=kernel)
        self.skip_dense_term = bool(skip_dense_term)

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run ``epochs`` outer SVRG epochs (each with ``n`` inner iterations)."""
        rng = as_rng(self.seed)
        X, y, obj = problem.X, problem.y, problem.objective
        n = problem.n_samples
        d = problem.n_features
        kernel = self.kernel
        engine = EpochEngine(problem, initial_weights)
        lam = self.step_size

        def epoch_body(epoch: int, event) -> None:
            w = engine.w
            # Snapshot and full gradient: one pass over all non-zeros plus a
            # dense reduction — accounted as one "iteration" with the full
            # nnz/dense cost so the cost model prices the epoch correctly.
            snapshot = w.copy()
            mu = kernel.full_gradient(obj, X, y, snapshot)
            event.merge_iteration(
                grad_nnz=X.nnz, dense_coords=d, conflicts=0, delay=0, drew_sample=False
            )

            order = rng.permutation(n)
            total_nnz = 0
            for row in order:
                row = int(row)
                y_i = float(y[row])
                x_idx, values_w = kernel.sample_grad(obj, X, row, w, y_i)
                _, values_s = kernel.sample_grad(obj, X, row, snapshot, y_i)
                sparse_part = values_w - values_s
                if not self.skip_dense_term:
                    # Faithful SVRG: the dense µ is added at every iteration.
                    w -= lam * mu
                if x_idx.size:
                    kernel.row_update(w, X, row, sparse_part, -lam)
                total_nnz += 2 * int(x_idx.size)
            event.merge_bulk(
                iterations=n,
                grad_nnz=total_nnz,
                dense_coords=0 if self.skip_dense_term else n * d,
            )
            if self.skip_dense_term:
                # Apply the accumulated dense correction once per epoch.
                w -= lam * n * mu
                event.merge_iteration(
                    grad_nnz=0, dense_coords=d, conflicts=0, delay=0, drew_sample=False
                )

        engine.run(self.epochs, epoch_body)
        return self._finalize(
            problem,
            engine.weights_by_epoch,
            engine.trace,
            include_sampling=False,
            info={"skip_dense_term": self.skip_dense_term},
        )


__all__ = ["SVRGSolver"]
