"""Full-batch gradient descent.

Included as a deterministic reference solver: it is what SVRG's full
gradient snapshot computes once per epoch, and the test-suite uses it to
obtain near-optimal objective values that the stochastic solvers should
approach.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.solvers.base import BaseSolver, EpochEngine, Problem
from repro.solvers.results import TrainResult


class GradientDescentSolver(BaseSolver):
    """Deterministic full-gradient descent with optional simple backtracking."""

    name = "gd"

    def __init__(self, *, step_size: float = 0.5, epochs: int = 50, seed=0,
                 cost_model=None, record_every: int = 1, backtracking: bool = True,
                 kernel=None) -> None:
        super().__init__(step_size=step_size, epochs=epochs, seed=seed,
                         cost_model=cost_model, record_every=record_every, kernel=kernel)
        self.backtracking = bool(backtracking)

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run ``epochs`` full-gradient steps."""
        X, y, obj = problem.X, problem.y, problem.objective
        kernel = self.kernel
        engine = EpochEngine(problem, initial_weights)
        state = {"step": self.step_size, "prev_loss": kernel.full_loss(obj, X, y, engine.w)}

        def epoch_body(epoch: int, event) -> None:
            w = engine.w
            step = state["step"]
            grad = kernel.full_gradient(obj, X, y, w)
            candidate = w - step * grad
            loss = kernel.full_loss(obj, X, y, candidate)
            if self.backtracking:
                # Halve the step until the objective stops increasing (at most a few times).
                tries = 0
                while loss > state["prev_loss"] and tries < 8:
                    step *= 0.5
                    candidate = w - step * grad
                    loss = kernel.full_loss(obj, X, y, candidate)
                    tries += 1
            engine.w = candidate
            state["step"] = step
            state["prev_loss"] = loss
            # One full gradient touches every stored non-zero once plus a dense update.
            event.merge_iteration(
                grad_nnz=X.nnz, dense_coords=X.n_cols, conflicts=0, delay=0, drew_sample=False
            )

        engine.run(self.epochs, epoch_body)
        return self._finalize(problem, engine.weights_by_epoch, engine.trace,
                              include_sampling=False, info={"final_step": state["step"]})


__all__ = ["GradientDescentSolver"]
