"""Full-batch gradient descent.

Included as a deterministic reference solver: it is what SVRG's full
gradient snapshot computes once per epoch, and the test-suite uses it to
obtain near-optimal objective values that the stochastic solvers should
approach.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult


class GradientDescentSolver(BaseSolver):
    """Deterministic full-gradient descent with optional simple backtracking."""

    name = "gd"

    def __init__(self, *, step_size: float = 0.5, epochs: int = 50, seed=0,
                 cost_model=None, record_every: int = 1, backtracking: bool = True) -> None:
        super().__init__(step_size=step_size, epochs=epochs, seed=seed,
                         cost_model=cost_model, record_every=record_every)
        self.backtracking = bool(backtracking)

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run ``epochs`` full-gradient steps."""
        X, y, obj = problem.X, problem.y, problem.objective
        w = (
            np.zeros(problem.n_features)
            if initial_weights is None
            else np.ascontiguousarray(initial_weights, dtype=np.float64).copy()
        )
        trace = ExecutionTrace()
        weights_by_epoch = []
        step = self.step_size
        prev_loss = obj.full_loss(w, X, y)

        for epoch in range(self.epochs):
            event = EpochEvent(epoch=epoch)
            grad = obj.full_gradient(w, X, y)
            candidate = w - step * grad
            loss = obj.full_loss(candidate, X, y)
            if self.backtracking:
                # Halve the step until the objective stops increasing (at most a few times).
                tries = 0
                while loss > prev_loss and tries < 8:
                    step *= 0.5
                    candidate = w - step * grad
                    loss = obj.full_loss(candidate, X, y)
                    tries += 1
            w = candidate
            prev_loss = loss
            # One full gradient touches every stored non-zero once plus a dense update.
            event.merge_iteration(
                grad_nnz=X.nnz, dense_coords=X.n_cols, conflicts=0, delay=0, drew_sample=False
            )
            trace.add_epoch(event)
            weights_by_epoch.append(w.copy())

        return self._finalize(problem, weights_by_epoch, trace, include_sampling=False,
                              info={"final_step": step})


__all__ = ["GradientDescentSolver"]
