"""Solver base class and the problem container.

A :class:`Problem` bundles the design matrix, labels and objective; a
:class:`BaseSolver` trains a model on it and returns a
:class:`~repro.solvers.results.TrainResult` whose convergence curve carries
both the iterative (epoch) and absolute (simulated wall-clock) x-axes.
The wall-clock is produced by the shared
:class:`~repro.async_engine.cost_model.CostModel`, so serial and
asynchronous solvers are directly comparable — exactly the comparison the
paper's Figure 4 makes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.async_engine.cost_model import CostModel
from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.kernels.base import KernelBackend
from repro.kernels.registry import resolve_backend
from repro.metrics.convergence import MetricsRecorder
from repro.objectives.base import Objective
from repro.solvers.results import TrainResult
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import RandomState


@dataclass
class Problem:
    """A finite-sum optimisation problem instance.

    Attributes
    ----------
    X, y:
        Design matrix and labels/targets.
    objective:
        The loss (including its regulariser).
    name:
        Used in labels and reports.
    lipschitz:
        Optional cached per-sample Lipschitz constants; computed lazily by
        :meth:`lipschitz_constants` when absent.
    """

    X: CSRMatrix
    y: np.ndarray
    objective: Objective
    name: str = "problem"
    lipschitz: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.y = np.ascontiguousarray(self.y, dtype=np.float64)
        if self.y.shape[0] != self.X.n_rows:
            raise ValueError(
                f"label count {self.y.shape[0]} does not match sample count {self.X.n_rows}"
            )

    @property
    def n_samples(self) -> int:
        """Number of training samples."""
        return self.X.n_rows

    @property
    def n_features(self) -> int:
        """Dimensionality of the model."""
        return self.X.n_cols

    def lipschitz_constants(self) -> np.ndarray:
        """Per-sample Lipschitz constants (cached)."""
        if self.lipschitz is None:
            self.lipschitz = self.objective.lipschitz_constants(self.X, self.y)
        return self.lipschitz

    def recorder(self, label: str = "", kernel=None) -> MetricsRecorder:
        """A metrics recorder evaluating on the full training set."""
        return MetricsRecorder(self.objective, self.X, self.y, label=label, kernel=kernel)


class EpochEngine:
    """Shared serial epoch-loop state: weights, trace and per-epoch snapshots.

    Every serial solver runs the same outer loop — initialise the weight
    vector, execute one epoch body, aggregate the epoch's operation counters
    into an :class:`EpochEvent` and snapshot the weights.  The engine owns
    that machinery; the solver supplies only the epoch body, which performs
    its arithmetic through the solver's kernel backend.
    """

    def __init__(self, problem: Problem, initial_weights: Optional[np.ndarray] = None) -> None:
        self.problem = problem
        self.w = (
            np.zeros(problem.n_features)
            if initial_weights is None
            else np.ascontiguousarray(initial_weights, dtype=np.float64).copy()
        )
        self.trace = ExecutionTrace()
        self.weights_by_epoch: list[np.ndarray] = []

    def run(self, epochs: int, body) -> None:
        """Execute ``epochs`` iterations of ``body(epoch, event)``.

        The body mutates ``self.w`` (in place or by rebinding ``engine.w``)
        and folds its operation counts into ``event``; the engine appends
        the event to the trace and snapshots the weights after each epoch.
        """
        for epoch in range(epochs):
            event = EpochEvent(epoch=epoch)
            body(epoch, event)
            self.trace.add_epoch(event)
            self.weights_by_epoch.append(self.w.copy())

    def run_sample_block(
        self, kernel: KernelBackend, obj: Objective, rows: np.ndarray, scales: np.ndarray
    ) -> int:
        """Execute one schedule block of per-sample steps on ``self.w``.

        Hands the whole block to the kernel's
        :meth:`~repro.kernels.base.KernelBackend.run_sample_block`
        primitive: on a backend with a fused native loop this is a single C
        call per epoch; everywhere else the base-class default performs the
        identical per-step ``sample_update`` loop, so trajectories are
        unchanged.  Returns the total gradient nnz of the block.
        """
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        scales = np.ascontiguousarray(scales, dtype=np.float64)
        return kernel.run_sample_block(
            self.w, obj, self.problem.X, self.problem.y, rows, scales
        )


class BaseSolver(ABC):
    """Common machinery shared by all solvers.

    Parameters
    ----------
    step_size:
        Base step size λ.
    epochs:
        Number of passes over the data.
    seed:
        Master seed.
    cost_model:
        The cost model translating operation counts into simulated seconds;
        a shared default instance is used when omitted so that all solvers
        in one experiment are priced identically.
    kernel:
        Compute-kernel backend (instance, registry name, or ``None`` for the
        configured default — see :mod:`repro.kernels`).  All of the solver's
        arithmetic dispatches through it.
    """

    #: Name used in curve labels, registries and reports.
    name: str = "base"

    def __init__(
        self,
        *,
        step_size: float = 0.1,
        epochs: int = 10,
        seed: RandomState = 0,
        cost_model: Optional[CostModel] = None,
        record_every: int = 1,
        kernel: Union[KernelBackend, str, None] = None,
    ) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if record_every < 1:
            raise ValueError("record_every must be >= 1")
        self.step_size = float(step_size)
        self.epochs = int(epochs)
        self.seed = seed
        self.cost_model = cost_model or CostModel()
        self.record_every = int(record_every)
        self.kernel = resolve_backend(kernel)

    # ------------------------------------------------------------------ #
    @abstractmethod
    def fit(self, problem: Problem, **kwargs) -> TrainResult:
        """Train on ``problem`` and return the result."""

    # ------------------------------------------------------------------ #
    # Helpers shared by the concrete solvers
    # ------------------------------------------------------------------ #
    @property
    def parallel_workers(self) -> int:
        """How many workers share the epoch's work (1 for serial solvers)."""
        return 1

    def _finalize(
        self,
        problem: Problem,
        weights_by_epoch: list[np.ndarray],
        trace: ExecutionTrace,
        *,
        label: Optional[str] = None,
        info: Optional[Dict[str, Any]] = None,
        include_sampling: bool = True,
        wall_clock: Optional[np.ndarray] = None,
    ) -> TrainResult:
        """Turn epoch snapshots + trace into a :class:`TrainResult`.

        Evaluates the metrics for every recorded epoch and prices the trace
        with the cost model — unless ``wall_clock`` (cumulative seconds per
        epoch) is supplied, in which case the curve carries that *measured*
        time axis instead (the process-cluster backend's case).
        """
        recorder = problem.recorder(
            label=label or f"{self.name}[{problem.name}]", kernel=self.kernel
        )
        if wall_clock is not None:
            wall = np.ascontiguousarray(wall_clock, dtype=np.float64)
            if wall.shape[0] != len(trace.epochs):
                raise ValueError("wall_clock must have one entry per traced epoch")
        else:
            wall = self.cost_model.trace_wall_clock(
                trace, self.parallel_workers, include_sampling=include_sampling
            )
        iterations = np.cumsum([e.iterations for e in trace.epochs])
        for k, weights in enumerate(weights_by_epoch):
            epoch = trace.epochs[k].epoch
            if (epoch % self.record_every) and (k != len(weights_by_epoch) - 1):
                continue
            recorder.record(
                epoch=epoch,
                iterations=int(iterations[k]),
                wall_clock=float(wall[k]),
                weights=weights,
            )
        final_weights = weights_by_epoch[-1]
        return TrainResult(
            solver=self.name,
            weights=final_weights,
            curve=recorder.curve,
            trace=trace,
            info=dict(info or {}),
        )

    def _execute_async(
        self,
        problem: Problem,
        partition,
        rng,
        *,
        rule: str,
        staleness,
        include_sampling: bool,
        extra_info: Optional[Dict[str, Any]] = None,
        initial_weights: Optional[np.ndarray] = None,
        importance_sampling: bool = False,
        step_clip: float = 100.0,
        reshuffle: bool = True,
        regenerate: bool = False,
    ) -> TrainResult:
        """Run an async solver's declaration through the execution runtime.

        Shared by every asynchronous solver: draws the worker/engine seeds
        from ``rng`` (in that order), fills the
        :class:`~repro.runtime.ExecutionRequest`, dispatches to the backend
        ``self.async_mode`` selects and finalises the result — with the
        *measured* wall-clock axis whenever the backend provides one.
        ``extra_info`` carries solver-specific diagnostics into the result's
        info dict (backend info wins on shared keys).  Callers must define
        ``batch_size`` / ``shard_scheme`` / ``num_shards`` (all async
        solvers do); a solver without them fails loudly rather than
        silently running with defaults.
        """
        from repro.runtime import ExecutionRequest, execute

        request = ExecutionRequest(
            X=problem.X,
            y=problem.y,
            objective=problem.objective,
            partition=partition,
            rule=rule,
            step_size=self.step_size,
            epochs=self.epochs,
            worker_seed=int(rng.integers(0, 2**31 - 1)),
            engine_seed=int(rng.integers(0, 2**31 - 1)),
            importance_sampling=importance_sampling,
            step_clip=step_clip,
            staleness=staleness,
            batch_size=self.batch_size,
            shard_scheme=self.shard_scheme,
            num_shards=self.num_shards,
            kernel=self.kernel,
            initial_weights=initial_weights,
            reshuffle=reshuffle,
            regenerate=regenerate,
        )
        result = execute(self.async_mode, request)
        info = dict(extra_info or {})
        info.update(result.info)
        return self._finalize(
            problem,
            result.epoch_weights or [result.weights],
            result.trace,
            include_sampling=include_sampling,
            info=info,
            wall_clock=result.wall_clock,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(step_size={self.step_size}, epochs={self.epochs}, "
            f"seed={self.seed!r})"
        )


__all__ = ["Problem", "BaseSolver", "EpochEngine"]
