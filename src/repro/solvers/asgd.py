"""Asynchronous SGD (Hogwild-style), the paper's acceleration target.

Since the runtime refactor this solver is a thin declaration: it owns the
*what* — uniform sampling over per-worker shards, the registered ``sgd``
update rule, the staleness default — and hands the *how* to the execution
runtime (:mod:`repro.runtime`), which runs the request on whichever of the
four interchangeable backends ``async_mode`` selects: ``per_sample``
(ground-truth simulator), ``batched`` (macro-step fast path), ``threads``
(real lock-free threads) or ``process`` (multi-process sharded parameter
server with measured wall-clock).

``SparseSGDUpdateRule`` / ``BatchedSparseSGDRule`` remain as aliases of the
single rule definition in :mod:`repro.rules.sgd` for backward
compatibility: the scalar entry point *is* the batched one applied to a
block of size one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.async_engine.modes import resolve_async_mode
from repro.async_engine.staleness import StalenessModel, UniformDelay
from repro.core.balancing import random_order
from repro.core.partition import partition_dataset
from repro.rules.sgd import SGDRule
from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import RandomState, as_rng

#: Backward-compatible aliases — the update math lives in ``repro.rules``.
SparseSGDUpdateRule = SGDRule
BatchedSparseSGDRule = SGDRule


class ASGDSolver(BaseSolver):
    """Hogwild-style asynchronous SGD with uniform sampling.

    Parameters
    ----------
    num_workers:
        Degree of concurrency (the paper's thread count).
    staleness:
        Delay model for the simulated tiers; defaults to
        ``UniformDelay(num_workers - 1)``, matching the assumption that the
        maximum delay is proportional to concurrency.
    backend:
        ``"simulated"`` (default) runs the engine selected by
        ``async_mode``; ``"threads"`` is a backward-compatible alias for
        ``async_mode="threads"``.
    async_mode:
        Execution backend, resolved through the runtime registry:
        ``"per_sample"``, ``"batched"``, ``"threads"`` or ``"process"``;
        ``None`` resolves via :mod:`repro.async_engine.modes`
        (``REPRO_ASYNC_MODE``).  See ``docs/runtime.md`` for the
        capability matrix.
    batch_size:
        Macro-step length for the batched/process backends (``"auto"``
        scales with the backend's own heuristic).
    shard_scheme / num_shards:
        Parameter-shard layout for ``async_mode="process"`` (``"range"``
        or ``"coloring"``; shards default to the worker count).
    """

    name = "asgd"
    #: Registered update rule this solver declares.
    rule = "sgd"

    def __init__(
        self,
        *,
        step_size: float = 0.1,
        epochs: int = 10,
        num_workers: int = 4,
        seed: RandomState = 0,
        cost_model=None,
        record_every: int = 1,
        staleness: Optional[StalenessModel] = None,
        backend: str = "simulated",
        kernel=None,
        async_mode: Optional[str] = None,
        batch_size="auto",
        shard_scheme: str = "range",
        num_shards: Optional[int] = None,
    ) -> None:
        super().__init__(step_size=step_size, epochs=epochs, seed=seed,
                         cost_model=cost_model, record_every=record_every, kernel=kernel)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if backend not in {"simulated", "threads"}:
            raise ValueError("backend must be 'simulated' or 'threads'")
        self.num_workers = int(num_workers)
        self.staleness = staleness
        self.backend = backend
        if backend == "threads":
            # Backward-compatible alias; an explicit conflicting async_mode
            # is a caller error, not something to override silently.
            if async_mode not in (None, "threads"):
                raise ValueError(
                    f"backend='threads' conflicts with async_mode={async_mode!r}"
                )
            async_mode = "threads"
        self.async_mode = resolve_async_mode(async_mode)
        self.batch_size = batch_size
        self.shard_scheme = shard_scheme
        self.num_shards = num_shards

    @property
    def parallel_workers(self) -> int:
        return self.num_workers

    # ------------------------------------------------------------------ #
    def _build_partition(self, problem: Problem, rng: np.random.Generator):
        order = random_order(problem.n_samples, seed=rng)
        # Uniform scheme: plain ASGD samples uniformly from its local shard.
        return partition_dataset(order, problem.lipschitz_constants(), self.num_workers,
                                 scheme="uniform")

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run asynchronous SGD on ``problem``."""
        rng = as_rng(self.seed)
        partition = self._build_partition(problem, rng)
        return self._execute_async(
            problem,
            partition,
            rng,
            rule=self.rule,
            staleness=self.staleness or UniformDelay(max(self.num_workers - 1, 0)),
            include_sampling=False,
            extra_info={"num_workers": self.num_workers},
            initial_weights=initial_weights,
        )


__all__ = ["ASGDSolver", "SparseSGDUpdateRule", "BatchedSparseSGDRule"]
