"""Asynchronous SGD (Hogwild-style), the paper's acceleration target.

The solver partitions the data uniformly across ``num_workers`` simulated
workers, each of which samples uniformly from its local shard; the shared
model is updated lock-free through the perturbed-iterate simulator.  A real
``threading`` backend can be selected for functional validation (see
:mod:`repro.async_engine.threads`), but the figures use the simulator so
that the delay τ is a controlled parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.async_engine.batched import BatchedSimulator
from repro.async_engine.modes import resolve_async_mode
from repro.async_engine.simulator import AsyncSimulator
from repro.async_engine.staleness import StalenessModel, UniformDelay
from repro.async_engine.worker import build_workers
from repro.core.balancing import random_order
from repro.core.partition import partition_dataset
from repro.objectives.base import Objective
from repro.objectives.regularizers import NoRegularizer
from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import RandomState, as_rng


@dataclass
class SparseSGDUpdateRule:
    """SGD-style update computed from a stale coordinate view.

    The rule reconstructs the perturbed iterate on the sample support,
    evaluates the loss derivative there and returns the index-compressed
    delta ``-λ * weight * ∇f_i(ŵ)``.
    """

    objective: Objective
    step_size: float

    def compute_update(
        self,
        stale_coords: np.ndarray,
        x_idx: np.ndarray,
        x_val: np.ndarray,
        y: float,
        step_weight: float,
    ) -> Tuple[np.ndarray, int]:
        margin = float(np.dot(x_val, stale_coords)) if x_idx.size else 0.0
        coef = self.objective._loss_derivative(margin, y)
        values = coef * x_val
        reg = self.objective.regularizer
        if x_idx.size and type(reg).__name__ != "NoRegularizer":
            # Separable regularisers only depend on the coordinate values, so
            # the stale view of the support is all that is needed.
            proxy = np.ascontiguousarray(stale_coords, dtype=np.float64)
            values = values + reg.grad_coords(proxy, np.arange(proxy.shape[0]))
        delta = -self.step_size * step_weight * values
        return delta, 0


@dataclass
class BatchedSparseSGDRule:
    """Macro-step counterpart of :class:`SparseSGDUpdateRule`.

    Computes a whole block of SGD deltas from the block-start margins: the
    loss derivatives come from the objective's batch API and the separable
    regulariser is evaluated coordinate-wise on the gathered support, so one
    scatter-add applies the entire macro-step.
    """

    objective: Objective
    step_size: float
    records_per_iteration: int = 1
    grad_nnz_multiplier: int = 1
    dense_delta = None

    def block_entry_weights(
        self,
        *,
        w: np.ndarray,
        rows: np.ndarray,
        y: np.ndarray,
        margins: np.ndarray,
        step_weights: np.ndarray,
        idx: np.ndarray,
        val: np.ndarray,
        lengths: np.ndarray,
    ) -> np.ndarray:
        coeffs = self.objective.batch_grad_coeffs(margins, y)
        entry = np.repeat(step_weights * coeffs, lengths) * val
        reg = self.objective.regularizer
        if idx.size and not isinstance(reg, NoRegularizer):
            entry = entry + np.repeat(step_weights, lengths) * reg.grad_coords(w, idx)
        return -self.step_size * entry


class ASGDSolver(BaseSolver):
    """Hogwild-style asynchronous SGD with uniform sampling.

    Parameters
    ----------
    num_workers:
        Degree of simulated concurrency (the paper's thread count).
    staleness:
        Delay model; defaults to ``UniformDelay(num_workers)``, matching the
        assumption that the maximum delay is proportional to concurrency.
    backend:
        ``"simulated"`` (default) runs the engine selected by
        ``async_mode``; ``"threads"`` is a backward-compatible alias for
        ``async_mode="threads"``.
    async_mode:
        Execution engine: ``"per_sample"`` (simulated ground truth),
        ``"batched"`` (simulated macro-step fast path through the kernel
        layer), ``"threads"`` (real lock-free threads, GIL-bound) or
        ``"process"`` (true multi-process sharded parameter server with
        measured wall-clock — see :mod:`repro.cluster`); ``None`` resolves
        via :mod:`repro.async_engine.modes` (``REPRO_ASYNC_MODE``).
    batch_size:
        Macro-step length for the batched/process engines (``"auto"``
        scales with the engine's own heuristic).
    shard_scheme / num_shards:
        Parameter-shard layout for ``async_mode="process"`` (``"range"``
        or ``"coloring"``; shards default to the worker count).
    """

    name = "asgd"

    def __init__(
        self,
        *,
        step_size: float = 0.1,
        epochs: int = 10,
        num_workers: int = 4,
        seed: RandomState = 0,
        cost_model=None,
        record_every: int = 1,
        staleness: Optional[StalenessModel] = None,
        backend: str = "simulated",
        kernel=None,
        async_mode: Optional[str] = None,
        batch_size="auto",
        shard_scheme: str = "range",
        num_shards: Optional[int] = None,
    ) -> None:
        super().__init__(step_size=step_size, epochs=epochs, seed=seed,
                         cost_model=cost_model, record_every=record_every, kernel=kernel)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if backend not in {"simulated", "threads"}:
            raise ValueError("backend must be 'simulated' or 'threads'")
        self.num_workers = int(num_workers)
        self.staleness = staleness
        self.backend = backend
        if backend == "threads":
            # Backward-compatible alias; an explicit conflicting async_mode
            # is a caller error, not something to override silently.
            if async_mode not in (None, "threads"):
                raise ValueError(
                    f"backend='threads' conflicts with async_mode={async_mode!r}"
                )
            async_mode = "threads"
        self.async_mode = resolve_async_mode(async_mode)
        self.batch_size = batch_size
        self.shard_scheme = shard_scheme
        self.num_shards = num_shards

    @property
    def parallel_workers(self) -> int:
        return self.num_workers

    # ------------------------------------------------------------------ #
    def _build_partition(self, problem: Problem, rng: np.random.Generator):
        order = random_order(problem.n_samples, seed=rng)
        # Uniform scheme: plain ASGD samples uniformly from its local shard.
        return partition_dataset(order, problem.lipschitz_constants(), self.num_workers,
                                 scheme="uniform")

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run asynchronous SGD on ``problem``."""
        rng = as_rng(self.seed)
        if self.async_mode == "threads":
            return self._fit_threads(problem, rng, initial_weights)
        if self.async_mode == "process":
            return self._fit_process(problem, rng, initial_weights)
        return self._fit_simulated(problem, rng, initial_weights)

    # ------------------------------------------------------------------ #
    def _fit_process(self, problem: Problem, rng, initial_weights) -> TrainResult:
        partition = self._build_partition(problem, rng)
        return self._run_cluster(
            problem,
            partition,
            rule="sgd",
            seed=int(rng.integers(0, 2**31 - 1)),
            include_sampling=False,
            initial_weights=initial_weights,
        )

    # ------------------------------------------------------------------ #
    def _fit_simulated(self, problem: Problem, rng, initial_weights) -> TrainResult:
        partition = self._build_partition(problem, rng)
        iterations_per_worker = max(1, problem.n_samples // self.num_workers)
        workers = build_workers(
            partition,
            iterations_per_worker,
            seed=int(rng.integers(0, 2**31 - 1)),
            importance_sampling=False,
        )
        staleness = self.staleness or UniformDelay(max(self.num_workers - 1, 0))
        sim_seed = int(rng.integers(0, 2**31 - 1))
        if self.async_mode == "batched":
            simulator = BatchedSimulator(
                X=problem.X,
                y=problem.y,
                workers=workers,
                update_rule=BatchedSparseSGDRule(
                    objective=problem.objective, step_size=self.step_size
                ),
                staleness=staleness,
                seed=sim_seed,
                batch_size=self.batch_size,
                kernel=self.kernel,
            )
        else:
            simulator = AsyncSimulator(
                X=problem.X,
                y=problem.y,
                workers=workers,
                update_rule=SparseSGDUpdateRule(
                    objective=problem.objective, step_size=self.step_size
                ),
                staleness=staleness,
                seed=sim_seed,
            )
        sim_result = simulator.run(self.epochs, initial_weights=initial_weights,
                                   keep_epoch_weights=True)
        info = {
            "backend": "simulated",
            "async_mode": self.async_mode,
            "num_workers": self.num_workers,
            "max_delay": staleness.max_delay,
            "conflict_rate": sim_result.trace.conflict_rate(),
        }
        return self._finalize(
            problem,
            sim_result.epoch_weights or [sim_result.weights],
            sim_result.trace,
            include_sampling=False,
            info=info,
        )

    # ------------------------------------------------------------------ #
    def _fit_threads(self, problem: Problem, rng, initial_weights) -> TrainResult:
        from repro.async_engine.events import EpochEvent, ExecutionTrace
        from repro.async_engine.threads import HogwildThreadPool

        partition = self._build_partition(problem, rng)
        pool = HogwildThreadPool(
            problem.X,
            problem.y,
            problem.objective,
            partition,
            step_size=self.step_size,
            importance_sampling=False,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        if initial_weights is not None:
            pool.weights[:] = initial_weights
        iterations_per_worker = max(1, problem.n_samples // self.num_workers)

        trace = ExecutionTrace()
        weights_by_epoch = []
        avg_nnz = problem.X.nnz / max(problem.n_samples, 1)

        def callback(epoch: int, weights: np.ndarray) -> None:
            event = EpochEvent(epoch=epoch)
            total_iters = iterations_per_worker * self.num_workers
            event.iterations = total_iters
            event.sparse_coordinate_updates = int(total_iters * avg_nnz)
            trace.add_epoch(event)
            weights_by_epoch.append(weights)

        pool.run(self.epochs, iterations_per_worker, epoch_callback=callback)
        info = {"backend": "threads", "async_mode": "threads", "num_workers": self.num_workers}
        return self._finalize(problem, weights_by_epoch, trace, include_sampling=False, info=info)


__all__ = ["ASGDSolver", "SparseSGDUpdateRule", "BatchedSparseSGDRule"]
