"""Shared trace/counter folding for every execution backend.

Each execution tier used to re-implement the same three pieces of
bookkeeping: building the randomised worker interleaving, folding iteration
counters into :class:`~repro.async_engine.events.EpochEvent` records with
the rule's multipliers applied, and (for the cluster tier) collapsing the
per-worker shared-memory counter rows into one epoch event.  This module is
the single home for that machinery; the per-sample simulator, the batched
macro-step engine, the threaded pool and the cluster driver all fold
through it, so a new counter is added in exactly one place.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.async_engine.events import EpochEvent


def build_schedule(workers: Sequence, rng: np.random.Generator) -> np.ndarray:
    """The randomised round-robin interleaving of one epoch.

    Every worker contributes ``iterations_per_epoch`` slots; the shuffled
    order models the unpredictable scheduling of lock-free threads.  Both
    simulated engines draw their schedule through this function, which is
    what keeps their traces bit-comparable for one seed.
    """
    schedule = np.concatenate(
        [np.full(w.iterations_per_epoch, w.worker_id, dtype=np.int64) for w in workers]
    )
    rng.shuffle(schedule)
    return schedule


def fold_iteration(
    event: EpochEvent,
    rule,
    *,
    nnz: int,
    dense_coords: int,
    conflicts: int,
    delay: int,
    drew_sample: bool = True,
    history_overflow: int = 0,
) -> None:
    """Fold one per-sample iteration, applying the rule's trace metadata.

    ``nnz`` is the raw support size of the sample; the rule's
    ``grad_nnz_multiplier`` (two margin evaluations for VR rules) prices it,
    while ``dense_coords`` comes from the rule's scalar entry point so
    custom duck-typed rules keep working.
    """
    event.merge_iteration(
        grad_nnz=int(nnz) * int(getattr(rule, "grad_nnz_multiplier", 1)),
        dense_coords=int(dense_coords),
        conflicts=int(conflicts),
        delay=int(delay),
        drew_sample=bool(drew_sample),
        history_overflow=int(history_overflow),
    )


def fold_block(
    event: EpochEvent,
    rule,
    *,
    iterations: int,
    support_nnz: int,
    conflicts: int,
    delays: Optional[np.ndarray] = None,
    history_overflows: int = 0,
    dense_coords_per_iteration: Optional[int] = None,
    count_sample_draws: Optional[bool] = None,
) -> None:
    """Fold one macro-step (``iterations`` inner iterations) in bulk.

    Equivalent to ``iterations`` :func:`fold_iteration` calls: the rule's
    multipliers price the sparse/dense traffic, ``delays`` (one entry per
    iteration, when the tier models delays) yields the stale-read count and
    the epoch's running maximum delay.
    """
    n = int(iterations)
    if dense_coords_per_iteration is None:
        dense = getattr(rule, "dense_delta", None)
        dense_coords_per_iteration = 0 if dense is None else int(dense.shape[0])
    draws = count_sample_draws
    if draws is None:
        draws = getattr(rule, "counts_sample_draws", True)
    stale_reads = 0
    max_delay = 0
    if delays is not None and delays.size:
        stale_reads = int(np.count_nonzero(delays > 0))
        max_delay = int(delays.max(initial=0))
    event.merge_bulk(
        iterations=n,
        grad_nnz=int(getattr(rule, "grad_nnz_multiplier", 1)) * int(support_nnz),
        dense_coords=int(dense_coords_per_iteration) * n,
        conflicts=int(conflicts),
        sample_draws=n if draws else 0,
        stale_reads=stale_reads,
        max_delay=max_delay,
        history_overflows=int(history_overflows),
    )


def fold_sync_step(event: EpochEvent, *, nnz: int, dim: int) -> None:
    """Fold a once-per-epoch sync step (snapshot + full gradient / table init).

    By convention a sync step is priced as one iteration touching the full
    dataset (``nnz`` sparse reads) and one dense pass over the model — the
    costing the VR solvers have always used for Algorithm 1's lines 4-6.
    """
    event.merge_bulk(iterations=1, grad_nnz=int(nnz), dense_coords=int(dim))


def fold_worker_counters(
    event: EpochEvent,
    delta: np.ndarray,
    *,
    max_delay: int,
) -> int:
    """Fold the cluster tier's measured per-worker counter rows.

    ``delta`` is the per-epoch difference of the shared-memory counter
    matrix (one row per worker, columns as laid out in
    :mod:`repro.cluster.worker`).  Returns the epoch's iteration total so
    the driver can derive per-iteration means without re-summing.
    """
    from repro.cluster.worker import (
        COL_CONFLICTS,
        COL_DENSE_WRITES,
        COL_ITERATIONS,
        COL_SAMPLE_DRAWS,
        COL_SPARSE_WRITES,
        COL_STALE_READS,
    )

    iters = int(delta[:, COL_ITERATIONS].sum())
    event.merge_bulk(
        iterations=iters,
        grad_nnz=int(delta[:, COL_SPARSE_WRITES].sum()),
        dense_coords=int(delta[:, COL_DENSE_WRITES].sum()),
        conflicts=int(delta[:, COL_CONFLICTS].sum()),
        sample_draws=int(delta[:, COL_SAMPLE_DRAWS].sum()),
        stale_reads=int(delta[:, COL_STALE_READS].sum()),
        max_delay=int(max_delay),
    )
    return iters


__all__ = [
    "build_schedule",
    "fold_iteration",
    "fold_block",
    "fold_sync_step",
    "fold_worker_counters",
]
