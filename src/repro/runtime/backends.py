"""Execution backends: one contract, four interchangeable tiers.

This module is the runtime layer's registry.  An :class:`ExecutionBackend`
turns an :class:`ExecutionRequest` — "this data, this partition, this
registered update rule, this many epochs" — into an
:class:`ExecutionResult`, and advertises what it can do through
:class:`BackendCapabilities`.  The asynchronous solvers are pure request
builders: they declare *what* to run (rule + sampler + partition) and the
registry decides *how* (which engine, with which trace guarantees), so
adding a solver touches no engine and adding an engine touches no solver.

Registered backends (also reachable through the legacy
:mod:`repro.async_engine.modes` shim and the ``REPRO_ASYNC_MODE``
environment variable):

====================  ==========================================================
``per_sample``        trace-exact ground-truth simulator (one Python iteration
                      per update) — the reference every other tier is pinned to
``batched``           macro-step fast path through the kernel batch primitives
``threads``           real lock-free Python threads (GIL-bound; correctness)
``process``           multi-process sharded parameter server, measured
                      wall-clock (:mod:`repro.cluster`)
====================  ==========================================================

Requesting a rule a backend does not support, or an unknown backend name,
raises immediately with the full list of valid choices — failures surface
at dispatch, not deep inside an engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.utils.rng import RandomState

#: Built-in rule names, in registry (sorted) order.  The cluster tier pins
#: its support to these: it provisions rule-specific shared-memory state
#: and rebuilds rules inside child processes, so runtime-registered custom
#: rules cannot be guaranteed there.
_BUILTIN_RULES: Tuple[str, ...] = ("is_sgd", "saga", "sgd", "svrg", "svrg_skip_dense")


@dataclass(frozen=True)
class BackendCapabilities:
    """What an execution backend guarantees (surfaced by ``repro list``).

    Attributes
    ----------
    name:
        Registry name (the ``async_mode`` value selecting this backend).
    description:
        One-line description for registries and generated docs.
    supports_batching:
        Whether the tier executes macro-steps through the kernel batch
        primitives (and honours ``batch_size``).
    true_parallelism:
        Whether throughput scales with physical cores.
    measured_wall_clock:
        Whether the result carries measured seconds (otherwise the cost
        model prices the trace).
    deterministic:
        Whether one seed reproduces the run bit-for-bit (real concurrency
        is scheduled by the OS and is validated by tolerance instead).
    fused_kernel_loop:
        Whether the tier hands whole schedule blocks to the kernel's fused
        block primitives (``run_sample_block`` / ``run_frozen_block``) when
        the active backend provides them (the ``native`` kernel), instead
        of iterating per sample in Python.
    fault_tolerant:
        Whether the tier survives worker death mid-run: shard-consistent
        checkpoints at every epoch barrier, automatic fleet replacement
        and replay from the last checkpoint (see ``docs/cluster.md``).
    supported_rules:
        Registered rule names this backend can execute, or ``None`` for
        "every rule in the live :mod:`repro.rules` registry" — the
        rule-generic tiers use ``None`` so a custom ``register_rule``
        immediately runs on them.
    """

    name: str
    description: str
    supports_batching: bool
    true_parallelism: bool
    measured_wall_clock: bool
    deterministic: bool
    fused_kernel_loop: bool = False
    fault_tolerant: bool = False
    supported_rules: Optional[Tuple[str, ...]] = None

    def resolved_rules(self) -> List[str]:
        """The rule names this backend currently supports."""
        if self.supported_rules is not None:
            return list(self.supported_rules)
        from repro.rules import available_rules

        return available_rules()

    def supports_rule(self, rule: str) -> bool:
        """Whether ``rule`` (a :mod:`repro.rules` name) can run here."""
        return rule in self.resolved_rules()

    def as_row(self) -> Dict[str, Any]:
        """Flat JSON-friendly row for capability matrices."""
        return {
            "backend": self.name,
            "description": self.description,
            "supports_batching": self.supports_batching,
            "true_parallelism": self.true_parallelism,
            "measured_wall_clock": self.measured_wall_clock,
            "deterministic": self.deterministic,
            "fused_kernel_loop": self.fused_kernel_loop,
            "fault_tolerant": self.fault_tolerant,
            "rules": self.resolved_rules(),
        }


@dataclass
class ExecutionRequest:
    """Everything a backend needs to run one training job.

    Built by the solvers from their configuration; deliberately free of any
    engine-specific object so the same request can be handed to any
    registered backend.
    """

    X: Any                                  # CSRMatrix
    y: np.ndarray
    objective: Any                          # repro Objective
    partition: Any                          # core.partition.Partition
    rule: str                               # repro.rules registry name
    step_size: float
    epochs: int
    engine_seed: RandomState = 0            # schedule/delay/thread/process seed
    worker_seed: int = 0                    # simulated-worker sequence seed
    importance_sampling: bool = False
    step_clip: float = 100.0
    staleness: Any = None                   # Optional[StalenessModel]
    batch_size: Union[int, str] = "auto"
    shard_scheme: str = "range"
    num_shards: Optional[int] = None
    kernel: Any = None                      # resolved KernelBackend (or name/None)
    initial_weights: Optional[np.ndarray] = None
    reshuffle: bool = True
    regenerate: bool = False
    iterations_per_worker: Optional[int] = None

    def build_rule(self):
        """Instantiate the requested update rule from the registry."""
        from repro.rules import make_rule

        return make_rule(self.rule, self.objective, self.step_size)

    def build_workers(self):
        """One :class:`SimulatedWorker` per shard (simulated tiers only)."""
        from repro.async_engine.worker import build_workers

        return build_workers(
            self.partition,
            self.resolved_iterations_per_worker(),
            step_clip=self.step_clip,
            seed=self.worker_seed,
            importance_sampling=self.importance_sampling,
        )

    def resolved_iterations_per_worker(self) -> int:
        """Per-worker inner iterations (defaults to ``n / num_workers``)."""
        if self.iterations_per_worker is not None:
            return max(1, int(self.iterations_per_worker))
        return max(1, self.X.n_rows // max(self.partition.num_workers, 1))

    def resolved_staleness(self):
        """The delay model (defaults to ``UniformDelay(num_workers - 1)``)."""
        if self.staleness is not None:
            return self.staleness
        from repro.async_engine.staleness import UniformDelay

        return UniformDelay(max(self.partition.num_workers - 1, 0))


@dataclass
class ExecutionResult:
    """What every backend returns: iterates, trace, optional measured time."""

    weights: np.ndarray
    trace: Any                              # ExecutionTrace
    epoch_weights: Optional[List[np.ndarray]] = None
    wall_clock: Optional[np.ndarray] = None  # measured cumulative seconds, or None
    info: Dict[str, Any] = field(default_factory=dict)


class ExecutionBackend:
    """Base class of the four execution tiers (the backend contract).

    Subclasses define :attr:`capabilities` and :meth:`run`; everything else
    (resolution, validation, capability display) is registry machinery.
    """

    capabilities: BackendCapabilities

    def run(self, request: ExecutionRequest) -> ExecutionResult:
        """Execute the request and return the result."""
        raise NotImplementedError


# --------------------------------------------------------------------- #
# The built-in tiers
# --------------------------------------------------------------------- #
class PerSampleBackend(ExecutionBackend):
    """Ground truth: one Python-level iteration per update, trace-exact."""

    capabilities = BackendCapabilities(
        name="per_sample",
        description="trace-exact ground-truth simulator, one Python iteration per update",
        supports_batching=False,
        true_parallelism=False,
        measured_wall_clock=False,
        deterministic=True,
    )

    def run(self, request: ExecutionRequest) -> ExecutionResult:
        from repro.async_engine.simulator import AsyncSimulator

        workers = request.build_workers()
        staleness = request.resolved_staleness()
        simulator = AsyncSimulator(
            X=request.X,
            y=request.y,
            workers=workers,
            update_rule=request.build_rule(),
            staleness=staleness,
            seed=request.engine_seed,
            kernel=request.kernel,
        )
        sim = simulator.run(
            request.epochs,
            initial_weights=request.initial_weights,
            reshuffle=request.reshuffle,
            regenerate=request.regenerate,
            keep_epoch_weights=True,
        )
        return ExecutionResult(
            weights=sim.weights,
            trace=sim.trace,
            epoch_weights=sim.epoch_weights,
            info={
                "backend": "simulated",
                "async_mode": self.capabilities.name,
                "max_delay": staleness.max_delay,
                "conflict_rate": sim.trace.conflict_rate(),
            },
        )


class BatchedBackend(ExecutionBackend):
    """Macro-step fast path through the kernel batch primitives."""

    capabilities = BackendCapabilities(
        name="batched",
        description="macro-step fast path through the kernel batch primitives (trace bit-equal)",
        supports_batching=True,
        true_parallelism=False,
        measured_wall_clock=False,
        deterministic=True,
        fused_kernel_loop=True,
    )

    def run(self, request: ExecutionRequest) -> ExecutionResult:
        from repro.async_engine.batched import BatchedSimulator

        workers = request.build_workers()
        staleness = request.resolved_staleness()
        simulator = BatchedSimulator(
            X=request.X,
            y=request.y,
            workers=workers,
            update_rule=request.build_rule(),
            staleness=staleness,
            seed=request.engine_seed,
            batch_size=request.batch_size,
            kernel=request.kernel,
        )
        sim = simulator.run(
            request.epochs,
            initial_weights=request.initial_weights,
            reshuffle=request.reshuffle,
            regenerate=request.regenerate,
            keep_epoch_weights=True,
        )
        return ExecutionResult(
            weights=sim.weights,
            trace=sim.trace,
            epoch_weights=sim.epoch_weights,
            info={
                "backend": "simulated",
                "async_mode": self.capabilities.name,
                "max_delay": staleness.max_delay,
                "conflict_rate": sim.trace.conflict_rate(),
            },
        )


class ThreadsBackend(ExecutionBackend):
    """Real lock-free Python threads (GIL-bound; correctness validation)."""

    capabilities = BackendCapabilities(
        name="threads",
        description="real lock-free Python threads (functional validation; GIL-bound)",
        supports_batching=False,
        true_parallelism=False,
        measured_wall_clock=False,
        deterministic=False,
    )

    def run(self, request: ExecutionRequest) -> ExecutionResult:
        from repro.async_engine.threads import ThreadedRuleEngine

        engine = ThreadedRuleEngine(
            request.X,
            request.y,
            request.objective,
            request.partition,
            request.build_rule(),
            importance_sampling=request.importance_sampling,
            step_clip=request.step_clip,
            seed=request.engine_seed,
            kernel=request.kernel,
        )
        engine.iterations_per_worker = request.resolved_iterations_per_worker()
        trace, weights_by_epoch = engine.run(
            request.epochs, initial_weights=request.initial_weights
        )
        return ExecutionResult(
            weights=weights_by_epoch[-1],
            trace=trace,
            epoch_weights=weights_by_epoch,
            info={"backend": "threads", "async_mode": self.capabilities.name},
        )


class ProcessBackend(ExecutionBackend):
    """Multi-process sharded parameter server with measured wall-clock."""

    capabilities = BackendCapabilities(
        name="process",
        description="multi-process sharded parameter server with measured wall-clock",
        supports_batching=True,
        true_parallelism=True,
        measured_wall_clock=True,
        deterministic=False,
        fault_tolerant=True,
        # Pinned: worker processes rebuild their rule from a fresh
        # interpreter's registry and the driver provisions rule-specific
        # arena state, so runtime-registered custom rules are rejected at
        # dispatch (with the generic tiers listed) instead of surfacing as
        # an opaque broken-barrier crash inside a child.
        supported_rules=_BUILTIN_RULES,
    )

    def run(self, request: ExecutionRequest) -> ExecutionResult:
        from repro.cluster import ClusterDriver
        from repro.kernels.registry import resolve_backend

        driver = ClusterDriver(
            request.X,
            request.y,
            request.objective,
            request.partition,
            step_size=request.step_size,
            importance_sampling=request.importance_sampling,
            step_clip=request.step_clip,
            rule=request.rule,
            shard_scheme=request.shard_scheme,
            num_shards=request.num_shards,
            batch_size=request.batch_size,
            kernel_name=resolve_backend(request.kernel).name,
            seed=request.engine_seed,
        )
        run = driver.run(request.epochs, initial_weights=request.initial_weights)
        info = {
            "async_mode": self.capabilities.name,
            "conflict_rate": run.trace.conflict_rate(),
        }
        info.update(run.info)
        return ExecutionResult(
            weights=run.weights,
            trace=run.trace,
            epoch_weights=run.epoch_weights,
            wall_clock=run.wall_clock,
            info=info,
        )


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
_BACKENDS: Dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> None:
    """Register an execution backend (overwrites an existing name)."""
    _BACKENDS[backend.capabilities.name] = backend


def available_backend_names() -> List[str]:
    """Backend names in registration order (``per_sample`` first)."""
    return list(_BACKENDS)


def get_backend(name: str) -> ExecutionBackend:
    """Look up a backend by name; unknown names list the valid ones."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown async mode {name!r}; available: "
            f"{', '.join(available_backend_names())}"
        ) from None


def backend_capabilities(name: str) -> BackendCapabilities:
    """Capability metadata of a registered backend."""
    return get_backend(name).capabilities


def capability_matrix() -> List[Dict[str, Any]]:
    """One JSON-friendly row per registered backend (CLI / docs)."""
    return [get_backend(name).capabilities.as_row() for name in available_backend_names()]


def backends_supporting(rule: str) -> List[str]:
    """Names of the backends whose capabilities include ``rule``."""
    return [
        name
        for name in available_backend_names()
        if get_backend(name).capabilities.supports_rule(rule)
    ]


def execute(mode: Optional[str], request: ExecutionRequest) -> ExecutionResult:
    """Resolve ``mode`` and run the request on the selected backend.

    ``mode`` may be a backend name or ``None`` (resolved through the
    process default / ``REPRO_ASYNC_MODE``, exactly like the solvers'
    ``async_mode`` argument).  Unknown rules, unknown modes and
    rule/backend combinations the capabilities cannot honour all fail
    *here*, with actionable messages, instead of deep inside an engine.
    """
    from repro.async_engine.modes import resolve_async_mode
    from repro.rules import available_rules

    if request.rule not in available_rules():
        raise ValueError(
            f"unknown update rule {request.rule!r}; available: "
            f"{', '.join(available_rules())}"
        )
    backend = get_backend(resolve_async_mode(mode))
    caps = backend.capabilities
    if not caps.supports_rule(request.rule):
        supporting = backends_supporting(request.rule) or ["<none>"]
        raise ValueError(
            f"async mode {caps.name!r} does not support update rule "
            f"{request.rule!r} (it supports: {', '.join(caps.resolved_rules())}); "
            f"modes supporting {request.rule!r}: {', '.join(supporting)}"
        )
    return backend.run(request)


register_backend(PerSampleBackend())
register_backend(BatchedBackend())
register_backend(ThreadsBackend())
register_backend(ProcessBackend())


__all__ = [
    "BackendCapabilities",
    "ExecutionBackend",
    "ExecutionRequest",
    "ExecutionResult",
    "PerSampleBackend",
    "BatchedBackend",
    "ThreadsBackend",
    "ProcessBackend",
    "available_backend_names",
    "backend_capabilities",
    "backends_supporting",
    "capability_matrix",
    "execute",
    "get_backend",
    "register_backend",
]
