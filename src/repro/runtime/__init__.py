"""The unified execution runtime: one rule definition, four backends.

``repro.runtime`` is the seam between *what* a solver computes (a
registered update rule from :mod:`repro.rules`, a sampler configuration, a
data partition) and *how* it executes (which of the four interchangeable
tiers runs it).  Solvers build an
:class:`~repro.runtime.backends.ExecutionRequest` and call
:func:`~repro.runtime.backends.execute`; the backend registry resolves the
``async_mode``, validates the rule/backend combination against the
capability metadata and returns an
:class:`~repro.runtime.backends.ExecutionResult` whose trace plugs into the
metrics/cost/experiments pipeline unchanged.

See ``docs/runtime.md`` for the backend contract, the capability table and
the "add a solver in one file" walkthrough.
"""

from repro.runtime.backends import (
    BackendCapabilities,
    ExecutionBackend,
    ExecutionRequest,
    ExecutionResult,
    available_backend_names,
    backend_capabilities,
    backends_supporting,
    capability_matrix,
    execute,
    get_backend,
    register_backend,
)
from repro.runtime.trace_fold import (
    build_schedule,
    fold_block,
    fold_iteration,
    fold_sync_step,
    fold_worker_counters,
)

__all__ = [
    "BackendCapabilities",
    "ExecutionBackend",
    "ExecutionRequest",
    "ExecutionResult",
    "available_backend_names",
    "backend_capabilities",
    "backends_supporting",
    "capability_matrix",
    "execute",
    "get_backend",
    "register_backend",
    "build_schedule",
    "fold_block",
    "fold_iteration",
    "fold_sync_step",
    "fold_worker_counters",
]
