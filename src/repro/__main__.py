"""``python -m repro`` — the experiment-orchestration CLI entry point."""

from repro.cli.main import main

if __name__ == "__main__":
    raise SystemExit(main())
