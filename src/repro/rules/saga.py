"""The asynchronous SAGA update rule — the runtime layer's new scenario.

Serial SAGA (see :mod:`repro.solvers.saga`) keeps the most recent loss
coefficient of every sample and applies

    w ← w - λ [ (phi'_i(w) - c_i) x_i + ḡ ]

where ``c_i`` is the stored coefficient and ``ḡ`` the running average
gradient.  Because the stored gradient of a linear model is a scalar
multiple of ``x_i``, the asynchronous version needs only two shared pieces
of state — the coefficient table (rows are owned by exactly one worker, the
data shards are disjoint) and the dense ``ḡ`` (updated lock-free, exactly
like the model itself).  That makes SAGA expressible as an
:class:`~repro.rules.base.UpdateRuleKernel` and therefore runnable on all
four execution tiers through the one definition below.

Batching semantics: inside one macro-step the margins (hence the refreshed
coefficients) are evaluated at the block-start model and ``ḡ`` is frozen at
its block-start value — the same perturbed-iterate approximation the
batched engine already applies to the weights.  A sample drawn twice in one
block therefore contributes its coefficient refresh once (the second draw
sees the same margin, so its table delta is zero).  Consequently the
conflict accounting is *statistically* — not bitwise — equivalent between
the per-sample and batched tiers (``trace_exact_batched = False``); the
operation counters (iterations, sparse/dense traffic) remain exact.

The separable regulariser follows the repository's index-compressed
convention (evaluated on the sample support, as in the SGD rule); the
dense term carries only ``-λ ḡ``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.objectives.regularizers import NoRegularizer
from repro.rules.base import EngineFacade, UpdateRuleKernel
from repro.runtime.trace_fold import fold_sync_step


class SAGARule(UpdateRuleKernel):
    """Asynchronous SAGA from block-start margins + shared table state."""

    name = "saga"
    records_per_iteration = 2   # dense ḡ write + sparse support write
    grad_nnz_multiplier = 2     # margin evaluation + ḡ support refresh
    counts_sample_draws = False
    trace_exact_batched = False

    def __init__(self, objective, step_size: float) -> None:
        super().__init__(objective, step_size)
        self.dense_delta: Optional[np.ndarray] = None
        self._coefs: Optional[np.ndarray] = None
        self._avg: Optional[np.ndarray] = None
        self._n: int = 0

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #
    @property
    def initialized(self) -> bool:
        """Whether the coefficient table has been built/attached."""
        return self._coefs is not None

    def attach_state(self, coefs: np.ndarray, avg: np.ndarray, n_samples: int) -> None:
        """Adopt externally owned table state (the cluster tier's shm views).

        ``avg`` lives in the same layout as the model the rule updates (flat
        shard layout on the cluster); the math never sees the difference.
        """
        self._coefs = coefs
        self._avg = avg
        self._n = int(n_samples)
        self.dense_delta = -self.step_size * np.asarray(avg, dtype=np.float64)

    def initial_state(self, X, y, w0: np.ndarray, kernel):
        """``(coefs, avg)`` of the table at the starting iterate ``w0``.

        One batched pass through the kernel backend — shared by the
        simulated tiers (:meth:`epoch_begin`) and the cluster driver, which
        computes the same state into its shared-memory blocks.
        """
        coefs = kernel.grad_coeffs(self.objective, X, y, w0)
        avg = kernel.accumulate_rows(
            X, np.arange(X.n_rows), coefs / X.n_rows, np.zeros(w0.shape[0], dtype=np.float64)
        )
        return coefs, avg

    # ------------------------------------------------------------------ #
    def epoch_begin(self, engine: EngineFacade, epoch: int, event) -> None:
        """Build the table at the starting iterate (first epoch only)."""
        if self.initialized:
            return
        w0 = engine.weights.copy()
        coefs, avg = self.initial_state(engine.X, engine.y, w0, engine.kernel)
        self.attach_state(coefs, avg, engine.X.n_rows)
        fold_sync_step(event, nnz=engine.X.nnz, dim=w0.shape[0])

    # ------------------------------------------------------------------ #
    def block_entry_weights(
        self,
        *,
        w: np.ndarray,
        rows: np.ndarray,
        y: np.ndarray,
        margins: np.ndarray,
        step_weights: np.ndarray,
        idx: np.ndarray,
        val: np.ndarray,
        lengths: np.ndarray,
        model_idx: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if self._coefs is None or self._avg is None:
            raise RuntimeError("SAGA table not initialised; epoch_begin/attach_state first")
        if model_idx is None:
            model_idx = idx
        new = self.objective.batch_grad_coeffs(margins, y)
        old = self._coefs[rows]
        # A row drawn several times in one block refreshes its coefficient
        # once: every draw sees the same block-start margin, so only the
        # first occurrence carries a non-zero table delta.
        first = np.zeros(rows.size, dtype=bool)
        first[np.unique(rows, return_index=True)[1]] = True
        delta_coef = np.where(first, new - old, 0.0)

        # Freeze the dense term at the block-start average — every
        # iteration of this block observes ḡ as it was when the block began
        # (the scalar path is a block of one, i.e. the exact SAGA order:
        # dense with the pre-update average, then the state refresh).
        self.dense_delta = -self.step_size * np.asarray(self._avg, dtype=np.float64)

        # Fold the block into the shared state: table rows (disjoint across
        # workers) and the running average on the touched supports.
        self._coefs[rows] = new
        contrib = np.repeat(delta_coef / max(self._n, 1), lengths) * val
        if model_idx.size:
            np.add.at(self._avg, model_idx, contrib)

        entry = np.repeat(step_weights * delta_coef, lengths) * val
        reg = self.objective.regularizer
        if idx.size and not isinstance(reg, NoRegularizer):
            entry = entry + np.repeat(step_weights, lengths) * reg.grad_coords(w, idx)
        return -self.step_size * entry


__all__ = ["SAGARule"]
