"""The SGD update rule (plain ASGD and importance-sampled IS-ASGD).

One definition serves every execution tier: the per-sample simulator calls
the derived scalar entry point, the batched simulator / thread pool /
cluster worker call :meth:`SGDRule.block_entry_weights` directly.  IS-SGD is
the *same* coefficient math — the importance re-weighting ``1/(n_a p_i)``
arrives through ``step_weights`` from the sampler layer — so it is
registered as an alias of this class rather than a second implementation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.objectives.regularizers import NoRegularizer
from repro.rules.base import UpdateRuleKernel


class SGDRule(UpdateRuleKernel):
    """``Δ = -λ · s_i · (phi'(⟨x_i, ŵ⟩) · x_i + ∇r(ŵ)|_supp)``.

    The loss derivative comes from the objective's batch API evaluated at
    the (stale) block-start margins; the separable regulariser is evaluated
    coordinate-wise on whatever ``(w, idx)`` view the engine provides (full
    model for batched tiers, the stale support view in the scalar path).
    """

    name = "sgd"
    records_per_iteration = 1
    grad_nnz_multiplier = 1
    counts_sample_draws = True
    trace_exact_batched = True
    dense_delta = None
    # The macro-step below is exactly the stateless frozen-margin shape the
    # fused kernel primitive implements, so batched engines may hand whole
    # blocks to run_frozen_block on backends that provide it.
    frozen_fusable = True

    def block_entry_weights(
        self,
        *,
        w: np.ndarray,
        rows: np.ndarray,
        y: np.ndarray,
        margins: np.ndarray,
        step_weights: np.ndarray,
        idx: np.ndarray,
        val: np.ndarray,
        lengths: np.ndarray,
        model_idx: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        coeffs = self.objective.batch_grad_coeffs(margins, y)
        entry = np.repeat(step_weights * coeffs, lengths) * val
        reg = self.objective.regularizer
        if idx.size and not isinstance(reg, NoRegularizer):
            entry = entry + np.repeat(step_weights, lengths) * reg.grad_coords(w, idx)
        return -self.step_size * entry


class ISSGDRule(SGDRule):
    """Importance-sampled SGD: identical math, importance-weighted steps.

    Registered separately so capability matrices and the parity suite can
    name the paper's headline configuration; the coefficient/step logic is
    inherited *unchanged* from :class:`SGDRule` — the re-weighting lives in
    the sampler's ``step_weights``, not in the rule.
    """

    name = "is_sgd"


__all__ = ["SGDRule", "ISSGDRule"]
