"""The asynchronous SVRG update rule (Algorithm 1's inner iteration).

``v_t = ∇f_i(ŵ_t) - ∇f_i(s) + µ``: the sparse part is the coefficient
difference on the sample support, the dense part is the snapshot gradient
``µ`` applied once per iteration (or accumulated once per epoch in the
paper's skip-µ ablation).  The per-epoch sync step — snapshot, full
gradient, snapshot margins — is the rule's :meth:`epoch_begin` hook, so
every execution tier that invokes the hooks performs the identical sync.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.rules.base import EngineFacade, UpdateRuleKernel
from repro.runtime.trace_fold import fold_sync_step


class SVRGRule(UpdateRuleKernel):
    """Variance-reduced update from block-start margins + snapshot state.

    Parameters
    ----------
    objective, step_size:
        As on :class:`~repro.rules.base.UpdateRuleKernel`.
    skip_dense_term:
        The skip-µ ablation: the dense term is accumulated and applied once
        per epoch (by :meth:`epoch_end`) instead of at every iteration.
    """

    name = "svrg"
    records_per_iteration = 2
    grad_nnz_multiplier = 2
    counts_sample_draws = False
    trace_exact_batched = True

    def __init__(self, objective, step_size: float, *, skip_dense_term: bool = False) -> None:
        super().__init__(objective, step_size)
        self.skip_dense_term = bool(skip_dense_term)
        if self.skip_dense_term:
            # One sparse record per iteration; the dense term lands (and is
            # logged) once per epoch through the epoch_end hook.
            self.records_per_iteration = 1
        self.dense_delta: Optional[np.ndarray] = None
        self._snapshot_margins: Optional[np.ndarray] = None
        self._mu: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def set_snapshot(self, mu: np.ndarray, snapshot_margins: np.ndarray) -> None:
        """Install the per-epoch snapshot state (µ and the margins ``X @ s``).

        Called by :meth:`epoch_begin` on the simulated/threaded tiers and by
        the cluster worker after the driver refreshes the shared-memory
        snapshot blocks (there ``mu`` arrives in the flat shard layout —
        the rule math is layout-agnostic).
        """
        self._mu = mu
        self._snapshot_margins = snapshot_margins
        self.dense_delta = None if self.skip_dense_term else -self.step_size * mu

    def epoch_dense_delta(self, iterations: int) -> np.ndarray:
        """The accumulated ``-λ µ · iterations`` term of the skip-µ ablation."""
        if self._mu is None:
            raise RuntimeError("set_snapshot must be called before epoch_dense_delta")
        return -self.step_size * self._mu * iterations

    # ------------------------------------------------------------------ #
    def epoch_begin(self, engine: EngineFacade, epoch: int, event) -> None:
        """Algorithm 1's sync step: snapshot ``s = w`` and ``µ = ∇F(s)``."""
        snapshot = engine.weights.copy()
        mu = self.objective.full_gradient(snapshot, engine.X, engine.y)
        self.set_snapshot(mu, engine.kernel.matvec(engine.X, snapshot))
        fold_sync_step(event, nnz=engine.X.nnz, dim=snapshot.shape[0])

    def epoch_end(self, engine: EngineFacade, epoch: int, event) -> None:
        if self.skip_dense_term:
            engine.apply_dense_update(
                self.epoch_dense_delta(engine.inner_iterations), worker_id=-1
            )
            fold_sync_step(event, nnz=0, dim=engine.weights.shape[0])

    # ------------------------------------------------------------------ #
    def block_entry_weights(
        self,
        *,
        w: np.ndarray,
        rows: np.ndarray,
        y: np.ndarray,
        margins: np.ndarray,
        step_weights: np.ndarray,
        idx: np.ndarray,
        val: np.ndarray,
        lengths: np.ndarray,
        model_idx: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if self._snapshot_margins is None:
            raise RuntimeError("set_snapshot must be called before the first block")
        coef_w = self.objective.batch_grad_coeffs(margins, y)
        coef_s = self.objective.batch_grad_coeffs(self._snapshot_margins[rows], y)
        return -self.step_size * np.repeat(step_weights * (coef_w - coef_s), lengths) * val


__all__ = ["SVRGRule"]
