"""The single-source update-rule contract of the execution runtime.

Every asynchronous solver in this repository is, at its core, *one* piece of
coefficient/step math — "given the (possibly stale) margins of a block of
samples, what additive deltas land on their supports, and what dense term
rides along?".  Historically that math was re-implemented once per execution
tier (scalar for the per-sample simulator, batched for the macro-step
engine, a third copy inside the cluster worker).  A :class:`UpdateRuleKernel`
defines it **once**, as the batched block computation, and derives the other
entry points from it:

* :meth:`block_entry_weights` — the one implementation.  Computes the
  per-entry deltas of a whole gathered block from its block-start margins.
  The batched simulator, the thread pool and the cluster worker all call
  this directly (the cluster passes flat-layout coordinates; the math never
  sees the difference).
* :meth:`compute_update` — the scalar entry point used by the per-sample
  ground-truth simulator and the threaded backend's inner loop.  It is a
  block of size one: the base class wraps the scalar arguments into
  singleton arrays and calls :meth:`block_entry_weights`, so a rule cannot
  drift between tiers.
* epoch hooks (:meth:`epoch_begin` / :meth:`epoch_end`) — per-epoch sync
  work (SVRG's snapshot + full gradient, SAGA's table initialisation),
  expressed against the small :class:`EngineFacade` surface that every
  engine exposes, so the sync step is also written once.

Rules carry their trace metadata (``records_per_iteration``,
``grad_nnz_multiplier``, ``counts_sample_draws``) so the engines can fold
operation counters without per-solver special cases — see
:mod:`repro.runtime.trace_fold`.

Layout conventions
------------------
``block_entry_weights`` receives two index views of the same entries:

* ``idx`` — coordinates *in the layout of* ``w`` (global coordinates for the
  simulated/threaded tiers, flat shard-layout positions for the cluster
  tier, or ``arange(nnz)`` paired with a support-sized ``w`` view in the
  scalar path).  Separable-regulariser lookups use ``(w, idx)``.
* ``model_idx`` — coordinates in the layout of any *cross-iteration rule
  state* living alongside the model (SAGA's running average gradient).  It
  equals ``idx`` except in the scalar path, where ``idx`` is support-local
  but the rule state is full-size.
"""

from __future__ import annotations

from typing import Any, List, Optional, Protocol, Tuple

import numpy as np

from repro.objectives.base import Objective


class EngineFacade(Protocol):
    """What an execution engine exposes to rule epoch hooks.

    All four backends (per-sample, batched, threads and the cluster driver)
    satisfy this protocol, so a rule's sync step runs identically on every
    tier that calls the hooks.
    """

    X: Any                     # CSRMatrix of the problem
    y: np.ndarray
    kernel: Any                # KernelBackend for batched arithmetic

    @property
    def weights(self) -> np.ndarray:
        """The live model vector (global layout)."""
        ...

    @property
    def inner_iterations(self) -> int:
        """Inner iterations every epoch performs (all workers combined)."""
        ...

    def apply_dense_update(self, delta: np.ndarray, *, worker_id: int = -1) -> None:
        """Apply ``w += delta`` as one logged dense update record."""
        ...


class UpdateRuleKernel:
    """Base class for single-source update rules.

    Parameters
    ----------
    objective:
        The loss whose derivative drives the update.
    step_size:
        Base step size λ (already folded into the returned entry weights).
    """

    #: Registry name (subclasses override).
    name: str = "rule"
    #: Update records the per-sample engine writes per iteration (1 for
    #: purely sparse rules, 2 when a dense term precedes the sparse write).
    records_per_iteration: int = 1
    #: Trace ``grad_nnz`` per iteration as a multiple of ``nnz(x_i)``.
    grad_nnz_multiplier: int = 1
    #: Whether each inner iteration counts as a weighted sample draw in the
    #: trace (True for SGD-style outer loops, False for VR inner loops).
    counts_sample_draws: bool = True
    #: Whether two runs of this rule from the same seed produce identical
    #: traces across the per-sample and batched engines.  Rules with
    #: cross-iteration dense state (SAGA's running average) freeze that
    #: state per macro-step, so their conflict accounting is statistically
    #: — not bitwise — equivalent between the two simulated tiers.
    trace_exact_batched: bool = True
    #: The dense vector the rule applies once per iteration (SVRG's
    #: ``-λµ``, SAGA's ``-λḡ``), or ``None`` for purely sparse rules.
    #: Engines read it right after computing a block/iteration.
    dense_delta: Optional[np.ndarray] = None
    #: Whether the rule's whole frozen-margin macro-step is exactly
    #: ``scales[t] * (phi'(m_t) * x_t + ∇r(ŵ)|_supp)`` with
    #: ``scales = -step_size * step_weights`` — i.e. stateless SGD-style
    #: math a kernel's fused ``run_frozen_block`` primitive can execute in
    #: one native call.  Rules with cross-iteration state or extra terms
    #: must leave this False so engines keep the composable
    #: ``segment_margins`` → :meth:`block_entry_weights` → ``scatter_add``
    #: path.
    frozen_fusable: bool = False

    def __init__(self, objective: Objective, step_size: float) -> None:
        self.objective = objective
        self.step_size = float(step_size)

    # ------------------------------------------------------------------ #
    # The one implementation
    # ------------------------------------------------------------------ #
    def block_entry_weights(
        self,
        *,
        w: np.ndarray,
        rows: np.ndarray,
        y: np.ndarray,
        margins: np.ndarray,
        step_weights: np.ndarray,
        idx: np.ndarray,
        val: np.ndarray,
        lengths: np.ndarray,
        model_idx: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-entry additive deltas aligned with the gathered ``(idx, val)``.

        ``margins`` are the block-start margins of ``rows``; the returned
        array has one weight per gathered entry, already scaled by the step
        size and the importance re-weighting, ready for one scatter-add.
        Stateful rules (SAGA) also fold the block into their state here and
        refresh :attr:`dense_delta` *before* doing so, so the dense term a
        block applies is the state every iteration of the block observed.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Derived entry points
    # ------------------------------------------------------------------ #
    def compute_update(
        self,
        stale_coords: np.ndarray,
        x_idx: np.ndarray,
        x_val: np.ndarray,
        y: float,
        step_weight: float,
        row: int = 0,
    ) -> Tuple[np.ndarray, int]:
        """Scalar entry point: one iteration == a block of size one.

        ``stale_coords`` is the (stale) view of the model on the sample's
        support; the separable regulariser only needs those coordinate
        values, so the support view doubles as the ``w`` argument of the
        block call (with ``idx = arange(nnz)``), exactly as the per-sample
        engine has always evaluated it.  Returns ``(delta_values,
        dense_coordinate_count)``; the dense vector itself — when the rule
        has one — is read from :attr:`dense_delta` by the engine.
        """
        k = int(x_idx.size)
        margin = float(np.dot(x_val, stale_coords)) if k else 0.0
        proxy = np.ascontiguousarray(stale_coords, dtype=np.float64)
        entry = self.block_entry_weights(
            w=proxy,
            rows=np.array([row], dtype=np.int64),
            y=np.array([y], dtype=np.float64),
            margins=np.array([margin], dtype=np.float64),
            step_weights=np.array([step_weight], dtype=np.float64),
            idx=np.arange(k, dtype=np.int64),
            val=x_val,
            lengths=np.array([k], dtype=np.int64),
            model_idx=x_idx,
        )
        return entry, self.dense_coordinate_count()

    def dense_coordinate_count(self) -> int:
        """Dense coordinates each iteration touches (0 for sparse rules)."""
        return 0 if self.dense_delta is None else int(self.dense_delta.shape[0])

    # ------------------------------------------------------------------ #
    # Epoch hooks (no-ops by default)
    # ------------------------------------------------------------------ #
    def epoch_begin(self, engine: EngineFacade, epoch: int, event) -> None:
        """Per-epoch sync work before the inner loop (fold costs into ``event``)."""

    def epoch_end(self, engine: EngineFacade, epoch: int, event) -> None:
        """Per-epoch work after the inner loop (fold costs into ``event``)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(step_size={self.step_size})"


__all__ = ["UpdateRuleKernel", "EngineFacade"]
