"""Single-source update rules + their registry.

Every update rule in the repository — the coefficient/step math that turns
a block of (possibly stale) margins into model deltas — lives in exactly
one module under this package and is instantiated by name through
:func:`make_rule`.  The execution backends (:mod:`repro.runtime`) are rule
consumers only: adding a solver means writing one rule module and
registering it here, after which every tier that lists the rule in its
capabilities can run it.

Registered rules:

* ``sgd`` — plain stochastic gradient (ASGD's update).
* ``is_sgd`` — importance-sampled SGD; same coefficient math as ``sgd``
  (the ``1/(n_a p_i)`` re-weighting arrives via the sampler's step
  weights), registered separately so capability matrices can name it.
* ``svrg`` — asynchronous SVRG (Algorithm 1), dense µ every iteration.
* ``svrg_skip_dense`` — the paper's skip-µ ablation (dense term folded in
  once per epoch).
* ``saga`` — asynchronous SAGA (coefficient table + lock-free running
  average), the runtime layer's new cross-tier scenario.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.rules.base import EngineFacade, UpdateRuleKernel
from repro.rules.saga import SAGARule
from repro.rules.sgd import ISSGDRule, SGDRule
from repro.rules.svrg import SVRGRule


def _make_svrg_skip_dense(objective, step_size, **kwargs):
    if kwargs.pop("skip_dense_term", True) is False:
        raise ValueError("svrg_skip_dense always skips the dense term; use rule='svrg'")
    return SVRGRule(objective, step_size, skip_dense_term=True, **kwargs)


_FACTORIES: Dict[str, Callable[..., UpdateRuleKernel]] = {
    "sgd": SGDRule,
    "is_sgd": ISSGDRule,
    "svrg": SVRGRule,
    "svrg_skip_dense": _make_svrg_skip_dense,
    "saga": SAGARule,
}

#: One-line description per rule (surfaced by ``python -m repro list`` and
#: the generated ``docs/reference.md``).
RULE_DESCRIPTIONS: Dict[str, str] = {
    "sgd": "plain stochastic gradient on the sample support (ASGD)",
    "is_sgd": "SGD with importance-weighted steps 1/(n_a p_i) (IS-ASGD)",
    "svrg": "variance-reduced update with the dense µ term every iteration",
    "svrg_skip_dense": "SVRG with the dense µ term accumulated once per epoch",
    "saga": "coefficient-table variance reduction with a lock-free running average",
}


def available_rules() -> List[str]:
    """Rule names accepted by :func:`make_rule`, sorted."""
    return sorted(_FACTORIES)


def rule_description(name: str) -> str:
    """One-line description of a registered rule."""
    _require(name)
    return RULE_DESCRIPTIONS.get(name, "")


def make_rule(name: str, objective, step_size: float, **kwargs) -> UpdateRuleKernel:
    """Instantiate a registered update rule.

    ``kwargs`` are rule-specific (``skip_dense_term`` for ``svrg``); unknown
    names raise with the full list of valid rules.
    """
    return _require(name)(objective, step_size, **kwargs)


def register_rule(
    name: str, factory: Callable[..., UpdateRuleKernel], *, description: str = ""
) -> None:
    """Register a custom rule factory (overwrites an existing name)."""
    _FACTORIES[name] = factory
    if description:
        RULE_DESCRIPTIONS[name] = description


def _require(name: str) -> Callable[..., UpdateRuleKernel]:
    try:
        return _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown update rule {name!r}; available: {', '.join(available_rules())}"
        ) from None


__all__ = [
    "EngineFacade",
    "UpdateRuleKernel",
    "SGDRule",
    "ISSGDRule",
    "SVRGRule",
    "SAGARule",
    "RULE_DESCRIPTIONS",
    "available_rules",
    "rule_description",
    "make_rule",
    "register_rule",
]
