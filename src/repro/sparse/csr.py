"""A compact compressed-sparse-row (CSR) matrix.

The container stores three flat arrays (``data``, ``indices``, ``indptr``)
exactly as a classical CSR layout does.  It exposes only the operations the
solvers need — per-row access, row-vector inner products, row permutation,
and conversions — which keeps the hot paths free of the generality (and
overhead) of ``scipy.sparse``.

Rows are the training samples and columns are features throughout the
library; a row is therefore the index-compressed representation of one
stochastic gradient's support.

Dtype invariants
----------------
Construction normalises the storage to a fixed ABI: ``data`` is ``float64``
and ``indices``/``indptr`` are ``int32`` (the native C kernel backend reads
the arrays through raw pointers, so the layout cannot depend on what numpy
happened to infer).  Both ``n_cols`` and ``nnz`` must therefore fit in a
signed 32-bit integer; out-of-range inputs are rejected at construction.
Arrays that already satisfy the invariants are passed through without a
copy (the process-cluster workers rely on this to keep their shared-memory
views zero-copy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_index_array


@dataclass
class CSRMatrix:
    """Immutable CSR matrix of shape ``(n_rows, n_cols)``.

    Parameters
    ----------
    data:
        Non-zero values, concatenated row by row (normalised to ``float64``).
    indices:
        Column index of each value in ``data`` (normalised to ``int32``).
    indptr:
        Row pointer array of length ``n_rows + 1``; row ``i`` occupies the
        slice ``data[indptr[i]:indptr[i + 1]]`` (normalised to ``int32``).
    n_cols:
        Number of columns (the feature dimensionality ``d``); must fit in a
        signed 32-bit integer, as must ``nnz``.
    """

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    n_cols: int

    #: The fixed storage dtype of ``indices``/``indptr`` (the C ABI of the
    #: native kernel backend reads the arrays through ``int32_t`` pointers).
    INDEX_DTYPE = np.int32

    @staticmethod
    def _as_index_array(arr: np.ndarray, name: str) -> np.ndarray:
        """Normalise an index array to contiguous :attr:`INDEX_DTYPE`.

        Arrays already in the canonical dtype pass through without a copy;
        anything else is range-checked against the int32 domain before the
        narrowing cast so out-of-range values fail loudly instead of
        wrapping.
        """
        arr = np.ascontiguousarray(arr)
        if arr.dtype == CSRMatrix.INDEX_DTYPE:
            return arr
        arr = arr.astype(np.int64, copy=False)
        if arr.size and (
            arr.min() < np.iinfo(np.int32).min or arr.max() > np.iinfo(np.int32).max
        ):
            raise ValueError(f"{name} values exceed the int32 storage range")
        return np.ascontiguousarray(arr, dtype=CSRMatrix.INDEX_DTYPE)

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data, dtype=np.float64)
        if self.n_cols is not None and int(self.n_cols) > np.iinfo(np.int32).max:
            raise ValueError("n_cols exceeds the int32 storage range")
        if self.data.size > np.iinfo(np.int32).max:
            raise ValueError("nnz exceeds the int32 storage range")
        self.indices = self._as_index_array(self.indices, "indices")
        self.indptr = self._as_index_array(self.indptr, "indptr")
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise ValueError("indptr must be a 1-D array with at least one entry")
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if self.indptr[-1] != self.data.size:
            raise ValueError(
                f"indptr[-1] ({int(self.indptr[-1])}) must equal nnz ({self.data.size})"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.data.shape != self.indices.shape:
            raise ValueError("data and indices must have identical shapes")
        if self.n_cols < 0:
            raise ValueError("n_cols must be non-negative")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= self.n_cols):
            raise ValueError("column indices out of bounds")
        # Canonical layout: column indices strictly increasing within each
        # row (sorted, duplicate-free).  The vectorized kernel backend's
        # fancy-index writes rely on row supports being duplicate-free, so
        # this is validated here rather than assumed.
        if self.indices.size > 1:
            non_increasing = np.diff(self.indices) <= 0
            row_boundary = np.zeros(self.indices.size - 1, dtype=bool)
            starts = self.indptr[1:-1]
            starts = starts[(starts > 0) & (starts < self.indices.size)]
            row_boundary[starts - 1] = True
            if np.any(non_increasing & ~row_boundary):
                raise ValueError(
                    "column indices must be strictly increasing within each row "
                    "(canonical CSR); sort and merge duplicates first"
                )

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        """Number of rows (training samples)."""
        return int(self.indptr.size - 1)

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Total number of stored non-zeros."""
        return int(self.data.size)

    @property
    def density(self) -> float:
        """Fraction of stored entries over the dense size (0 when empty)."""
        total = self.n_rows * self.n_cols
        return float(self.nnz) / total if total else 0.0

    def row_nnz(self, i: int | None = None) -> np.ndarray | int:
        """Number of non-zeros of row ``i``, or the per-row nnz vector when ``i`` is None."""
        if i is None:
            return np.diff(self.indptr)
        self._check_row(i)
        return int(self.indptr[i + 1] - self.indptr[i])

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def _check_row(self, i: int) -> int:
        i = int(i)
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row index {i} out of range for {self.n_rows} rows")
        return i

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(column_indices, values)`` views of row ``i`` (no copy)."""
        i = self._check_row(i)
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_dense(self, i: int) -> np.ndarray:
        """Return row ``i`` as a dense vector of length ``n_cols``."""
        idx, val = self.row(i)
        out = np.zeros(self.n_cols, dtype=np.float64)
        out[idx] = val
        return out

    def iter_rows(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate over ``(indices, values)`` pairs of every row."""
        for i in range(self.n_rows):
            yield self.row(i)

    def row_dot(self, i: int, w: np.ndarray) -> float:
        """Inner product ``<x_i, w>`` using only the non-zero coordinates."""
        idx, val = self.row(i)
        if idx.size == 0:
            return 0.0
        return float(np.dot(val, w[idx]))

    def row_norms(self, squared: bool = False) -> np.ndarray:
        """Per-row Euclidean norms ``||x_i||_2`` (or squared norms)."""
        sq = self._row_sums(self.data * self.data)
        return sq if squared else np.sqrt(sq)

    def _row_sums(self, per_entry: np.ndarray) -> np.ndarray:
        """Sum ``per_entry`` (aligned with ``data``) within each row.

        Uses ``np.add.reduceat`` on a sentinel-padded array: the padding makes
        a start index equal to ``nnz`` (trailing empty rows) valid, and rows
        of zero length are masked out afterwards.  Unlike a prefix-sum
        difference this keeps full precision for tiny rows that follow rows
        with large values.
        """
        if self.nnz == 0:
            return np.zeros(self.n_rows, dtype=np.float64)
        padded = np.concatenate([np.asarray(per_entry, dtype=np.float64), [0.0]])
        sums = np.add.reduceat(padded, self.indptr[:-1])
        lengths = np.diff(self.indptr)
        return np.asarray(np.where(lengths > 0, sums, 0.0), dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Whole-matrix operations
    # ------------------------------------------------------------------ #
    def dot(self, w: np.ndarray) -> np.ndarray:
        """Matrix-vector product ``X @ w`` returned as a dense vector."""
        w = np.ascontiguousarray(w, dtype=np.float64)
        if w.shape != (self.n_cols,):
            raise ValueError(f"w must have shape ({self.n_cols},), got {w.shape}")
        if self.nnz == 0:
            return np.zeros(self.n_rows, dtype=np.float64)
        return self._row_sums(self.data * w[self.indices])

    def transpose_dot(self, v: np.ndarray) -> np.ndarray:
        """Product ``X.T @ v`` returned as a dense vector of length ``n_cols``."""
        v = np.ascontiguousarray(v, dtype=np.float64)
        if v.shape != (self.n_rows,):
            raise ValueError(f"v must have shape ({self.n_rows},), got {v.shape}")
        out = np.zeros(self.n_cols, dtype=np.float64)
        if self.nnz == 0:
            return out
        row_of_entry = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        np.add.at(out, self.indices, self.data * v[row_of_entry])
        return out

    def gather_rows(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated ``(indices, values, lengths)`` of the selected rows.

        ``rows`` may repeat and is visited in order; the returned ``lengths``
        vector gives each selected row's nnz (``int64``, so cumulative sums
        over huge selections cannot overflow the int32 storage dtype) so
        callers can segment the flat arrays (``np.repeat`` /
        ``np.add.reduceat`` style).  This is the gather primitive behind the
        vectorized kernel backend's batched margins and scatter-adds.
        """
        rows = check_index_array(np.asarray(rows, dtype=np.int64), "rows", upper=self.n_rows)
        starts = self.indptr[rows].astype(np.int64)
        lengths = self.indptr[rows + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return (
                np.zeros(0, dtype=self.INDEX_DTYPE),
                np.zeros(0, dtype=np.float64),
                lengths,
            )
        offsets = np.cumsum(lengths) - lengths
        pos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, lengths)
            + np.repeat(starts, lengths)
        )
        return self.indices[pos], self.data[pos], lengths

    def column_nnz(self) -> np.ndarray:
        """Number of rows touching each column (feature occurrence counts)."""
        counts = np.zeros(self.n_cols, dtype=np.int64)
        if self.nnz:
            np.add.at(counts, self.indices, 1)
        return counts

    def to_dense(self) -> np.ndarray:
        """Materialise the matrix as a dense ``(n_rows, n_cols)`` array."""
        out = np.zeros(self.shape, dtype=np.float64)
        for i in range(self.n_rows):
            idx, val = self.row(i)
            out[i, idx] = val
        return out

    def transpose(self) -> "CSRMatrix":
        """The transpose ``X.T`` as a new canonical :class:`CSRMatrix`.

        Rows of the transpose are the features of ``X``, which lets
        feature-level tooling (e.g. the conflict graph of
        :mod:`repro.graph`) reuse the row-oriented machinery unchanged: two
        features co-occur in a sample of ``X`` iff the corresponding rows of
        ``X.T`` share a column.
        """
        if self.nnz == 0:
            return CSRMatrix(
                data=np.zeros(0, dtype=np.float64),
                indices=np.zeros(0, dtype=np.int64),
                indptr=np.zeros(self.n_cols + 1, dtype=np.int64),
                n_cols=self.n_rows,
            )
        row_of_entry = np.repeat(np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr))
        order = np.lexsort((row_of_entry, self.indices))
        indptr = np.zeros(self.n_cols + 1, dtype=np.int64)
        counts = np.bincount(self.indices, minlength=self.n_cols)
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(
            data=self.data[order],
            indices=row_of_entry[order],
            indptr=indptr,
            n_cols=self.n_rows,
        )

    # ------------------------------------------------------------------ #
    # Constructors / converters
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Tuple[Sequence[int], Sequence[float]]],
        n_cols: int,
    ) -> "CSRMatrix":
        """Build a matrix from ``(indices, values)`` pairs, one per row.

        Column indices within each row are sorted and duplicate columns are
        summed so that the resulting layout is canonical.
        """
        data_parts: List[np.ndarray] = []
        index_parts: List[np.ndarray] = []
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        for r, (idx, val) in enumerate(rows):
            idx = np.asarray(idx, dtype=np.int64)
            val = np.asarray(val, dtype=np.float64)
            if idx.shape != val.shape:
                raise ValueError(f"row {r}: indices and values must have matching shapes")
            if idx.size:
                order = np.argsort(idx, kind="stable")
                idx, val = idx[order], val[order]
                # merge duplicates
                uniq, start = np.unique(idx, return_index=True)
                if uniq.size != idx.size:
                    summed = np.add.reduceat(val, start)
                    idx, val = uniq, summed
                keep = val != 0.0
                idx, val = idx[keep], val[keep]
            index_parts.append(idx)
            data_parts.append(val)
            indptr[r + 1] = indptr[r] + idx.size
        data = np.concatenate(data_parts) if data_parts else np.zeros(0)
        indices = np.concatenate(index_parts) if index_parts else np.zeros(0, dtype=np.int64)
        return cls(data=data, indices=indices, indptr=indptr, n_cols=n_cols)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build a CSR matrix from a dense 2-D array (zeros are dropped)."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {dense.shape}")
        rows = []
        for i in range(dense.shape[0]):
            idx = np.nonzero(dense[i])[0]
            rows.append((idx, dense[i, idx]))
        return cls.from_rows(rows, n_cols=dense.shape[1])

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Convert a ``scipy.sparse`` matrix (any format) to :class:`CSRMatrix`.

        The input is canonicalised first (duplicates summed, indices sorted)
        so the resulting layout satisfies this class's row invariants.
        """
        csr = mat.tocsr().copy()
        csr.sum_duplicates()
        csr.sort_indices()
        return cls(
            data=np.asarray(csr.data, dtype=np.float64),
            indices=np.asarray(csr.indices, dtype=np.int64),
            indptr=np.asarray(csr.indptr, dtype=np.int64),
            n_cols=int(csr.shape[1]),
        )

    def to_scipy(self):
        """Convert to a ``scipy.sparse.csr_matrix`` (lazy scipy import)."""
        from scipy import sparse as sp

        return sp.csr_matrix((self.data, self.indices, self.indptr), shape=self.shape)

    # ------------------------------------------------------------------ #
    # Row selection
    # ------------------------------------------------------------------ #
    def take_rows(self, order: Iterable[int]) -> "CSRMatrix":
        """Return a new matrix whose rows are ``self`` rows re-ordered by ``order``.

        ``order`` may select a subset of rows and may repeat rows; this is the
        primitive that importance balancing and worker partitioning use.
        """
        order = check_index_array(np.asarray(list(order)), "order", upper=self.n_rows)
        lengths = np.diff(self.indptr)[order]
        new_indptr = np.zeros(order.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=new_indptr[1:])
        new_data = np.empty(int(new_indptr[-1]), dtype=np.float64)
        new_indices = np.empty(int(new_indptr[-1]), dtype=self.INDEX_DTYPE)
        for new_r, old_r in enumerate(order):
            lo, hi = self.indptr[old_r], self.indptr[old_r + 1]
            nlo, nhi = new_indptr[new_r], new_indptr[new_r + 1]
            new_data[nlo:nhi] = self.data[lo:hi]
            new_indices[nlo:nhi] = self.indices[lo:hi]
        return CSRMatrix(data=new_data, indices=new_indices, indptr=new_indptr, n_cols=self.n_cols)

    def slice_rows(self, start: int, stop: int) -> "CSRMatrix":
        """Return the contiguous row slice ``[start, stop)`` as a new matrix."""
        start, stop = int(start), int(stop)
        if not (0 <= start <= stop <= self.n_rows):
            raise IndexError(f"invalid row slice [{start}, {stop}) for {self.n_rows} rows")
        lo, hi = self.indptr[start], self.indptr[stop]
        return CSRMatrix(
            data=self.data[lo:hi].copy(),
            indices=self.indices[lo:hi].copy(),
            indptr=(self.indptr[start : stop + 1] - lo).copy(),
            n_cols=self.n_cols,
        )

    def __getitem__(self, key):
        """Row indexing: an int returns ``(indices, values)``, a slice/array a new matrix."""
        if isinstance(key, (int, np.integer)):
            return self.row(int(key))
        if isinstance(key, slice):
            start, stop, step = key.indices(self.n_rows)
            if step == 1:
                return self.slice_rows(start, stop)
            return self.take_rows(range(start, stop, step))
        return self.take_rows(np.asarray(key))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.data, other.data)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.2e})"
        )


def vstack(blocks: Sequence[CSRMatrix]) -> CSRMatrix:
    """Stack CSR matrices vertically (all blocks must share ``n_cols``)."""
    if not blocks:
        raise ValueError("need at least one block to stack")
    n_cols = blocks[0].n_cols
    for b in blocks:
        if b.n_cols != n_cols:
            raise ValueError("all blocks must have the same number of columns")
    data = np.concatenate([b.data for b in blocks])
    indices = np.concatenate([b.indices for b in blocks])
    indptr_parts = [blocks[0].indptr]
    offset = blocks[0].indptr[-1]
    for b in blocks[1:]:
        indptr_parts.append(b.indptr[1:] + offset)
        offset += b.indptr[-1]
    indptr = np.concatenate(indptr_parts)
    return CSRMatrix(data=data, indices=indices, indptr=indptr, n_cols=n_cols)


__all__ = ["CSRMatrix", "vstack"]
