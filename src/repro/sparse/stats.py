"""Dataset statistics used throughout the paper.

Table 1 of the paper characterises each dataset by its dimensionality,
instance count, stochastic-gradient sparsity, the bound-improvement ratio
``ψ`` (Eq. 15) and the imbalance-potential metric ``ρ`` (Eq. 20).  This
module computes all of them from a :class:`~repro.sparse.csr.CSRMatrix`
and a vector of per-sample Lipschitz constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_array_1d


def gradient_sparsity(X: CSRMatrix) -> float:
    """Average fraction of non-zero coordinates per stochastic gradient.

    For linear models the support of ``∇f_i`` equals the support of ``x_i``
    (plus the regulariser, which index-compressed solvers fold into the same
    coordinates), so the mean row density is exactly the paper's
    "∇f_i sparsity" column.
    """
    if X.n_rows == 0 or X.n_cols == 0:
        return 0.0
    return float(X.nnz) / (X.n_rows * X.n_cols)


def psi(lipschitz: np.ndarray) -> float:
    """Bound-improvement ratio ``ψ = (Σ L_i)² / (n Σ L_i²)`` from Eq. 15.

    ``ψ ∈ (0, 1]`` by the Cauchy–Schwarz inequality; the *smaller* ψ is, the
    larger the convergence-bound improvement importance sampling delivers.
    """
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    if np.any(L < 0):
        raise ValueError("Lipschitz constants must be non-negative")
    denom = L.size * float(np.dot(L, L))
    if denom == 0.0:
        return 1.0
    return float(L.sum()) ** 2 / denom


def rho(lipschitz: np.ndarray) -> float:
    """Imbalance-potential metric ``ρ = Σ (L_i - mean(L))² / N`` from Eq. 20.

    ρ is simply the population variance of the Lipschitz constants; a low ρ
    means random shuffling already yields well-balanced importance mass per
    worker, a high ρ means head–tail balancing is worthwhile.
    """
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    return float(np.mean((L - L.mean()) ** 2))


def normalized_rho(lipschitz: np.ndarray) -> float:
    """ρ normalised by the squared mean (scale-free variant, i.e. squared CV).

    The paper's threshold ζ = 5e-4 is applied to a quantity comparable across
    datasets; dividing by ``mean(L)²`` removes the dependence on the overall
    magnitude of the Lipschitz constants so the adaptive rule in Algorithm 4
    behaves consistently for re-scaled data.
    """
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    mean = float(L.mean())
    if mean == 0.0:
        return 0.0
    return rho(L) / (mean * mean)


@dataclass
class DatasetStats:
    """Summary row mirroring Table 1 of the paper."""

    name: str
    n_features: int
    n_samples: int
    grad_sparsity: float
    psi: float
    rho: float
    normalized_rho: float
    source: str = "synthetic"
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Return the statistics as a flat dict (used by the table renderer)."""
        row: Dict[str, object] = {
            "Name": self.name,
            "Dimension": self.n_features,
            "Instances": self.n_samples,
            "GradSparsity": self.grad_sparsity,
            "psi": self.psi,
            "rho": self.rho,
            "rho_normalized": self.normalized_rho,
            "Source": self.source,
        }
        row.update(self.extra)
        return row


def describe_dataset(
    name: str,
    X: CSRMatrix,
    lipschitz: np.ndarray,
    *,
    source: str = "synthetic",
    extra: Optional[Dict[str, float]] = None,
) -> DatasetStats:
    """Compute the full :class:`DatasetStats` record for a dataset."""
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    if L.shape[0] != X.n_rows:
        raise ValueError(
            f"lipschitz has {L.shape[0]} entries but the matrix has {X.n_rows} rows"
        )
    return DatasetStats(
        name=name,
        n_features=X.n_cols,
        n_samples=X.n_rows,
        grad_sparsity=gradient_sparsity(X),
        psi=psi(L),
        rho=rho(L),
        normalized_rho=normalized_rho(L),
        source=source,
        extra=dict(extra or {}),
    )


__all__ = [
    "gradient_sparsity",
    "psi",
    "rho",
    "normalized_rho",
    "DatasetStats",
    "describe_dataset",
]
