"""Sparse-matrix substrate.

The paper's entire argument about absolute convergence rests on the cost of
index-compressed sparse updates versus dense vector updates, so the library
implements its own compact CSR container (:class:`~repro.sparse.csr.CSRMatrix`)
plus the handful of index-compressed kernels (:mod:`repro.sparse.ops`) that
the solvers build on.  ``scipy.sparse`` interoperability is provided for
convenience but no solver depends on it.
"""

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import (
    scatter_add,
    sparse_dot,
    sparse_norm_sq,
    sparse_scale,
    sparse_squared_norms,
)
from repro.sparse.io import load_libsvm, save_libsvm, parse_libsvm_line
from repro.sparse.stats import DatasetStats, gradient_sparsity, psi, rho, describe_dataset

__all__ = [
    "CSRMatrix",
    "scatter_add",
    "sparse_dot",
    "sparse_norm_sq",
    "sparse_scale",
    "sparse_squared_norms",
    "load_libsvm",
    "save_libsvm",
    "parse_libsvm_line",
    "DatasetStats",
    "gradient_sparsity",
    "psi",
    "rho",
    "describe_dataset",
]
