"""Index-compressed sparse kernels.

These free functions are the numeric core of every solver: a stochastic
gradient is represented as a pair ``(indices, values)`` and applied to the
model with :func:`scatter_add`, exactly the "index-compressed update" the
paper contrasts with SVRG's dense full-gradient add (its Figure 1).

The functions also expose *operation counts* so the simulated cost model can
translate a training trace into wall-clock time without re-running it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def sparse_dot(indices: np.ndarray, values: np.ndarray, w: np.ndarray) -> float:
    """Inner product between a sparse vector ``(indices, values)`` and dense ``w``."""
    if indices.size == 0:
        return 0.0
    return float(np.dot(values, w[indices]))


def scatter_add(w: np.ndarray, indices: np.ndarray, values: np.ndarray, scale: float = 1.0) -> np.ndarray:
    """In-place update ``w[indices] += scale * values`` (the Hogwild write).

    Duplicate indices are accumulated correctly via ``np.add.at``.
    Returns ``w`` to allow chaining.
    """
    if indices.size:
        np.add.at(w, indices, scale * values)
    return w


def sparse_scale(values: np.ndarray, scale: float) -> np.ndarray:
    """Return ``scale * values`` (new array; the indices are unchanged)."""
    return values * scale


def sparse_norm_sq(values: np.ndarray) -> float:
    """Squared Euclidean norm of a sparse vector's stored values."""
    if values.size == 0:
        return 0.0
    return float(np.dot(values, values))


def segment_bool_any(mask: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment ``any`` over a flat per-entry boolean array.

    ``mask`` holds one boolean per gathered entry and ``lengths`` the
    segment (row) sizes, as produced by ``CSRMatrix.gather_rows``; segment
    ``t`` is True when any of its entries is.  Shared by the batched
    simulator's conflict replay and the cluster worker's measured conflict
    detection.
    """
    if mask.size == 0:
        return np.zeros(lengths.size, dtype=bool)
    starts = np.cumsum(lengths) - lengths
    padded = np.concatenate([mask.astype(np.int64), [0]])
    return (lengths > 0) & (np.add.reduceat(padded, starts) > 0)


def sparse_squared_norms(data: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row squared norms for a CSR layout given its raw arrays."""
    n_rows = indptr.size - 1
    if data.size == 0:
        return np.zeros(n_rows, dtype=np.float64)
    sq = np.add.reduceat(data * data, indptr[:-1])
    lengths = np.diff(indptr)
    return np.asarray(np.where(lengths > 0, sq, 0.0), dtype=np.float64)


def sparse_add(
    idx_a: np.ndarray,
    val_a: np.ndarray,
    idx_b: np.ndarray,
    val_b: np.ndarray,
    beta: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return the sparse vector ``a + beta * b`` as ``(indices, values)``.

    The result has sorted, de-duplicated indices; exact zeros produced by
    cancellation are kept (dropping them would make operation counts depend
    on data values, which the cost model does not want).
    """
    if idx_a.size == 0:
        return idx_b.copy(), beta * val_b
    if idx_b.size == 0:
        return idx_a.copy(), val_a.copy()
    idx = np.concatenate([idx_a, idx_b])
    val = np.concatenate([val_a, beta * val_b])
    order = np.argsort(idx, kind="stable")
    idx, val = idx[order], val[order]
    uniq, start = np.unique(idx, return_index=True)
    summed = np.add.reduceat(val, start)
    return uniq, summed


def densify(indices: np.ndarray, values: np.ndarray, dim: int) -> np.ndarray:
    """Expand a sparse vector into a dense vector of length ``dim``."""
    out = np.zeros(dim, dtype=np.float64)
    if indices.size:
        np.add.at(out, indices, values)
    return out


def sparsify(vector: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Compress a dense vector into ``(indices, values)`` of its non-zeros."""
    idx = np.nonzero(vector)[0].astype(np.int64)
    return idx, vector[idx].astype(np.float64)


# --------------------------------------------------------------------------- #
# Operation counting (used by the simulated wall-clock cost model)
# --------------------------------------------------------------------------- #
def sparse_update_flops(nnz: int) -> int:
    """Floating-point operations of one index-compressed SGD update.

    One multiply-add per stored coordinate for the gradient scale plus the
    scatter add: ``2 * nnz`` multiplies + ``nnz`` adds ≈ ``3 * nnz``.
    """
    return 3 * int(nnz)


def dense_update_flops(dim: int) -> int:
    """Floating-point operations of one dense full-length vector update.

    SVRG's variance-reduced gradient ``∇f_i(w) - ∇f_i(s) + µ`` requires two
    dense adds of length ``d`` on top of the sparse part, i.e. ``2 * d``
    adds plus the dense scaled write ``d``.
    """
    return 3 * int(dim)


__all__ = [
    "sparse_dot",
    "scatter_add",
    "sparse_scale",
    "sparse_norm_sq",
    "segment_bool_any",
    "sparse_squared_norms",
    "sparse_add",
    "densify",
    "sparsify",
    "sparse_update_flops",
    "dense_update_flops",
]
