"""LibSVM text-format input/output.

The paper's datasets (News20, URL, KDD2010 Algebra/Bridge) are distributed
in the LibSVM format ``label index:value index:value ...`` with 1-based
feature indices.  This module reads and writes that format so that users
with the real files can reproduce the experiments on them; the benchmark
harness itself uses synthetic surrogates (see :mod:`repro.datasets`).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sparse.csr import CSRMatrix

PathLike = Union[str, Path]


def parse_libsvm_line(line: str) -> Tuple[float, np.ndarray, np.ndarray]:
    """Parse one LibSVM line into ``(label, indices, values)``.

    Feature indices in the file are 1-based and are converted to 0-based.
    Comments introduced by ``#`` are stripped.  Malformed feature tokens
    raise ``ValueError`` naming the offending token.
    """
    line = line.split("#", 1)[0].strip()
    if not line:
        raise ValueError("cannot parse an empty line")
    parts = line.split()
    label = float(parts[0])
    idx: List[int] = []
    val: List[float] = []
    for token in parts[1:]:
        try:
            col_str, val_str = token.split(":", 1)
            col = int(col_str)
            value = float(val_str)
        except ValueError as exc:  # noqa: PERF203 - error path only
            raise ValueError(f"malformed feature token {token!r}") from exc
        if col < 1:
            raise ValueError(f"feature indices must be >= 1, got {col}")
        idx.append(col - 1)
        val.append(value)
    return label, np.asarray(idx, dtype=np.int64), np.asarray(val, dtype=np.float64)


def _open_text(path: PathLike, mode: str = "rt"):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def load_libsvm(
    path: PathLike,
    *,
    n_features: Optional[int] = None,
    zero_based: bool = False,
    max_rows: Optional[int] = None,
) -> Tuple[CSRMatrix, np.ndarray]:
    """Load a LibSVM file (optionally gzip-compressed).

    Parameters
    ----------
    path:
        File to read; ``.gz`` suffixed paths are decompressed transparently.
    n_features:
        Force the feature dimensionality; by default it is inferred as the
        maximum observed index + 1.
    zero_based:
        Set to True if the file already uses 0-based indices.
    max_rows:
        Optional cap on the number of rows read (useful for sub-sampling the
        very large KDD files).

    Returns
    -------
    (X, y):
        The design matrix as :class:`CSRMatrix` and labels as a float array.
    """
    rows: List[Tuple[np.ndarray, np.ndarray]] = []
    labels: List[float] = []
    max_index = -1
    with _open_text(path) as handle:
        for raw in handle:
            stripped = raw.split("#", 1)[0].strip()
            if not stripped:
                continue
            label, idx, val = parse_libsvm_line(stripped)
            if zero_based:
                pass
            # parse_libsvm_line already converted to 0-based assuming 1-based
            # input; undo the shift if the caller says the file is 0-based.
            if zero_based and idx.size:
                idx = idx + 1 - 1  # no-op for clarity; indices already >= 0
            labels.append(label)
            rows.append((idx, val))
            if idx.size:
                max_index = max(max_index, int(idx.max()))
            if max_rows is not None and len(rows) >= max_rows:
                break
    dim = n_features if n_features is not None else max_index + 1
    if dim < max_index + 1:
        raise ValueError(
            f"n_features={dim} is smaller than the largest observed index + 1 ({max_index + 1})"
        )
    X = CSRMatrix.from_rows(rows, n_cols=max(dim, 0))
    y = np.asarray(labels, dtype=np.float64)
    return X, y


def save_libsvm(X: CSRMatrix, y: Sequence[float], path: PathLike, *, precision: int = 8) -> None:
    """Write ``(X, y)`` in LibSVM format (1-based indices)."""
    y = np.asarray(y, dtype=np.float64)
    if y.shape[0] != X.n_rows:
        raise ValueError(f"label count {y.shape[0]} does not match row count {X.n_rows}")
    path = Path(path)
    fmt = f"{{:.{precision}g}}"
    with _open_text(path, "wt") as handle:
        for i in range(X.n_rows):
            idx, val = X.row(i)
            label = y[i]
            label_str = str(int(label)) if float(label).is_integer() else fmt.format(label)
            tokens = [label_str]
            tokens.extend(f"{int(c) + 1}:{fmt.format(v)}" for c, v in zip(idx, val))
            handle.write(" ".join(tokens) + "\n")


def loads_libsvm(text: str, *, n_features: Optional[int] = None) -> Tuple[CSRMatrix, np.ndarray]:
    """Parse LibSVM content from an in-memory string (convenience for tests)."""
    rows: List[Tuple[np.ndarray, np.ndarray]] = []
    labels: List[float] = []
    max_index = -1
    for raw in io.StringIO(text):
        stripped = raw.split("#", 1)[0].strip()
        if not stripped:
            continue
        label, idx, val = parse_libsvm_line(stripped)
        labels.append(label)
        rows.append((idx, val))
        if idx.size:
            max_index = max(max_index, int(idx.max()))
    dim = n_features if n_features is not None else max_index + 1
    X = CSRMatrix.from_rows(rows, n_cols=max(dim, 0))
    return X, np.asarray(labels, dtype=np.float64)


__all__ = ["parse_libsvm_line", "load_libsvm", "save_libsvm", "loads_libsvm"]
