"""Experiment configurations.

A :class:`RunSpec` is one (dataset, solver, concurrency) training run; an
:class:`ExperimentConfig` is the list of runs a table or figure needs plus
the shared evaluation settings.  The default configurations mirror the
paper's Section 4 setup at surrogate scale: the per-dataset step sizes
(λ = 0.5 everywhere except URL's 0.05), thread counts {16, 32, 44} and the
restriction of SVRG-ASGD to the (smallest, densest) News20 dataset.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.datasets.catalog import get_descriptor, list_datasets

#: The concurrency levels evaluated in the paper.
PAPER_THREAD_COUNTS: Tuple[int, ...] = (16, 32, 44)

#: Scaled-down concurrency levels used by the fast benchmark configurations.
FAST_THREAD_COUNTS: Tuple[int, ...] = (4, 8, 16)


@dataclass(frozen=True)
class RunSpec:
    """One training run of one solver on one dataset at one concurrency."""

    dataset: str
    solver: str
    num_workers: int
    step_size: float
    epochs: int
    seed: int = 0
    solver_kwargs: Tuple[Tuple[str, object], ...] = ()

    @property
    def key(self) -> Tuple[str, str, int]:
        """Grouping key ``(dataset, solver, num_workers)``."""
        return (self.dataset, self.solver, self.num_workers)

    def kwargs(self) -> Dict[str, object]:
        """Solver keyword arguments as a dict."""
        return dict(self.solver_kwargs)


@dataclass
class ExperimentConfig:
    """A named collection of runs plus shared settings."""

    name: str
    runs: List[RunSpec] = field(default_factory=list)
    objective: str = "logistic_l1"
    regularization: float = 1e-4
    seed: int = 0
    description: str = ""

    def filter(self, *, dataset: Optional[str] = None, solver: Optional[str] = None) -> "ExperimentConfig":
        """A copy containing only the runs matching the given dataset/solver."""
        runs = [
            r
            for r in self.runs
            if (dataset is None or r.dataset == dataset) and (solver is None or r.solver == solver)
        ]
        return ExperimentConfig(
            name=self.name,
            runs=runs,
            objective=self.objective,
            regularization=self.regularization,
            seed=self.seed,
            description=self.description,
        )

    def with_overrides(
        self,
        *,
        async_mode: Optional[str] = None,
        kernel: Optional[str] = None,
        epochs: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> "ExperimentConfig":
        """A copy with execution-layer overrides threaded into every run.

        ``async_mode`` (validated against :mod:`repro.async_engine.modes`)
        is applied to the asynchronous solvers only — serial solvers do not
        accept it; ``kernel`` (validated against the kernel registry) is
        applied to every solver.  Existing ``solver_kwargs`` entries with
        the same name are replaced, so a CLI flag beats the config default.
        """
        from repro.async_engine.modes import resolve_async_mode
        from repro.experiments.store import ASYNC_SOLVERS
        from repro.kernels.registry import make_backend

        if async_mode is not None:
            resolve_async_mode(async_mode)
        if kernel is not None:
            make_backend(kernel)  # raises on unknown names
        runs: List[RunSpec] = []
        for spec in self.runs:
            kwargs = dict(spec.solver_kwargs)
            if async_mode is not None and spec.solver in ASYNC_SOLVERS:
                kwargs["async_mode"] = async_mode
            if kernel is not None and spec.solver != "none":
                kwargs["kernel"] = kernel
            runs.append(
                replace(
                    spec,
                    solver_kwargs=tuple(sorted(kwargs.items())),
                    epochs=spec.epochs if epochs is None else epochs,
                    seed=spec.seed if seed is None else seed,
                )
            )
        return ExperimentConfig(
            name=self.name,
            runs=runs,
            objective=self.objective,
            regularization=self.regularization,
            seed=self.seed if seed is None else seed,
            description=self.description,
        )


def _solvers_for(dataset: str, include_svrg_asgd: bool) -> List[str]:
    """The paper compares SGD/ASGD/IS-ASGD everywhere and adds SVRG-ASGD only
    on News20 (it cannot finish on the large sparse datasets)."""
    solvers = ["sgd", "asgd", "is_asgd"]
    if include_svrg_asgd and dataset.startswith("news20"):
        solvers.append("svrg_asgd")
    return solvers


def figure_config(
    *,
    datasets: Optional[Sequence[str]] = None,
    thread_counts: Sequence[int] = FAST_THREAD_COUNTS,
    smoke: bool = False,
    epochs_override: Optional[int] = None,
    include_svrg_asgd: bool = True,
    seed: int = 0,
) -> ExperimentConfig:
    """The sweep behind Figures 3, 4 and 5.

    Parameters
    ----------
    datasets:
        Dataset names (catalog keys); defaults to the four paper datasets.
    thread_counts:
        Concurrency levels; the paper's {16, 32, 44} by default for the full
        configuration, smaller for the fast one.
    smoke:
        Use the ``*_smoke`` surrogate sizes (test-suite scale).
    epochs_override:
        Force a fixed epoch count regardless of the per-dataset default.
    """
    names = list(datasets) if datasets is not None else list_datasets()
    if smoke:
        names = [f"{n}_smoke" if not n.endswith("_smoke") else n for n in names]
    runs: List[RunSpec] = []
    for name in names:
        desc = get_descriptor(name)
        epochs = epochs_override or desc.epochs
        for solver in _solvers_for(name, include_svrg_asgd):
            for workers in thread_counts:
                if solver == "sgd" and workers != thread_counts[0]:
                    # Serial SGD does not depend on the thread count; run it once.
                    continue
                runs.append(
                    RunSpec(
                        dataset=name,
                        solver=solver,
                        num_workers=workers if solver != "sgd" else 1,
                        step_size=desc.step_size,
                        epochs=epochs,
                        seed=seed,
                    )
                )
    return ExperimentConfig(
        name="figures_3_4_5",
        runs=runs,
        seed=seed,
        description="Iterative and absolute convergence sweep (Figures 3-5).",
    )


def cluster_scaling_config(
    *,
    dataset: str = "news20_smoke",
    solver: str = "is_asgd",
    worker_counts: Sequence[int] = (1, 2, 4),
    epochs_override: Optional[int] = None,
    include_simulated: bool = True,
    shard_scheme: str = "range",
    seed: int = 0,
) -> ExperimentConfig:
    """True speedup-vs-workers sweep on the multi-process cluster tier.

    Every concurrency level runs through ``async_mode="process"`` (real
    processes, *measured* wall-clock) and — when ``include_simulated`` —
    through the per-sample simulator as well, so the measured scaling curve
    can be plotted alongside the modelled one.  Records are distinguished
    by ``info["async_mode"]``.
    """
    desc = get_descriptor(dataset)
    epochs = epochs_override or desc.epochs
    runs: List[RunSpec] = []
    for workers in worker_counts:
        runs.append(
            RunSpec(
                dataset=dataset,
                solver=solver,
                num_workers=workers,
                step_size=desc.step_size,
                epochs=epochs,
                seed=seed,
                solver_kwargs=(("async_mode", "process"), ("shard_scheme", shard_scheme)),
            )
        )
        if include_simulated:
            runs.append(
                RunSpec(
                    dataset=dataset,
                    solver=solver,
                    num_workers=workers,
                    step_size=desc.step_size,
                    epochs=epochs,
                    seed=seed,
                    solver_kwargs=(("async_mode", "per_sample"),),
                )
            )
    return ExperimentConfig(
        name="cluster_scaling",
        runs=runs,
        seed=seed,
        description="Measured (process) vs simulated speedup over worker counts.",
    )


def table1_config(*, smoke: bool = False, seed: int = 0) -> ExperimentConfig:
    """The dataset-statistics 'sweep' behind Table 1 (no training involved)."""
    names = list_datasets()
    if smoke:
        names = [f"{n}_smoke" for n in names]
    runs = [
        RunSpec(dataset=name, solver="none", num_workers=1, step_size=1.0, epochs=0, seed=seed)
        for name in names
    ]
    return ExperimentConfig(
        name="table1",
        runs=runs,
        seed=seed,
        description="Dataset statistics (Table 1).",
    )


def balancing_ablation_config(
    *,
    dataset: str = "kdd_bridge_smoke",
    num_workers: int = 8,
    epochs: int = 8,
    seed: int = 0,
) -> ExperimentConfig:
    """Ablation: IS-ASGD with forced balancing vs forced shuffling vs no IS."""
    desc = get_descriptor(dataset)
    runs = [
        RunSpec(dataset=dataset, solver="is_asgd", num_workers=num_workers,
                step_size=desc.step_size, epochs=epochs, seed=seed,
                solver_kwargs=(("force_balancing", "balance"),)),
        RunSpec(dataset=dataset, solver="is_asgd", num_workers=num_workers,
                step_size=desc.step_size, epochs=epochs, seed=seed,
                solver_kwargs=(("force_balancing", "shuffle"),)),
        RunSpec(dataset=dataset, solver="asgd", num_workers=num_workers,
                step_size=desc.step_size, epochs=epochs, seed=seed),
    ]
    return ExperimentConfig(
        name="balancing_ablation",
        runs=runs,
        seed=seed,
        description="Importance balancing vs random shuffling vs plain ASGD.",
    )


# --------------------------------------------------------------------- #
# Named-configuration registry (the CLI's ``--config`` values)
# --------------------------------------------------------------------- #
_CONFIG_BUILDERS: Dict[str, Callable[..., ExperimentConfig]] = {
    "figures": figure_config,
    "cluster": cluster_scaling_config,
    "table1": table1_config,
    "ablation": balancing_ablation_config,
}


def available_configs() -> List[str]:
    """Names accepted by :func:`make_config`, sorted alphabetically."""
    return sorted(_CONFIG_BUILDERS)


def config_description(name: str) -> str:
    """First docstring line of a named configuration's builder."""
    doc = _CONFIG_BUILDERS[name].__doc__ or ""
    return doc.strip().splitlines()[0] if doc.strip() else ""


#: Override spellings that name the same knob under different builders
#: (``figure_config`` has ``thread_counts``, ``cluster_scaling_config`` has
#: ``worker_counts``, ...).  A request is satisfied when *any* spelling of
#: its group reaches the builder.
_OVERRIDE_ALIASES: Tuple[frozenset, ...] = (
    frozenset({"epochs", "epochs_override"}),
    frozenset({"thread_counts", "worker_counts"}),
    frozenset({"datasets", "dataset"}),
)


def make_config(name: str, **overrides: Any) -> ExperimentConfig:
    """Build a named configuration, translating the uniform override namespace.

    The builders take different keyword sets, so equivalent spellings are
    mapped onto whichever one the builder accepts (``epochs`` /
    ``epochs_override``, ``thread_counts`` / ``worker_counts``, a
    single-element ``datasets`` list onto ``dataset``, and ``smoke=True``
    onto a ``*_smoke`` dataset for single-dataset builders).  Overrides set
    to ``None`` are treated as "not given"; an override the builder cannot
    honour under any spelling raises :class:`ValueError` rather than being
    dropped — silently ignoring e.g. ``smoke`` would train full-scale data
    the caller asked to avoid.
    """
    try:
        builder = _CONFIG_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment config {name!r}; available: {', '.join(available_configs())}"
        ) from None
    signature = inspect.signature(builder)
    accepted = set(signature.parameters)
    given = {k: v for k, v in overrides.items() if v is not None}
    kwargs = {k: v for k, v in given.items() if k in accepted}
    dropped = set(given) - accepted

    if "datasets" in dropped and "dataset" in accepted and "dataset" not in kwargs:
        names = list(given["datasets"])
        if len(names) != 1:
            raise ValueError(
                f"config {name!r} sweeps a single dataset; pass exactly one "
                f"dataset instead of {names!r}"
            )
        kwargs["dataset"] = names[0]
    if "smoke" in dropped and "dataset" in accepted:
        if given["smoke"]:
            base = kwargs.get("dataset", signature.parameters["dataset"].default)
            if isinstance(base, str) and not base.endswith("_smoke"):
                kwargs["dataset"] = f"{base}_smoke"
        dropped.discard("smoke")
    for group in _OVERRIDE_ALIASES:
        if group & set(kwargs):
            dropped -= group
    if dropped:
        raise ValueError(
            f"config {name!r} does not accept override(s) {sorted(dropped)}; "
            f"accepted: {sorted(accepted)}"
        )
    return builder(**kwargs)


def register_config(name: str, builder: Callable[..., ExperimentConfig]) -> None:
    """Register a custom configuration builder (overwrites an existing name)."""
    _CONFIG_BUILDERS[name] = builder


__all__ = [
    "PAPER_THREAD_COUNTS",
    "FAST_THREAD_COUNTS",
    "RunSpec",
    "ExperimentConfig",
    "figure_config",
    "cluster_scaling_config",
    "table1_config",
    "balancing_ablation_config",
    "available_configs",
    "config_description",
    "make_config",
    "register_config",
]
