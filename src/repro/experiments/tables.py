"""Table 1 regeneration: dataset statistics.

For every dataset the paper reports dimension, instance count, gradient
sparsity, ψ and ρ.  The rows produced here contain both the paper's
reported values (from the catalog) and the values measured on the surrogate
datasets, so the benchmark output doubles as the paper-vs-measured record
for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets.catalog import get_descriptor
from repro.datasets.loader import load_dataset
from repro.graph.conflict import conflict_graph_stats
from repro.objectives.registry import make_objective
from repro.sparse.stats import describe_dataset


def table1_rows(
    datasets: Optional[List[str]] = None,
    *,
    objective: str = "logistic_l1",
    regularization: float = 1e-4,
    seed: int = 0,
    include_conflict_degree: bool = False,
) -> List[Dict[str, object]]:
    """Compute the Table-1 statistics for every requested dataset.

    Each row contains the measured surrogate statistics plus (when the name
    matches a catalog entry) the values the paper reports for the real
    dataset, prefixed ``paper_``.
    """
    from repro.datasets.catalog import list_datasets

    names = datasets if datasets is not None else list_datasets()
    obj = make_objective(objective, eta=regularization)

    rows: List[Dict[str, object]] = []
    for name in names:
        ds = load_dataset(name, seed=seed)
        L = obj.lipschitz_constants(ds.X, ds.y)
        stats = describe_dataset(name, ds.X, L)
        row: Dict[str, object] = stats.as_row()
        try:
            desc = get_descriptor(name)
        except KeyError:
            desc = None
        if desc is not None:
            row.update(
                {
                    "paper_dimension": desc.paper.dimension,
                    "paper_instances": desc.paper.instances,
                    "paper_grad_sparsity": desc.paper.grad_sparsity,
                    "paper_psi": desc.paper.psi,
                    "paper_rho": desc.paper.rho,
                    "Source": desc.paper.source,
                }
            )
        if include_conflict_degree:
            cg = conflict_graph_stats(ds.X, seed=seed)
            row["avg_conflict_degree"] = cg.average_degree
            row["conflict_degree_over_n"] = cg.normalized_degree
        rows.append(row)
    return rows


__all__ = ["table1_rows"]
