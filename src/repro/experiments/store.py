"""Content-addressed artifact store for experiment runs.

Every executed :class:`~repro.experiments.configs.RunSpec` produces one
JSON artifact whose filename is the SHA-256 of the run's *identity* — the
complete set of inputs that determine the result: dataset, solver,
concurrency, step size, epochs, seed, solver kwargs, the resolved async
execution mode and kernel backend, and the evaluation objective.  Two
consequences:

* a sweep re-invoked after an interruption recognises every completed run
  by key and skips it (resume-for-free), and
* ``python -m repro report`` rebuilds the paper's figures and tables from
  disk without re-training anything.

Artifacts are written atomically (temp file + :func:`os.replace` in the
same directory), so a run killed mid-write never leaves a half-artifact
that would poison a later resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.experiments.configs import RunSpec
from repro.metrics.tracing import RunRecord, _jsonable

#: On-disk artifact schema version (bump on incompatible layout changes).
FORMAT_VERSION = 1

from repro.solvers.registry import ASYNC_SOLVER_NAMES

#: Solvers that execute through the runtime layer and therefore depend on
#: the resolved ``async_mode`` (serial solvers ignore it).  Sourced from
#: the solver registry so a new async solver is never special-cased here.
ASYNC_SOLVERS = frozenset(ASYNC_SOLVER_NAMES)


def run_identity(
    spec: RunSpec,
    *,
    objective: str = "logistic_l1",
    regularization: float = 1e-4,
    cost_model: Optional["CostModel"] = None,
    dataset_seed: Optional[int] = None,
) -> Dict[str, Any]:
    """The complete, JSON-canonical identity of one run.

    The identity resolves every ambient default that influences the result:
    for async solvers the execution mode (explicit kwarg, else the
    process-wide default from :mod:`repro.async_engine.modes`), for all
    solvers the kernel backend (explicit kwarg, else the registry default),
    and the cost model pricing the simulated wall-clock axis.  A sweep
    started under ``REPRO_ASYNC_MODE=batched`` or with a calibrated cost
    model therefore does not collide with one under the defaults.  The
    ``async_mode``/``kernel`` kwargs are hoisted into their resolved
    top-level fields, so explicitly spelling a default hashes identically
    to omitting it.

    ``dataset_seed`` is the seed the dataset/problem is generated from —
    the runner uses its config-level seed for that, which may differ from
    ``spec.seed`` (the solver's RNG stream) on hand-built configs; it
    defaults to ``spec.seed``, matching :func:`~...runner.run_single`.
    """
    from dataclasses import asdict

    from repro.async_engine.cost_model import CostModel
    from repro.async_engine.modes import default_async_mode, resolve_async_mode
    from repro.kernels.registry import default_backend_name

    kwargs = dict(spec.kwargs())
    async_mode: Optional[str] = None
    if spec.solver in ASYNC_SOLVERS:
        explicit = kwargs.pop("async_mode", None)
        async_mode = resolve_async_mode(explicit) if explicit is not None else default_async_mode()
    kernel = kwargs.pop("kernel", None)
    if kernel is None:
        kernel = default_backend_name()
    elif not isinstance(kernel, str):
        raise ValueError(
            "artifact identities require the 'kernel' solver kwarg to be a registry "
            f"name, got {type(kernel).__name__}"
        )
    ok, canonical_kwargs = _jsonable(kwargs)
    if not ok:
        raise ValueError(
            f"solver kwargs for {spec.solver!r} on {spec.dataset!r} are not "
            "JSON-serializable; pass registry names instead of live objects"
        )
    params = (cost_model or CostModel()).params
    return {
        "dataset": spec.dataset,
        "solver": spec.solver,
        "num_workers": int(spec.num_workers),
        "step_size": float(spec.step_size),
        "epochs": int(spec.epochs),
        "seed": int(spec.seed),
        "dataset_seed": int(dataset_seed if dataset_seed is not None else spec.seed),
        "kwargs": canonical_kwargs,
        "async_mode": async_mode,
        "kernel": kernel,
        "objective": objective,
        "regularization": float(regularization),
        "cost_model": {k: float(v) for k, v in sorted(asdict(params).items())},
    }


def identity_key(identity: Dict[str, Any]) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of an identity."""
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def atomic_write_json(path: Union[str, Path], payload: Any, *, indent: int = 1) -> Path:
    """Write ``payload`` as JSON atomically (temp file + :func:`os.replace`).

    The write-then-rename idiom guarantees a reader never observes a
    half-written file: a process killed mid-write leaves only a dot-prefixed
    temp file behind, never a corrupt artifact that would poison a later
    resume.  Shared by the run artifacts below and the cluster tier's
    checkpoints (:mod:`repro.cluster.checkpoint`).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, sort_keys=True, indent=indent)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.stem[:12]}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def run_key(
    spec: RunSpec,
    *,
    objective: str = "logistic_l1",
    regularization: float = 1e-4,
    cost_model: Optional["CostModel"] = None,
    dataset_seed: Optional[int] = None,
) -> str:
    """The content-addressed key of one run spec."""
    return identity_key(
        run_identity(
            spec,
            objective=objective,
            regularization=regularization,
            cost_model=cost_model,
            dataset_seed=dataset_seed,
        )
    )


class ArtifactStore:
    """A directory of content-addressed run artifacts.

    Parameters
    ----------
    root:
        Directory holding the ``<key>.json`` artifacts; created lazily on
        the first :meth:`save`.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        # mtime-keyed caches: the index (key -> artifact file mtime_ns) is
        # valid as long as the directory mtime is unchanged — every write
        # goes through os.replace, which always modifies the directory —
        # and parsed entries are valid as long as their file mtime matches
        # the index.  Pollers (the serving hot-swap watcher, `repro report`
        # re-invocations in one process) therefore stop re-reading every
        # artifact JSON when nothing changed.
        self._index_cache: Optional[Tuple[int, Dict[str, int]]] = None
        self._entry_cache: Dict[str, Tuple[int, Dict[str, Any]]] = {}

    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """The artifact path of ``key``."""
        return self.root / f"{key}.json"

    def contains(self, key: str) -> bool:
        """Whether a completed artifact exists for ``key``."""
        return self.path_for(key).is_file()

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def _dir_signature(self) -> Optional[int]:
        try:
            return self.root.stat().st_mtime_ns
        except OSError:
            return None

    def index(self) -> Dict[str, int]:
        """``{key: artifact mtime_ns}``, cached until the directory changes.

        Artifacts are only ever created/replaced via :func:`os.replace`
        into the store directory, and a rename always updates the directory
        mtime — so an unchanged directory mtime means an unchanged index.
        The returned mapping is the cache; treat it as read-only.
        """
        signature = self._dir_signature()
        if signature is None:
            self._index_cache = None
            return {}
        if self._index_cache is not None and self._index_cache[0] == signature:
            return self._index_cache[1]
        index: Dict[str, int] = {}
        for path in self.root.glob("*.json"):
            try:
                index[path.stem] = path.stat().st_mtime_ns
            except OSError:  # pragma: no cover - racing deletion
                continue
        self._index_cache = (signature, index)
        return index

    def keys(self) -> List[str]:
        """Keys of every stored artifact, sorted for determinism."""
        return sorted(self.index())

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------------ #
    def save(self, key: str, record: RunRecord, identity: Optional[Dict[str, Any]] = None) -> Path:
        """Persist ``record`` under ``key`` (atomic: temp file + rename)."""
        entry = {
            "format_version": FORMAT_VERSION,
            "key": key,
            "identity": identity,
            "record": record.to_dict(),
        }
        path = atomic_write_json(self.path_for(key), entry)
        # Drop caches for the written key rather than trusting the directory
        # mtime alone: on filesystems with coarse timestamp granularity two
        # writes can land in the same mtime tick.
        self._index_cache = None
        self._entry_cache.pop(key, None)
        return path

    def load_entry(self, key: str) -> Dict[str, Any]:
        """The full on-disk entry (format, identity and record payload).

        Parsed entries are cached per file mtime, so repeated loads of an
        unchanged artifact (index polling, report re-renders) parse the
        JSON once.  The returned dict is shared with the cache — treat it
        as read-only.
        """
        mtime = self.index().get(key)
        if mtime is not None:
            cached = self._entry_cache.get(key)
            if cached is not None and cached[0] == mtime:
                return cached[1]
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"artifact {path} is missing or corrupt: {exc}") from exc
        version = entry.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"artifact {path} has format_version {version!r}, expected {FORMAT_VERSION}"
            )
        if mtime is not None:
            self._entry_cache[key] = (mtime, entry)
        return entry

    def load(self, key: str) -> RunRecord:
        """Rebuild the :class:`RunRecord` stored under ``key``."""
        return RunRecord.from_dict(self.load_entry(key)["record"])

    def entries(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Iterate ``(key, entry)`` over every artifact (sorted by key)."""
        for key in self.keys():
            yield key, self.load_entry(key)

    def records(self) -> List[RunRecord]:
        """Every stored record, sorted by key."""
        return [RunRecord.from_dict(entry["record"]) for _, entry in self.entries()]

    def summary_rows(self) -> List[Dict[str, Any]]:
        """One flat row per artifact (for ``python -m repro list --store``)."""
        rows: List[Dict[str, Any]] = []
        for key, entry in self.entries():
            identity = entry.get("identity") or {}
            record = entry.get("record", {})
            rows.append(
                {
                    "key": key[:12],
                    "dataset": identity.get("dataset", record.get("dataset", "?")),
                    "solver": identity.get("solver", record.get("solver", "?")),
                    "workers": identity.get("num_workers", record.get("num_workers", "?")),
                    "async_mode": identity.get("async_mode") or "-",
                    "epochs": identity.get("epochs", "?"),
                    "seed": identity.get("seed", "?"),
                }
            )
        return rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore({str(self.root)!r}, artifacts={len(self)})"


__all__ = [
    "FORMAT_VERSION",
    "ASYNC_SOLVERS",
    "ArtifactStore",
    "atomic_write_json",
    "identity_key",
    "run_identity",
    "run_key",
]
