"""Plain-text rendering of tables and figure summaries.

Keeps the library plotting-free: every table/figure is emitted as an
aligned text table (and optionally CSV) that can be diffed against the
values recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Optional, Sequence


def _format_value(value: object, *, precision: int = 4) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_format_value(row.get(c, ""), precision=precision) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[k]) for r in rendered)) for k, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[k]) for k, c in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.ljust(widths[k]) for k, cell in enumerate(r)))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Dict[str, object]], *, columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as CSV text."""
    if not rows:
        return ""
    cols = list(columns) if columns is not None else list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=cols, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def render_curve_rows(curve, *, label: str = "") -> List[Dict[str, object]]:
    """Flatten a convergence curve into per-epoch rows."""
    rows = []
    for k in range(len(curve)):
        rows.append(
            {
                "label": label or curve.label,
                "epoch": curve.epochs[k],
                "iterations": curve.iterations[k],
                "wall_clock": curve.wall_clock[k],
                "rmse": curve.rmse[k],
                "error_rate": curve.error_rate[k],
            }
        )
    return rows


def render_figure_summary(panels, *, metric: str = "error_rate") -> str:
    """One text block per figure panel: final/best metrics per solver plus annotations."""
    blocks = []
    for panel in panels:
        rows = []
        for solver, curve in sorted(panel.curves.items()):
            rows.append(
                {
                    "solver": solver,
                    "epochs": len(curve),
                    "final_rmse": curve.final_rmse,
                    "best_error_rate": curve.best_error_rate,
                    "total_time": curve.total_time,
                }
            )
        title = f"dataset={panel.dataset}  workers={panel.num_workers}"
        block = format_table(rows, title=title)
        if panel.annotations:
            annot = ", ".join(f"{k}={_format_value(v)}" for k, v in sorted(panel.annotations.items()))
            block += "\n  " + annot
        blocks.append(block)
    return "\n\n".join(blocks)


def render_speedup_slices(slices) -> str:
    """Text rendering of Figure-5 slices."""
    rows = []
    for sl in slices:
        rows.append(
            {
                "dataset": sl.dataset,
                "workers": sl.num_workers,
                "baseline": sl.baseline,
                "targets": len(sl.points),
                "mean_speedup": sl.mean_speedup if sl.mean_speedup is not None else "n/a",
            }
        )
    return format_table(rows, title="Figure 5: error-rate -> speedup slices")


__all__ = [
    "format_table",
    "rows_to_csv",
    "render_curve_rows",
    "render_figure_summary",
    "render_speedup_slices",
]
