"""Plain-text rendering of tables and figure summaries.

Keeps the library plotting-free: every table/figure is emitted as an
aligned text table (and optionally CSV) that can be diffed against the
values recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union


def _format_value(value: object, *, precision: int = 4) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_format_value(row.get(c, ""), precision=precision) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[k]) for r in rendered)) for k, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[k]) for k, c in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.ljust(widths[k]) for k, cell in enumerate(r)))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Dict[str, object]], *, columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as CSV text."""
    if not rows:
        return ""
    cols = list(columns) if columns is not None else list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=cols, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def render_curve_rows(curve, *, label: str = "") -> List[Dict[str, object]]:
    """Flatten a convergence curve into per-epoch rows."""
    rows = []
    for k in range(len(curve)):
        rows.append(
            {
                "label": label or curve.label,
                "epoch": curve.epochs[k],
                "iterations": curve.iterations[k],
                "wall_clock": curve.wall_clock[k],
                "rmse": curve.rmse[k],
                "error_rate": curve.error_rate[k],
            }
        )
    return rows


def render_figure_summary(panels, *, metric: str = "error_rate") -> str:
    """One text block per figure panel: final/best metrics per solver plus annotations."""
    blocks = []
    for panel in panels:
        rows = []
        for solver, curve in sorted(panel.curves.items()):
            rows.append(
                {
                    "solver": solver,
                    "epochs": len(curve),
                    "final_rmse": curve.final_rmse,
                    "best_error_rate": curve.best_error_rate,
                    "total_time": curve.total_time,
                }
            )
        title = f"dataset={panel.dataset}  workers={panel.num_workers}"
        block = format_table(rows, title=title)
        if panel.annotations:
            annot = ", ".join(f"{k}={_format_value(v)}" for k, v in sorted(panel.annotations.items()))
            block += "\n  " + annot
        blocks.append(block)
    return "\n\n".join(blocks)


def render_speedup_slices(slices) -> str:
    """Text rendering of Figure-5 slices."""
    rows = []
    for sl in slices:
        rows.append(
            {
                "dataset": sl.dataset,
                "workers": sl.num_workers,
                "baseline": sl.baseline,
                "targets": len(sl.points),
                "mean_speedup": sl.mean_speedup if sl.mean_speedup is not None else "n/a",
            }
        )
    return format_table(rows, title="Figure 5: error-rate -> speedup slices")


def write_report_files(
    records,
    out: Union[str, Path],
    *,
    panels4=None,
    slices=None,
    headline=None,
) -> List[Path]:
    """Render Figure 3/4/5 artefacts from a record set into ``out``.

    Shared by ``python -m repro report`` and
    ``examples/reproduce_figures.py``: given any
    :class:`~repro.experiments.runner.RecordSet`-like object (live runner
    or records re-hydrated from the artifact store), writes the figure
    summaries, per-epoch curve CSV and headline JSON, and returns the
    written paths.  Callers that already built the Figure 4 panels,
    Figure 5 slices or headline dict from the same record set (e.g. to
    print them) can pass them in so rendering does not recompute them.
    """
    from repro.experiments.figures import (
        figure3_data,
        figure4_data,
        figure5_data,
        headline_numbers,
    )

    out = Path(out)
    out.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    panels3 = figure3_data(records)
    path = out / "figure3.txt"
    path.write_text(render_figure_summary(panels3) + "\n")
    written.append(path)
    curve_rows = []
    for panel in panels3:
        for solver, curve in panel.curves.items():
            label = f"{panel.dataset}/{solver}/T{panel.num_workers}"
            curve_rows.extend(render_curve_rows(curve, label=label))
    path = out / "figure3_curves.csv"
    path.write_text(rows_to_csv(curve_rows))
    written.append(path)

    if panels4 is None:
        panels4 = figure4_data(records)
    path = out / "figure4.txt"
    path.write_text(render_figure_summary(panels4) + "\n")
    written.append(path)

    if slices is None:
        slices = figure5_data(records)
    path = out / "figure5.txt"
    path.write_text(render_speedup_slices(slices) + "\n")
    written.append(path)

    if headline is None:
        headline = headline_numbers(records, panels4=panels4, slices=slices)
    path = out / "headline.json"
    path.write_text(json.dumps(headline, indent=2, default=float))
    written.append(path)
    return written


__all__ = [
    "format_table",
    "rows_to_csv",
    "render_curve_rows",
    "render_figure_summary",
    "render_speedup_slices",
    "write_report_files",
]
