"""Experiment harness regenerating every table and figure of the paper.

The harness is config-driven: :mod:`repro.experiments.configs` defines the
sweeps (dataset x solver x concurrency), :mod:`repro.experiments.runner`
executes them, :mod:`repro.experiments.tables` /
:mod:`repro.experiments.figures` shape the results into the paper's Table 1
and Figures 3-5, and :mod:`repro.experiments.report` renders plain-text
tables (the library produces data series, not plots, so it stays
matplotlib-free).

:mod:`repro.experiments.store` persists every run as a content-addressed
JSON artifact so sweeps are resumable and reports rebuild from disk; the
``python -m repro`` CLI (:mod:`repro.cli`) orchestrates all of it.
"""

from repro.experiments.configs import (
    ExperimentConfig,
    RunSpec,
    available_configs,
    figure_config,
    make_config,
    table1_config,
)
from repro.experiments.runner import ExperimentRunner, RecordSet, run_single
from repro.experiments.store import ArtifactStore, run_identity, run_key
from repro.experiments.tables import table1_rows
from repro.experiments.figures import (
    figure3_data,
    figure4_data,
    figure5_data,
    headline_numbers,
)
from repro.experiments.report import format_table, render_figure_summary

__all__ = [
    "ExperimentConfig",
    "RunSpec",
    "available_configs",
    "figure_config",
    "make_config",
    "table1_config",
    "ArtifactStore",
    "run_identity",
    "run_key",
    "ExperimentRunner",
    "RecordSet",
    "run_single",
    "table1_rows",
    "figure3_data",
    "figure4_data",
    "figure5_data",
    "headline_numbers",
    "format_table",
    "render_figure_summary",
]
