"""Execution of experiment configurations.

:class:`ExperimentRunner` turns :class:`~repro.experiments.configs.RunSpec`
entries into trained :class:`~repro.metrics.tracing.RunRecord` objects.  A
shared :class:`~repro.async_engine.cost_model.CostModel` is used for every
run of one experiment so the simulated wall-clock axes of different solvers
are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.async_engine.cost_model import CostModel
from repro.core.balancing import BalancingDecision
from repro.datasets.loader import Dataset, load_dataset
from repro.experiments.configs import ExperimentConfig, RunSpec
from repro.metrics.tracing import RunRecord
from repro.objectives.registry import make_objective
from repro.solvers.base import Problem
from repro.solvers.registry import make_solver
from repro.utils.logging import get_logger
from repro.utils.timer import Timer

LOGGER = get_logger("experiments.runner")


def _coerce_solver_kwargs(kwargs: Dict[str, object]) -> Dict[str, object]:
    """Translate config-file-friendly values into the solver API types."""
    out = dict(kwargs)
    force = out.get("force_balancing")
    if isinstance(force, str):
        out["force_balancing"] = BalancingDecision(force)
    return out


def build_problem(
    dataset: str,
    *,
    objective: str = "logistic_l1",
    regularization: float = 1e-4,
    seed: int = 0,
) -> Problem:
    """Load a dataset and wrap it into a :class:`~repro.solvers.base.Problem`."""
    ds: Dataset = load_dataset(dataset, seed=seed)
    obj = make_objective(objective, eta=regularization)
    return Problem(X=ds.X, y=ds.y, objective=obj, name=dataset)


def run_single(
    spec: RunSpec,
    *,
    problem: Optional[Problem] = None,
    objective: str = "logistic_l1",
    regularization: float = 1e-4,
    cost_model: Optional[CostModel] = None,
) -> RunRecord:
    """Execute one run spec and return its record."""
    if problem is None:
        problem = build_problem(
            spec.dataset, objective=objective, regularization=regularization, seed=spec.seed
        )
    solver_kwargs = _coerce_solver_kwargs(spec.kwargs())
    solver = make_solver(
        spec.solver,
        step_size=spec.step_size,
        epochs=spec.epochs,
        num_workers=spec.num_workers,
        seed=spec.seed,
        cost_model=cost_model,
        **solver_kwargs,
    )
    timer = Timer()
    with timer:
        result = solver.fit(problem)
    record = RunRecord(
        solver=spec.solver,
        dataset=spec.dataset,
        num_workers=spec.num_workers,
        curve=result.curve,
        trace=result.trace,
        info={**result.info, "measured_train_seconds": timer.elapsed, "step_size": spec.step_size},
    )
    LOGGER.info(
        "run %s: best_error=%.4f final_rmse=%.4f sim_time=%.3fs wall=%.2fs",
        record.label,
        record.curve.best_error_rate,
        record.curve.final_rmse,
        record.curve.total_time,
        timer.elapsed,
    )
    return record


@dataclass
class ExperimentRunner:
    """Runs every spec of an :class:`ExperimentConfig`, caching datasets and problems."""

    config: ExperimentConfig
    cost_model: CostModel = field(default_factory=CostModel)
    records: List[RunRecord] = field(default_factory=list)
    _problems: Dict[str, Problem] = field(default_factory=dict, repr=False)

    def problem_for(self, dataset: str) -> Problem:
        """The (cached) problem instance for ``dataset``."""
        if dataset not in self._problems:
            self._problems[dataset] = build_problem(
                dataset,
                objective=self.config.objective,
                regularization=self.config.regularization,
                seed=self.config.seed,
            )
        return self._problems[dataset]

    def run(self) -> List[RunRecord]:
        """Execute every run in the configuration (training runs only)."""
        self.records = []
        for spec in self.config.runs:
            if spec.solver == "none":
                continue
            record = run_single(
                spec,
                problem=self.problem_for(spec.dataset),
                cost_model=self.cost_model,
            )
            self.records.append(record)
        return self.records

    # ------------------------------------------------------------------ #
    # Lookup helpers used by the figure builders
    # ------------------------------------------------------------------ #
    def find(
        self,
        *,
        dataset: Optional[str] = None,
        solver: Optional[str] = None,
        num_workers: Optional[int] = None,
    ) -> List[RunRecord]:
        """All records matching the given filters."""
        out = []
        for record in self.records:
            if dataset is not None and record.dataset != dataset:
                continue
            if solver is not None and record.solver != solver:
                continue
            if num_workers is not None and record.num_workers != num_workers:
                continue
            out.append(record)
        return out

    def get(self, dataset: str, solver: str, num_workers: Optional[int] = None) -> RunRecord:
        """Exactly one record matching the filters (raises when 0 or >1 match)."""
        matches = self.find(dataset=dataset, solver=solver, num_workers=num_workers)
        if len(matches) != 1:
            raise LookupError(
                f"expected exactly one record for ({dataset}, {solver}, {num_workers}), "
                f"found {len(matches)}"
            )
        return matches[0]

    def summary_rows(self) -> List[Dict[str, object]]:
        """Flat summary rows of every record (for the report renderer)."""
        return [r.summary() for r in self.records]


__all__ = ["ExperimentRunner", "run_single", "build_problem"]
