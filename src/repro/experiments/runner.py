"""Execution of experiment configurations.

:class:`ExperimentRunner` turns :class:`~repro.experiments.configs.RunSpec`
entries into trained :class:`~repro.metrics.tracing.RunRecord` objects.  A
shared :class:`~repro.async_engine.cost_model.CostModel` is used for every
run of one experiment so the simulated wall-clock axes of different solvers
are directly comparable.

Two orthogonal features make full paper sweeps practical:

* **Artifact reuse** — when the runner is given an
  :class:`~repro.experiments.store.ArtifactStore`, every completed run is
  persisted under its content-addressed key and skipped on re-invocation,
  so an interrupted sweep resumes where it stopped and ``report`` works
  from disk alone.
* **Parallel scheduling** — independent specs are dispatched through a
  process pool (``jobs > 1``) capped by the cluster tier's
  :func:`~repro.cluster.driver.available_parallelism`.  Specs that resolve
  to ``async_mode="process"`` spawn their own worker processes and expect
  the whole machine, so they always run exclusively in the parent, after
  the pooled specs.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.async_engine.cost_model import CostModel
from repro.core.balancing import BalancingDecision
from repro.datasets.loader import Dataset, load_dataset
from repro.experiments.configs import ExperimentConfig, RunSpec
from repro.experiments.store import ArtifactStore, run_identity, identity_key
from repro.metrics.tracing import RunRecord
from repro.objectives.registry import make_objective
from repro.solvers.base import Problem
from repro.solvers.registry import make_solver
from repro.utils.logging import get_logger
from repro.utils.timer import Timer

LOGGER = get_logger("experiments.runner")


def _coerce_solver_kwargs(kwargs: Dict[str, object]) -> Dict[str, object]:
    """Translate config-file-friendly values into the solver API types."""
    out = dict(kwargs)
    force = out.get("force_balancing")
    if isinstance(force, str):
        out["force_balancing"] = BalancingDecision(force)
    return out


def build_problem(
    dataset: str,
    *,
    objective: str = "logistic_l1",
    regularization: float = 1e-4,
    seed: int = 0,
) -> Problem:
    """Load a dataset and wrap it into a :class:`~repro.solvers.base.Problem`."""
    ds: Dataset = load_dataset(dataset, seed=seed)
    obj = make_objective(objective, eta=regularization)
    return Problem(X=ds.X, y=ds.y, objective=obj, name=dataset)


def run_single(
    spec: RunSpec,
    *,
    problem: Optional[Problem] = None,
    objective: str = "logistic_l1",
    regularization: float = 1e-4,
    cost_model: Optional[CostModel] = None,
) -> RunRecord:
    """Execute one run spec and return its record."""
    if problem is None:
        problem = build_problem(
            spec.dataset, objective=objective, regularization=regularization, seed=spec.seed
        )
    solver_kwargs = _coerce_solver_kwargs(spec.kwargs())
    solver = make_solver(
        spec.solver,
        step_size=spec.step_size,
        epochs=spec.epochs,
        num_workers=spec.num_workers,
        seed=spec.seed,
        cost_model=cost_model,
        **solver_kwargs,
    )
    timer = Timer()
    with timer:
        result = solver.fit(problem)
    record = RunRecord(
        solver=spec.solver,
        dataset=spec.dataset,
        num_workers=spec.num_workers,
        curve=result.curve,
        trace=result.trace,
        info={
            **result.info,
            "measured_train_seconds": timer.elapsed,
            "step_size": spec.step_size,
            # The trained iterate itself: this is what turns a stored
            # artifact into a servable model (repro.serving loads it into
            # an immutable ScoringModel).
            "weights": result.weights,
        },
    )
    LOGGER.info(
        "run %s: best_error=%.4f final_rmse=%.4f sim_time=%.3fs wall=%.2fs",
        record.label,
        record.curve.best_error_rate,
        record.curve.final_rmse,
        record.curve.total_time,
        timer.elapsed,
    )
    return record


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` request against the machine's usable cores.

    ``None`` and ``1`` mean serial; ``0`` means "auto" (every usable core);
    any other value is capped by the cluster tier's affinity-aware
    :func:`~repro.cluster.driver.available_parallelism`.
    """
    from repro.cluster.driver import available_parallelism

    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 means auto)")
    cores = available_parallelism()
    if jobs == 0:
        return cores
    return max(1, min(jobs, cores))


def _pin_resolved_execution(spec: RunSpec, identity: Dict[str, Any]) -> RunSpec:
    """Make the identity's resolved ``async_mode``/``kernel`` explicit on a spec.

    Pool workers may be fresh ``spawn`` processes without the parent's
    programmatic registry defaults (``set_default_async_mode`` etc.), so a
    spec relying on an ambient default could train something other than
    what :func:`~repro.experiments.store.run_identity` hashed.  Pinning
    the resolved values as explicit kwargs makes the worker execute
    exactly the identity regardless of the start method.
    """
    from dataclasses import replace

    kwargs = dict(spec.solver_kwargs)
    if identity.get("async_mode") is not None:
        kwargs.setdefault("async_mode", identity["async_mode"])
    if identity.get("kernel") is not None:
        kwargs.setdefault("kernel", identity["kernel"])
    return replace(spec, solver_kwargs=tuple(sorted(kwargs.items())))


def _pool_execute(
    payload: Tuple[int, RunSpec, str, float, int, CostModel],
) -> Tuple[int, RunRecord]:
    """Process-pool entry point: build the problem locally and run one spec.

    The problem is rebuilt inside the worker (datasets are generated from
    the config seed, so this is deterministic) — shipping the CSR matrix
    through the pool would cost more than regenerating it.
    """
    index, spec, objective, regularization, seed, cost_model = payload
    problem = build_problem(
        spec.dataset, objective=objective, regularization=regularization, seed=seed
    )
    record = run_single(spec, problem=problem, cost_model=cost_model)
    return index, record


@dataclass
class RunnerStats:
    """How the most recent :meth:`ExperimentRunner.run` satisfied its specs."""

    trained: int = 0
    reused: int = 0
    skipped: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (for CLI/JSON output)."""
        return {"trained": self.trained, "reused": self.reused, "skipped": self.skipped}


class RecordSet:
    """A queryable collection of :class:`RunRecord` plus the shared cost model.

    This is the interface the figure/table builders consume; it is
    satisfied both by a live :class:`ExperimentRunner` and by records
    re-hydrated from an :class:`~repro.experiments.store.ArtifactStore`
    (``python -m repro report``).
    """

    def __init__(
        self,
        records: Optional[Iterable[RunRecord]] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.records: List[RunRecord] = list(records or [])
        self.cost_model = cost_model or CostModel()

    @classmethod
    def from_store(
        cls,
        store: Union[ArtifactStore, str],
        *,
        cost_model: Optional[CostModel] = None,
        dataset: Optional[str] = None,
        solver: Optional[str] = None,
        async_mode: Optional[str] = None,
    ) -> "RecordSet":
        """Load every stored artifact (optionally filtered) into a record set.

        ``async_mode`` filters on the mode recorded in each run's info
        (serial solvers, which have none, always pass) — one store can hold
        the same sweep under several execution modes, and the figure
        builders expect one record per (dataset, solver, concurrency).
        """
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        records = [
            r
            for r in store.records()
            if (dataset is None or r.dataset == dataset)
            and (solver is None or r.solver == solver)
            and (
                async_mode is None
                or r.info.get("async_mode") is None
                or r.info.get("async_mode") == async_mode
            )
        ]
        return cls(records, cost_model=cost_model)

    # ------------------------------------------------------------------ #
    # Lookup helpers used by the figure builders
    # ------------------------------------------------------------------ #
    def find(
        self,
        *,
        dataset: Optional[str] = None,
        solver: Optional[str] = None,
        num_workers: Optional[int] = None,
    ) -> List[RunRecord]:
        """All records matching the given filters."""
        out = []
        for record in self.records:
            if dataset is not None and record.dataset != dataset:
                continue
            if solver is not None and record.solver != solver:
                continue
            if num_workers is not None and record.num_workers != num_workers:
                continue
            out.append(record)
        return out

    def get(self, dataset: str, solver: str, num_workers: Optional[int] = None) -> RunRecord:
        """Exactly one record matching the filters (raises when 0 or >1 match)."""
        matches = self.find(dataset=dataset, solver=solver, num_workers=num_workers)
        if len(matches) != 1:
            hint = (
                "; a store holding overlapping sweeps has duplicates — collapse "
                "them with RecordSet.deduplicated()" if len(matches) > 1 else ""
            )
            raise LookupError(
                f"expected exactly one record for ({dataset}, {solver}, {num_workers}), "
                f"found {len(matches)}{hint}"
            )
        return matches[0]

    def deduplicated(self, *, prefer_async_mode: Optional[str] = None) -> "RecordSet":
        """A copy holding exactly one record per ``(dataset, solver, num_workers)``.

        A store can hold the same combination several times — e.g. a
        ``figures`` sweep (engine-default mode) next to a ``cluster`` sweep
        (explicit ``per_sample`` plus ``process`` runs) — but the figure
        builders expect one record per combination.  Duplicates collapse
        deterministically: records executed under ``prefer_async_mode``
        (default: the engine's default mode, i.e. the simulated curves the
        paper plots) win, remaining ties break on the mode name and the
        canonical summary encoding.
        """
        import json

        from repro.async_engine.modes import default_async_mode

        preferred = prefer_async_mode or default_async_mode()

        def rank(record: RunRecord) -> Tuple[int, str, str]:
            mode = record.info.get("async_mode")
            return (
                0 if mode in (None, preferred) else 1,
                str(mode or ""),
                json.dumps(record.summary(), sort_keys=True, default=str),
            )

        groups: Dict[Tuple[str, str, int], List[RunRecord]] = {}
        for record in self.records:
            groups.setdefault((record.dataset, record.solver, record.num_workers), []).append(record)
        keep = {id(min(group, key=rank)) for group in groups.values()}
        return RecordSet(
            [r for r in self.records if id(r) in keep], cost_model=self.cost_model
        )

    def summary_rows(self) -> List[Dict[str, object]]:
        """Flat summary rows of every record (for the report renderer)."""
        return [r.summary() for r in self.records]

    def __len__(self) -> int:
        return len(self.records)


class ExperimentRunner(RecordSet):
    """Runs every spec of an :class:`ExperimentConfig`, caching datasets and problems.

    Parameters
    ----------
    config:
        The sweep to execute.
    cost_model:
        Shared pricing model (one per experiment so solvers are comparable).
    store:
        Optional artifact store (instance or directory path).  When given,
        completed runs are persisted and re-invocations skip them.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        cost_model: Optional[CostModel] = None,
        store: Union[ArtifactStore, str, None] = None,
    ) -> None:
        super().__init__(records=None, cost_model=cost_model)
        self.config = config
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store: Optional[ArtifactStore] = store
        self.stats = RunnerStats()
        self._problems: Dict[str, Problem] = {}

    def problem_for(self, dataset: str) -> Problem:
        """The (cached) problem instance for ``dataset``."""
        if dataset not in self._problems:
            self._problems[dataset] = build_problem(
                dataset,
                objective=self.config.objective,
                regularization=self.config.regularization,
                seed=self.config.seed,
            )
        return self._problems[dataset]

    # ------------------------------------------------------------------ #
    def plan(self) -> List[Tuple[RunSpec, str, Dict[str, Any], str]]:
        """The execution plan: ``(spec, key, identity, status)`` per runnable spec.

        Status is ``"cached"`` when the store already holds the artifact,
        else ``"pending"``.  ``solver == "none"`` placeholder specs (Table 1)
        are excluded — they involve no training.
        """
        plan = []
        for spec in self.config.runs:
            if spec.solver == "none":
                continue
            identity = run_identity(
                spec,
                objective=self.config.objective,
                regularization=self.config.regularization,
                cost_model=self.cost_model,
                dataset_seed=self.config.seed,
            )
            key = identity_key(identity)
            status = "cached" if (self.store is not None and self.store.contains(key)) else "pending"
            plan.append((spec, key, identity, status))
        return plan

    def run(self, *, jobs: Optional[int] = None, force: bool = False) -> List[RunRecord]:
        """Execute every run in the configuration (training runs only).

        Parameters
        ----------
        jobs:
            Parallel worker processes for independent specs (``None``/1 =
            serial, 0 = one per usable core; always capped by the machine).
        force:
            Re-train even when the store already holds the artifact.
        """
        plan = self.plan()
        self.records = [None] * len(plan)  # type: ignore[list-item]
        self.stats = RunnerStats(skipped=len(self.config.runs) - len(plan))

        pending: List[Tuple[int, RunSpec, str, Dict[str, Any]]] = []
        for index, (spec, key, identity, status) in enumerate(plan):
            if status == "cached" and not force:
                self.records[index] = self.store.load(key)  # type: ignore[union-attr]
                self.stats.reused += 1
                LOGGER.info("reusing artifact %s for %s/%s", key[:12], spec.dataset, spec.solver)
            else:
                pending.append((index, spec, key, identity))

        # Specs resolving to the process cluster spawn their own workers
        # and expect the machine to themselves; everything else can share
        # a pool.
        exclusive = [p for p in pending if p[3].get("async_mode") == "process"]
        poolable = [p for p in pending if p[3].get("async_mode") != "process"]
        effective_jobs = resolve_jobs(jobs)

        if effective_jobs > 1 and len(poolable) > 1:
            self._run_pooled(poolable, effective_jobs)
        else:
            for index, spec, key, identity in poolable:
                self._run_one(index, spec, key, identity)
        for index, spec, key, identity in exclusive:
            self._run_one(index, spec, key, identity)

        assert all(r is not None for r in self.records)
        return self.records

    # ------------------------------------------------------------------ #
    def _store_record(self, key: str, identity: Dict[str, Any], record: RunRecord) -> None:
        if self.store is not None:
            self.store.save(key, record, identity)

    def _run_one(self, index: int, spec: RunSpec, key: str, identity: Dict[str, Any]) -> None:
        record = run_single(
            spec,
            problem=self.problem_for(spec.dataset),
            cost_model=self.cost_model,
        )
        self._store_record(key, identity, record)
        self.records[index] = record
        self.stats.trained += 1

    def _run_pooled(
        self, pending: List[Tuple[int, RunSpec, str, Dict[str, Any]]], jobs: int
    ) -> None:
        """Dispatch independent specs through a process pool.

        Artifacts are saved as each run *completes* (not at the end), so a
        killed sweep keeps everything that finished.
        """
        from repro.cluster.driver import default_start_method

        by_index = {index: (key, identity) for index, _, key, identity in pending}
        payloads = [
            (index, _pin_resolved_execution(spec, identity), self.config.objective,
             self.config.regularization, self.config.seed, self.cost_model)
            for index, spec, _, identity in pending
        ]
        context = mp.get_context(default_start_method())
        workers = min(jobs, len(payloads))
        LOGGER.info("scheduling %d runs over %d pool workers", len(payloads), workers)
        first_error: Optional[BaseException] = None
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = {pool.submit(_pool_execute, payload) for payload in payloads}
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    # A failed run must not discard completed siblings in
                    # the same batch — save every success first, re-raise
                    # after the pool drains.
                    try:
                        index, record = future.result()
                    except BaseException as exc:
                        if first_error is None:
                            first_error = exc
                        continue
                    key, identity = by_index[index]
                    self._store_record(key, identity, record)
                    self.records[index] = record
                    self.stats.trained += 1
        if first_error is not None:
            raise first_error


__all__ = [
    "ExperimentRunner",
    "RecordSet",
    "RunnerStats",
    "resolve_jobs",
    "run_single",
    "build_problem",
]
