"""Figure 3/4/5 data builders.

The library produces the *data series* behind each figure (it deliberately
has no plotting dependency): per-epoch RMSE / error-rate curves for
Figure 3, wall-clock curves plus optimum-speedup markers for Figure 4, and
error-rate → speedup slices per concurrency for Figure 5.  The headline
aggregates of Section 4.2 (optimum speedup range, average speedup, raw
speedup over SGD) are computed in :func:`headline_numbers`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.runner import RecordSet
from repro.metrics.convergence import ConvergenceCurve
from repro.metrics.speedup import (
    SpeedupPoint,
    average_speedup,
    optimum_speedup,
    speedup_slices,
    time_to_target,
)


@dataclass
class FigurePanel:
    """One sub-panel of a figure: one dataset at one concurrency."""

    dataset: str
    num_workers: int
    curves: Dict[str, ConvergenceCurve] = field(default_factory=dict)
    annotations: Dict[str, float] = field(default_factory=dict)


def _serial_record(runner: RecordSet, dataset: str):
    matches = runner.find(dataset=dataset, solver="sgd")
    return matches[0] if matches else None


def figure3_data(runner: RecordSet) -> List[FigurePanel]:
    """Iterative-convergence panels (metric vs epoch) for every dataset x concurrency.

    Every panel carries the curves of every solver that ran on that dataset;
    serial SGD (independent of the thread count) is replicated into each
    panel exactly as the paper plots it.
    """
    panels: List[FigurePanel] = []
    combos = sorted(
        {(r.dataset, r.num_workers) for r in runner.records if r.solver != "sgd"},
        key=lambda c: (c[0], c[1]),
    )
    for dataset, workers in combos:
        panel = FigurePanel(dataset=dataset, num_workers=workers)
        sgd = _serial_record(runner, dataset)
        if sgd is not None:
            panel.curves["sgd"] = sgd.curve
        for record in runner.find(dataset=dataset, num_workers=workers):
            if record.solver == "sgd":
                continue
            panel.curves[record.solver] = record.curve
        panels.append(panel)
    return panels


def figure4_data(runner: RecordSet) -> List[FigurePanel]:
    """Absolute-convergence panels (metric vs simulated wall-clock) with optimum markers.

    Each panel's annotations contain, when both solvers are present, the
    paper's red-circle/blue-dot comparison: the wall-clock at which ASGD and
    IS-ASGD reach ASGD's best error rate, and the implied speedup.
    """
    panels = figure3_data(runner)
    for panel in panels:
        asgd = panel.curves.get("asgd")
        is_asgd = panel.curves.get("is_asgd")
        if asgd is None or is_asgd is None:
            continue
        point = optimum_speedup(is_asgd, asgd)
        panel.annotations["asgd_optimum_error"] = point.target
        if point.time_slow is not None:
            panel.annotations["asgd_time_to_optimum"] = point.time_slow
        if point.time_fast is not None:
            panel.annotations["is_asgd_time_to_optimum"] = point.time_fast
        if point.speedup is not None:
            panel.annotations["optimum_speedup"] = point.speedup
    return panels


@dataclass
class SpeedupSlice:
    """One Figure-5 curve: speedup of IS-ASGD over a baseline across error-rate targets."""

    dataset: str
    num_workers: int
    baseline: str
    points: List[SpeedupPoint]

    @property
    def mean_speedup(self) -> Optional[float]:
        """Average of the defined speedups along the slice."""
        return average_speedup(self.points)


def figure5_data(
    runner: RecordSet,
    *,
    targets_per_slice: int = 12,
) -> List[SpeedupSlice]:
    """Error-rate → speedup slices of IS-ASGD over ASGD and over SGD (Figure 5)."""
    slices: List[SpeedupSlice] = []
    combos = sorted(
        {(r.dataset, r.num_workers) for r in runner.records if r.solver == "is_asgd"},
        key=lambda c: (c[0], c[1]),
    )
    for dataset, workers in combos:
        is_asgd = runner.get(dataset, "is_asgd", workers).curve
        for baseline in ("asgd", "sgd"):
            matches = runner.find(dataset=dataset, solver=baseline)
            if baseline == "asgd":
                matches = [m for m in matches if m.num_workers == workers]
            if not matches:
                continue
            base_curve = matches[0].curve
            points = speedup_slices(is_asgd, base_curve, count=targets_per_slice)
            slices.append(
                SpeedupSlice(dataset=dataset, num_workers=workers, baseline=baseline, points=points)
            )
    return slices


def headline_numbers(
    runner: RecordSet,
    *,
    panels4: Optional[List[FigurePanel]] = None,
    slices: Optional[List[SpeedupSlice]] = None,
) -> Dict[str, object]:
    """The Section-4.2 headline aggregates.

    Returns the range of optimum speedups (IS-ASGD reaching ASGD's optimum),
    the range of average speedups along the Figure-5 slices, the raw
    computational speedups over serial SGD, and the IS sampling overhead.
    Callers that already built the Figure 4 panels / Figure 5 slices from
    the same record set can pass them in to avoid recomputing.
    """
    optimum: List[float] = []
    averages_over_asgd: List[float] = []
    raw_over_sgd: List[float] = []
    sampling_overhead: List[float] = []

    for panel in panels4 if panels4 is not None else figure4_data(runner):
        speedup = panel.annotations.get("optimum_speedup")
        if speedup is not None:
            optimum.append(float(speedup))

    for sl in slices if slices is not None else figure5_data(runner):
        mean = sl.mean_speedup
        if mean is None:
            continue
        if sl.baseline == "asgd":
            averages_over_asgd.append(float(mean))
        elif sl.baseline == "sgd":
            raw_over_sgd.append(float(mean))

    for record in runner.records:
        if record.solver != "is_asgd" or record.trace is None:
            continue
        # Sampling overhead: relative extra time of pricing the run with vs
        # without the per-draw sampling cost.
        cost = runner.cost_model
        with_sampling = cost.trace_wall_clock(record.trace, record.num_workers, include_sampling=True)
        without = cost.trace_wall_clock(record.trace, record.num_workers, include_sampling=False)
        if without[-1] > 0:
            sampling_overhead.append(float(with_sampling[-1] / without[-1] - 1.0))

    def _range(values: Sequence[float]) -> Optional[Dict[str, float]]:
        if not values:
            return None
        return {"min": float(np.min(values)), "max": float(np.max(values)), "mean": float(np.mean(values))}

    return {
        "optimum_speedup_over_asgd": _range(optimum),
        "average_speedup_over_asgd": _range(averages_over_asgd),
        "raw_speedup_over_sgd": _range(raw_over_sgd),
        "is_sampling_overhead": _range(sampling_overhead),
        "paper_reference": {
            "optimum_speedup_over_asgd": (1.13, 1.54),
            "average_speedup_over_asgd": (1.26, 1.97),
            "raw_speedup_over_sgd_16_threads": (6.39, 12.29),
            "raw_speedup_over_sgd_44_threads": (11.89, 23.53),
            "is_sampling_overhead": (0.011, 0.077),
        },
    }


__all__ = [
    "FigurePanel",
    "SpeedupSlice",
    "figure3_data",
    "figure4_data",
    "figure5_data",
    "headline_numbers",
]
