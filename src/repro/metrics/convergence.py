"""Convergence-curve containers.

A :class:`ConvergenceCurve` stores, per recorded epoch, the iterative
x-axis (epoch index, cumulative iterations), the simulated wall-clock
x-axis and the two y-metrics the paper reports (RMSE and error rate).  The
class offers interpolation helpers ("when did the curve first reach value
v?") that the speedup computations of Figure 4/5 are built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.objectives.base import Objective
from repro.sparse.csr import CSRMatrix


@dataclass
class EpochMetrics:
    """Metrics recorded at the end of one epoch."""

    epoch: int
    iterations: int
    wall_clock: float
    rmse: float
    error_rate: float


@dataclass
class ConvergenceCurve:
    """A full training curve (one solver, one dataset, one concurrency)."""

    label: str = ""
    epochs: List[int] = field(default_factory=list)
    iterations: List[int] = field(default_factory=list)
    wall_clock: List[float] = field(default_factory=list)
    rmse: List[float] = field(default_factory=list)
    error_rate: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def append(self, record: EpochMetrics) -> None:
        """Append one epoch's metrics (epochs must arrive in order)."""
        if self.epochs and record.epoch <= self.epochs[-1]:
            raise ValueError("epochs must be appended in strictly increasing order")
        self.epochs.append(record.epoch)
        self.iterations.append(record.iterations)
        self.wall_clock.append(record.wall_clock)
        self.rmse.append(record.rmse)
        self.error_rate.append(record.error_rate)

    def __len__(self) -> int:
        return len(self.epochs)

    # ------------------------------------------------------------------ #
    @property
    def final_rmse(self) -> float:
        """RMSE at the last recorded epoch."""
        self._require_data()
        return float(self.rmse[-1])

    @property
    def final_error_rate(self) -> float:
        """Error rate at the last recorded epoch."""
        self._require_data()
        return float(self.error_rate[-1])

    @property
    def best_rmse(self) -> float:
        """Minimum RMSE reached anywhere on the curve."""
        self._require_data()
        return float(np.min(self.rmse))

    @property
    def best_error_rate(self) -> float:
        """The optimum: the lowest error rate reached anywhere on the curve."""
        self._require_data()
        return float(np.min(self.error_rate))

    @property
    def total_time(self) -> float:
        """Wall-clock of the full run."""
        self._require_data()
        return float(self.wall_clock[-1])

    def _require_data(self) -> None:
        if not self.epochs:
            raise ValueError("curve is empty")

    # ------------------------------------------------------------------ #
    def running_best(self, metric: str = "error_rate") -> np.ndarray:
        """The running minimum of a metric (the paper updates the error rate
        "once a better result is obtained", i.e. reports the running best)."""
        values = self._metric_values(metric)
        return np.minimum.accumulate(values)

    def _metric_values(self, metric: str) -> np.ndarray:
        if metric == "rmse":
            values = self.rmse
        elif metric == "error_rate":
            values = self.error_rate
        else:
            raise ValueError(f"unknown metric {metric!r} (use 'rmse' or 'error_rate')")
        self._require_data()
        return np.asarray(values, dtype=np.float64)

    def _axis_values(self, axis: str) -> np.ndarray:
        if axis == "wall_clock":
            values = self.wall_clock
        elif axis == "epochs":
            values = self.epochs
        elif axis == "iterations":
            values = self.iterations
        else:
            raise ValueError(f"unknown axis {axis!r}")
        return np.asarray(values, dtype=np.float64)

    def time_to_reach(
        self,
        target: float,
        *,
        metric: str = "error_rate",
        axis: str = "wall_clock",
    ) -> Optional[float]:
        """First axis-value at which the running-best metric reaches ``target``.

        Linear interpolation is applied between the two bracketing recorded
        points (matching the paper's "values are linearly interpolated when
        needed" for Figure 5).  Returns ``None`` when the curve never
        reaches ``target``.
        """
        best = self.running_best(metric)
        axis_vals = self._axis_values(axis)
        reached = np.nonzero(best <= target)[0]
        if reached.size == 0:
            return None
        k = int(reached[0])
        if k == 0:
            return float(axis_vals[0])
        prev_v, cur_v = best[k - 1], best[k]
        prev_x, cur_x = axis_vals[k - 1], axis_vals[k]
        if cur_v == prev_v:
            return float(cur_x)
        frac = (prev_v - target) / (prev_v - cur_v)
        frac = float(np.clip(frac, 0.0, 1.0))
        return float(prev_x + frac * (cur_x - prev_x))

    def value_at_time(self, t: float, *, metric: str = "error_rate") -> float:
        """Running-best metric value at wall-clock ``t`` (clamped to the curve ends)."""
        best = self.running_best(metric)
        times = self._axis_values("wall_clock")
        if t <= times[0]:
            return float(best[0])
        if t >= times[-1]:
            return float(best[-1])
        return float(np.interp(t, times, best))

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, list]:
        """Plain-dict representation (used by the report writer)."""
        return {
            "label": self.label,
            "epochs": list(self.epochs),
            "iterations": list(self.iterations),
            "wall_clock": list(self.wall_clock),
            "rmse": list(self.rmse),
            "error_rate": list(self.error_rate),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, list]) -> "ConvergenceCurve":
        """Inverse of :meth:`as_dict`."""
        curve = cls(label=payload.get("label", ""))
        for e, it, t, r, er in zip(
            payload["epochs"],
            payload["iterations"],
            payload["wall_clock"],
            payload["rmse"],
            payload["error_rate"],
        ):
            curve.append(EpochMetrics(epoch=e, iterations=it, wall_clock=t, rmse=r, error_rate=er))
        return curve


class MetricsRecorder:
    """Evaluates RMSE / error-rate snapshots during training.

    The recorder holds the evaluation data (by default the training set, as
    in the paper) and produces :class:`EpochMetrics` records given a model
    snapshot plus the solver's progress counters.

    Evaluation dispatches through a compute-kernel backend
    (:mod:`repro.kernels`): the default ``vectorized`` backend shares one
    batched matvec between the objective value and the error rate — the
    full-dataset evaluation is the dominant per-epoch cost, so this is the
    single biggest lever on end-to-end epoch time.
    """

    def __init__(
        self,
        objective: Objective,
        X: CSRMatrix,
        y: np.ndarray,
        *,
        label: str = "",
        kernel=None,
    ) -> None:
        if y.shape[0] != X.n_rows:
            raise ValueError("X and y row counts differ")
        from repro.kernels.registry import resolve_backend

        self.objective = objective
        self.X = X
        self.y = y
        self.kernel = resolve_backend(kernel)
        self.curve = ConvergenceCurve(label=label)

    def evaluate(self, weights: np.ndarray):
        """One full-dataset evaluation of ``weights`` (no curve mutation)."""
        return self.kernel.evaluate(self.objective, self.X, self.y, weights)

    def record(self, *, epoch: int, iterations: int, wall_clock: float, weights: np.ndarray) -> EpochMetrics:
        """Evaluate ``weights`` and append the metrics to the curve."""
        evaluation = self.evaluate(weights)
        metrics = EpochMetrics(
            epoch=epoch,
            iterations=iterations,
            wall_clock=wall_clock,
            rmse=evaluation.rmse,
            error_rate=evaluation.error_rate,
        )
        self.curve.append(metrics)
        return metrics


__all__ = ["EpochMetrics", "ConvergenceCurve", "MetricsRecorder"]
