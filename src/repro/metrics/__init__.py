"""Evaluation metrics and convergence bookkeeping.

The paper evaluates two metrics — "RMSE" (the square root of the objective
value) and the misclassification error rate — against two x-axes: epochs
(iterative convergence, Figure 3) and wall-clock seconds (absolute
convergence, Figure 4).  Figure 5 derives error-rate→speedup slices from
the absolute curves.  This package owns the curve container, the time-to-
target interpolation and the speedup computations that produce those
figures.
"""

from repro.metrics.convergence import ConvergenceCurve, EpochMetrics, MetricsRecorder
from repro.metrics.speedup import (
    SpeedupPoint,
    average_speedup,
    speedup_at_targets,
    speedup_slices,
    time_to_target,
)
from repro.metrics.tracing import RunRecord

__all__ = [
    "ConvergenceCurve",
    "EpochMetrics",
    "MetricsRecorder",
    "SpeedupPoint",
    "time_to_target",
    "speedup_at_targets",
    "speedup_slices",
    "average_speedup",
    "RunRecord",
]
