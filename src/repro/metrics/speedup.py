"""Speedup computations for the absolute-convergence comparison.

Figure 4 marks the wall-clock at which IS-ASGD reaches the *optimum* (best
error rate) achieved by ASGD; Figure 5 generalises this into full
error-rate→speedup slices for every concurrency.  Both reduce to the same
primitive: the ratio of the times two curves need to reach the same target
value, with linear interpolation between recorded epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.metrics.convergence import ConvergenceCurve


@dataclass
class SpeedupPoint:
    """Speedup of ``fast`` over ``slow`` at one target metric value."""

    target: float
    time_fast: Optional[float]
    time_slow: Optional[float]

    @property
    def speedup(self) -> Optional[float]:
        """``time_slow / time_fast`` or ``None`` when either curve never reaches the target."""
        if self.time_fast is None or self.time_slow is None or self.time_fast <= 0.0:
            return None
        return self.time_slow / self.time_fast


def time_to_target(curve: ConvergenceCurve, target: float, *, metric: str = "error_rate") -> Optional[float]:
    """Wall-clock at which ``curve`` first reaches ``target`` (running best, interpolated)."""
    return curve.time_to_reach(target, metric=metric, axis="wall_clock")


def speedup_at_targets(
    fast: ConvergenceCurve,
    slow: ConvergenceCurve,
    targets: Sequence[float],
    *,
    metric: str = "error_rate",
) -> List[SpeedupPoint]:
    """Speedup of ``fast`` over ``slow`` at every target value in ``targets``."""
    points = []
    for target in targets:
        points.append(
            SpeedupPoint(
                target=float(target),
                time_fast=time_to_target(fast, float(target), metric=metric),
                time_slow=time_to_target(slow, float(target), metric=metric),
            )
        )
    return points


def reachable_targets(
    curves: Sequence[ConvergenceCurve],
    *,
    metric: str = "error_rate",
    count: int = 12,
    margin: float = 1e-9,
) -> np.ndarray:
    """Grid of target values every curve in ``curves`` actually reaches.

    The grid spans from just below the worst starting value down to the best
    value reached by *all* curves, so every produced target yields a finite
    speedup.  Values are returned in decreasing-difficulty order (largest
    first), matching the x-axes of Figure 5.
    """
    if not curves:
        raise ValueError("need at least one curve")
    best_common = max(c.best_error_rate if metric == "error_rate" else c.best_rmse for c in curves)
    starts = [float(c.running_best(metric)[0]) for c in curves]
    start_common = min(starts)
    lo = best_common + margin
    hi = max(start_common, lo * 1.0000001)
    if hi <= lo:
        return np.asarray([lo])
    return np.linspace(hi, lo, count)


def speedup_slices(
    fast: ConvergenceCurve,
    slow: ConvergenceCurve,
    *,
    metric: str = "error_rate",
    count: int = 12,
) -> List[SpeedupPoint]:
    """The Figure-5 slice: speedups of ``fast`` over ``slow`` across the whole error-rate range."""
    targets = reachable_targets([fast, slow], metric=metric, count=count)
    return speedup_at_targets(fast, slow, targets, metric=metric)


def average_speedup(points: Sequence[SpeedupPoint]) -> Optional[float]:
    """Mean of the defined speedups in ``points`` (None when none are defined)."""
    values = [p.speedup for p in points if p.speedup is not None]
    if not values:
        return None
    return float(np.mean(values))


def optimum_speedup(
    fast: ConvergenceCurve,
    slow: ConvergenceCurve,
    *,
    metric: str = "error_rate",
) -> SpeedupPoint:
    """The paper's headline comparison: time for ``fast`` to reach ``slow``'s optimum.

    The target is the best (lowest) value the *slow* curve ever achieves —
    the red-circle / blue-dot pair of Figure 4.
    """
    target = slow.best_error_rate if metric == "error_rate" else slow.best_rmse
    return SpeedupPoint(
        target=float(target),
        time_fast=time_to_target(fast, float(target), metric=metric),
        time_slow=time_to_target(slow, float(target), metric=metric),
    )


__all__ = [
    "SpeedupPoint",
    "time_to_target",
    "speedup_at_targets",
    "reachable_targets",
    "speedup_slices",
    "average_speedup",
    "optimum_speedup",
]
