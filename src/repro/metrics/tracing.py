"""Run-level records tying together configuration, curves and traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.async_engine.events import ExecutionTrace
from repro.metrics.convergence import ConvergenceCurve


def _jsonable(value: Any) -> Tuple[bool, Any]:
    """Coerce ``value`` into a JSON-serializable equivalent.

    Returns ``(ok, converted)``; numpy scalars become Python scalars,
    numpy arrays and (possibly nested) sequences become lists, and
    anything irreducible reports ``ok=False`` so the caller can drop it
    loudly instead of failing the whole dump.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return True, value
    if isinstance(value, (np.integer,)):
        return True, int(value)
    if isinstance(value, (np.floating,)):
        return True, float(value)
    if isinstance(value, np.bool_):
        return True, bool(value)
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, (list, tuple)):
        out = []
        for item in value:
            ok, converted = _jsonable(item)
            if not ok:
                return False, None
            out.append(converted)
        return True, out
    if isinstance(value, dict):
        out_d = {}
        for key, item in value.items():
            ok, converted = _jsonable(item)
            if not ok or not isinstance(key, str):
                return False, None
            out_d[key] = converted
        return True, out_d
    return False, None


@dataclass
class RunRecord:
    """Everything produced by one training run.

    Attributes
    ----------
    solver:
        Solver name (``"sgd"``, ``"asgd"``, ``"is_asgd"``, ``"svrg_asgd"``...).
    dataset:
        Dataset name.
    num_workers:
        Concurrency used (1 for serial solvers).
    curve:
        The convergence curve.
    trace:
        The execution trace (``None`` for serial solvers that do not go
        through the asynchronous engine).
    info:
        Free-form extra data (balancing decision, ρ, ψ, timings, ...).
    """

    solver: str
    dataset: str
    num_workers: int
    curve: ConvergenceCurve
    trace: Optional[ExecutionTrace] = None
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Human-readable identifier of the run."""
        return f"{self.solver}[{self.dataset}, T={self.num_workers}]"

    def summary(self) -> Dict[str, Any]:
        """Flat summary row used by reports."""
        row: Dict[str, Any] = {
            "solver": self.solver,
            "dataset": self.dataset,
            "num_workers": self.num_workers,
            "epochs": len(self.curve),
            "final_rmse": self.curve.final_rmse,
            "best_error_rate": self.curve.best_error_rate,
            "total_time": self.curve.total_time,
        }
        if self.trace is not None:
            row["conflict_rate"] = self.trace.conflict_rate()
            row["iterations"] = self.trace.total_iterations
        for key, value in self.info.items():
            if isinstance(value, (int, float, str, bool, np.integer, np.floating)):
                row[key] = value
        return row

    # ------------------------------------------------------------------ #
    # JSON round-trip (the artifact store's on-disk format)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (inverse of :meth:`from_dict`).

        The curve and trace round-trip losslessly (including the measured
        wall-clock axis and the ``history_overflows`` counters).  ``info``
        entries that cannot be represented in JSON (e.g. live objects) are
        dropped and their keys recorded under ``"_dropped_info"`` so the
        loss is visible rather than silent.
        """
        info: Dict[str, Any] = {}
        dropped = []
        for key, value in self.info.items():
            ok, converted = _jsonable(value)
            if ok:
                info[key] = converted
            else:
                dropped.append(key)
        payload: Dict[str, Any] = {
            "solver": self.solver,
            "dataset": self.dataset,
            "num_workers": int(self.num_workers),
            "curve": self.curve.as_dict(),
            "trace": self.trace.to_dict() if self.trace is not None else None,
            "info": info,
        }
        if dropped:
            payload["_dropped_info"] = sorted(dropped)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        trace = payload.get("trace")
        return cls(
            solver=payload["solver"],
            dataset=payload["dataset"],
            num_workers=int(payload["num_workers"]),
            curve=ConvergenceCurve.from_dict(payload["curve"]),
            trace=ExecutionTrace.from_dict(trace) if trace is not None else None,
            info=dict(payload.get("info", {})),
        )


__all__ = ["RunRecord"]
