"""Run-level records tying together configuration, curves and traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.async_engine.events import ExecutionTrace
from repro.metrics.convergence import ConvergenceCurve


@dataclass
class RunRecord:
    """Everything produced by one training run.

    Attributes
    ----------
    solver:
        Solver name (``"sgd"``, ``"asgd"``, ``"is_asgd"``, ``"svrg_asgd"``...).
    dataset:
        Dataset name.
    num_workers:
        Concurrency used (1 for serial solvers).
    curve:
        The convergence curve.
    trace:
        The execution trace (``None`` for serial solvers that do not go
        through the asynchronous engine).
    info:
        Free-form extra data (balancing decision, ρ, ψ, timings, ...).
    """

    solver: str
    dataset: str
    num_workers: int
    curve: ConvergenceCurve
    trace: Optional[ExecutionTrace] = None
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Human-readable identifier of the run."""
        return f"{self.solver}[{self.dataset}, T={self.num_workers}]"

    def summary(self) -> Dict[str, Any]:
        """Flat summary row used by reports."""
        row: Dict[str, Any] = {
            "solver": self.solver,
            "dataset": self.dataset,
            "num_workers": self.num_workers,
            "epochs": len(self.curve),
            "final_rmse": self.curve.final_rmse,
            "best_error_rate": self.curve.best_error_rate,
            "total_time": self.curve.total_time,
        }
        if self.trace is not None:
            row["conflict_rate"] = self.trace.conflict_rate()
            row["iterations"] = self.trace.total_iterations
        for key, value in self.info.items():
            if isinstance(value, (int, float, str, bool, np.integer, np.floating)):
                row[key] = value
        return row


__all__ = ["RunRecord"]
