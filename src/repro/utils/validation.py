"""Argument-validation helpers shared by the public API.

All validators raise ``ValueError``/``TypeError`` with messages that name
the offending argument, so failures surface at the API boundary rather
than deep inside a numeric kernel.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative when ``strict=False``)."""
    value = float(value)
    if strict and not value > 0.0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    *,
    low: float = -np.inf,
    high: float = np.inf,
    inclusive: bool = True,
) -> float:
    """Validate that ``low <= value <= high`` (or strict inequalities)."""
    value = float(value)
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        op = "<=" if inclusive else "<"
        raise ValueError(f"{name} must satisfy {low} {op} {name} {op} {high}, got {value!r}")
    return value


def check_array_1d(
    arr,
    name: str,
    *,
    dtype=np.float64,
    min_len: int = 0,
    finite: bool = True,
) -> np.ndarray:
    """Coerce ``arr`` to a contiguous 1-D array and validate basic sanity."""
    out = np.ascontiguousarray(arr, dtype=dtype)
    if out.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {out.shape}")
    if out.shape[0] < min_len:
        raise ValueError(f"{name} must have at least {min_len} entries, got {out.shape[0]}")
    if finite and out.size and not np.all(np.isfinite(out)):
        raise ValueError(f"{name} contains non-finite values")
    return out


def check_same_length(name_a: str, a, name_b: str, b) -> None:
    """Validate two sequences have matching length."""
    if len(a) != len(b):
        raise ValueError(f"{name_a} and {name_b} must have the same length, got {len(a)} != {len(b)}")


def check_probability_vector(p, name: str = "p", *, atol: float = 1e-8) -> np.ndarray:
    """Validate that ``p`` is a non-negative vector summing to one."""
    out = check_array_1d(p, name, dtype=np.float64, min_len=1)
    if np.any(out < -atol):
        raise ValueError(f"{name} contains negative entries")
    total = float(out.sum())
    if not np.isclose(total, 1.0, atol=atol, rtol=0.0):
        raise ValueError(f"{name} must sum to 1 (got {total!r})")
    # Clean tiny negatives introduced by floating point noise.
    out = np.clip(out, 0.0, None)
    return out / out.sum()


def check_labels_pm1(y, name: str = "y") -> np.ndarray:
    """Validate binary labels encoded as -1/+1 (the encoding used throughout)."""
    out = check_array_1d(y, name, dtype=np.float64, min_len=1)
    values = np.unique(out)
    if not np.all(np.isin(values, (-1.0, 1.0))):
        raise ValueError(f"{name} must only contain -1/+1 labels, found values {values[:8]}")
    return out


def check_index_array(idx, name: str, *, upper: Optional[int] = None) -> np.ndarray:
    """Validate an integer index array (non-negative, optionally bounded)."""
    out = np.ascontiguousarray(idx, dtype=np.int64)
    if out.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {out.shape}")
    if out.size and out.min() < 0:
        raise ValueError(f"{name} contains negative indices")
    if upper is not None and out.size and out.max() >= upper:
        raise ValueError(f"{name} contains indices >= {upper}")
    return out


__all__ = [
    "check_positive",
    "check_in_range",
    "check_array_1d",
    "check_same_length",
    "check_probability_vector",
    "check_labels_pm1",
    "check_index_array",
]
