"""Deterministic random-number-generation helpers.

Every stochastic component of the library (samplers, dataset generators,
asynchronous schedulers) accepts either an integer seed, ``None`` or an
existing :class:`numpy.random.Generator`.  :func:`as_rng` normalises all
three into a :class:`numpy.random.Generator` so that experiments are
reproducible end-to-end from a single seed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: The union of things we accept wherever a source of randomness is needed.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence`` or an
        already constructed ``Generator`` (returned unchanged).

    Examples
    --------
    >>> g1 = as_rng(123)
    >>> g2 = as_rng(123)
    >>> float(g1.random()) == float(g2.random())
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    This is the canonical way to hand an independent stream to each
    simulated worker so that changing the number of workers does not
    silently correlate their sample sequences.

    Parameters
    ----------
    seed:
        Master seed (any :data:`RandomState`).
    count:
        Number of child generators, must be non-negative.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Generators cannot be split deterministically; derive children from
        # integers drawn from the parent stream instead.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(count)]


def derive_seed(seed: RandomState, *tags: int) -> int:
    """Derive a reproducible integer sub-seed from ``seed`` and ``tags``.

    Useful when a component needs to create a named stream (e.g. worker 3 of
    run 7) without consuming randomness from the parent generator.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**31 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.generate_state(1)[0])
    elif seed is None:
        base = int(np.random.SeedSequence().generate_state(1)[0])
    else:
        base = int(seed)
    mix = np.random.SeedSequence([base, *[int(t) for t in tags]])
    return int(mix.generate_state(1)[0])


def permutation(rng: RandomState, n: int) -> np.ndarray:
    """Return a random permutation of ``range(n)`` as an int64 array."""
    return as_rng(rng).permutation(n).astype(np.int64)


def sample_without_replacement(rng: RandomState, n: int, k: int) -> np.ndarray:
    """Sample ``k`` distinct indices from ``range(n)``."""
    if k > n:
        raise ValueError(f"cannot sample {k} items from a population of {n}")
    return as_rng(rng).choice(n, size=k, replace=False).astype(np.int64)


__all__ = [
    "RandomState",
    "as_rng",
    "spawn_rngs",
    "derive_seed",
    "permutation",
    "sample_without_replacement",
]
