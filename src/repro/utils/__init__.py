"""Small shared utilities used across the :mod:`repro` package.

The helpers here deliberately have no dependency on the rest of the
library so that every other sub-package may import them freely without
creating circular imports.
"""

from repro.utils.rng import RandomState, as_rng, spawn_rngs
from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_array_1d,
    check_in_range,
    check_positive,
    check_probability_vector,
    check_same_length,
)
from repro.utils.logging import get_logger

__all__ = [
    "RandomState",
    "as_rng",
    "spawn_rngs",
    "Timer",
    "timed",
    "check_array_1d",
    "check_in_range",
    "check_positive",
    "check_probability_vector",
    "check_same_length",
    "get_logger",
]
