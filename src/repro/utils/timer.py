"""Lightweight wall-clock timing helpers.

These are used to calibrate the simulated cost model against real measured
per-operation costs and to report benchmark times in the experiment
harness.  They intentionally mirror the profiling-first workflow of the
scientific-Python optimisation guide: measure, then optimise.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass
class Timer:
    """Accumulating stopwatch.

    A :class:`Timer` can be started and stopped repeatedly; it accumulates
    the total elapsed time and the number of laps, which makes it suitable
    for timing the body of a training loop without allocating per-iteration
    objects.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.laps
    1
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: int = 0
    _started: Optional[float] = field(default=None, repr=False)

    def start(self) -> "Timer":
        """Start (or restart) the stopwatch; raises if already running."""
        if self._started is not None:
            raise RuntimeError("Timer is already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the duration of this lap."""
        if self._started is None:
            raise RuntimeError("Timer is not running")
        lap = time.perf_counter() - self._started
        self._started = None
        self.elapsed += lap
        self.laps += 1
        return lap

    def reset(self) -> None:
        """Zero the accumulated time and lap count."""
        self.elapsed = 0.0
        self.laps = 0
        self._started = None

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently started."""
        return self._started is not None

    @property
    def mean_lap(self) -> float:
        """Average lap duration (0.0 when no lap has completed)."""
        return self.elapsed / self.laps if self.laps else 0.0

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@contextmanager
def timed(store: Dict[str, float], key: str) -> Iterator[None]:
    """Context manager that adds the elapsed seconds of its block to ``store[key]``.

    Parameters
    ----------
    store:
        Mutable mapping collecting named timings.
    key:
        Name under which to accumulate the elapsed time.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        store[key] = store.get(key, 0.0) + (time.perf_counter() - start)


def measure_call(fn: Callable[[], object], repeats: int = 5, warmup: int = 1) -> float:
    """Return the best-of-``repeats`` wall-clock time of calling ``fn()``.

    The minimum over repeats is the standard robust estimator for
    micro-benchmarks because interference only ever adds time.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(max(0, warmup)):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass
class StageTimings:
    """Named per-stage timing report for a training run."""

    stages: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` under ``name``."""
        self.stages[name] = self.stages.get(name, 0.0) + float(seconds)

    @property
    def total(self) -> float:
        """Sum of all recorded stage durations."""
        return float(sum(self.stages.values()))

    def as_rows(self) -> List[tuple]:
        """Return ``(name, seconds, fraction)`` rows sorted by cost."""
        total = self.total or 1.0
        rows = [(k, v, v / total) for k, v in self.stages.items()]
        rows.sort(key=lambda r: -r[1])
        return rows


__all__ = ["Timer", "timed", "measure_call", "StageTimings"]
