"""Logging configuration for the library.

The library never configures the root logger; it only attaches a
``NullHandler`` to its own namespace so that applications embedding it can
decide how (and whether) messages are emitted.  :func:`enable_console_logging`
is a convenience for the example scripts and the benchmark harness.
"""

from __future__ import annotations

import logging
from typing import Optional

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger inside the ``repro`` namespace.

    Parameters
    ----------
    name:
        Optional suffix; ``get_logger("solvers")`` returns the logger
        ``repro.solvers``.  ``None`` returns the package root logger.
    """
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stream handler to the package logger (idempotent).

    Returns the handler so callers (mostly tests) can remove it again.
    """
    logger = logging.getLogger(_ROOT_NAME)
    for handler in logger.handlers:
        if isinstance(handler, logging.StreamHandler) and getattr(handler, "_repro_console", False):
            handler.setLevel(level)
            logger.setLevel(level)
            return handler
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("[%(levelname)s] %(name)s: %(message)s"))
    handler.setLevel(level)
    handler._repro_console = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler


def disable_console_logging() -> None:
    """Remove any console handler previously added by :func:`enable_console_logging`."""
    logger = logging.getLogger(_ROOT_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_console", False):
            logger.removeHandler(handler)


__all__ = ["get_logger", "enable_console_logging", "disable_console_logging"]
