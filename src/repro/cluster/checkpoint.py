"""Shard-consistent checkpoints of a cluster run.

Fault tolerance of the process tier rests on one invariant: at every epoch
barrier the shared-memory arena is *quiescent* — every worker sits at the
next release barrier, no lock-free write is in flight — so the driver can
take a consistent cut of the whole run:

* the flat parameter buffer (stored in **global** coordinate order, so it
  remaps bit-identically onto any :class:`~repro.cluster.sharding.ShardPlan`
  of the same dimension — dynamic re-sharding on membership changes is a
  pure permutation, see :func:`repro.cluster.sharding.remap_flat`);
* per-rule shared state (SAGA's coefficient table and running average;
  SVRG's snapshot blocks are *recomputed* from the weights at every epoch
  start and need no extra state);
* the sampler stream (the seed root plus the per-worker seeds of the next
  epoch — each worker's per-epoch sequence is derived from
  ``(seed_root, worker_id, epoch)`` alone, so a resumed fleet replays the
  exact same draws whatever its size);
* the measured counters folded so far (the
  :class:`~repro.async_engine.events.ExecutionTrace` and the per-epoch
  seconds/delay/skew series).

:class:`CheckpointStore` persists checkpoints as content-addressed JSON in
the PR 4 artifact-store idiom — the filename is derived from the run's
*identity* (data digest, objective, rule, step size, seed — deliberately
**excluding** cluster membership) plus the epoch, and writes are atomic
(:func:`repro.experiments.store.atomic_write_json`), so a run killed
mid-checkpoint never leaves a half-artifact.  Arrays are encoded as
base64 of their raw bytes: restore is bit-exact, not merely close.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.async_engine.events import ExecutionTrace

#: On-disk checkpoint schema version (bump on incompatible layout changes).
CHECKPOINT_FORMAT_VERSION = 1


def encode_array(array: np.ndarray) -> Dict[str, Any]:
    """JSON-safe bit-exact encoding of a NumPy array (dtype, shape, base64)."""
    arr = np.ascontiguousarray(array)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(payload: Dict[str, Any]) -> np.ndarray:
    """Invert :func:`encode_array` (returns a fresh writable array)."""
    raw = base64.b64decode(payload["data"])
    arr = np.frombuffer(raw, dtype=payload["dtype"]).reshape(payload["shape"])
    return arr.copy()


@dataclass
class ClusterCheckpoint:
    """One shard-consistent cut of a cluster run after ``epoch`` epochs.

    Attributes
    ----------
    identity:
        The run identity dict the checkpoint is keyed by (see
        :meth:`repro.cluster.driver.ClusterDriver.checkpoint_identity`).
        Membership (worker/shard counts) is *not* part of the identity, so
        a checkpoint written at one fleet size resumes at any other.
    epoch:
        Number of *completed* epochs the checkpoint represents.
    weights:
        Parameter vector in global coordinate order (layout-independent).
    rule:
        Update-rule registry name of the run.
    rule_state:
        Rule-specific shared state, all arrays in global coordinate order
        where layout applies (SAGA: ``saga_coefs``, ``saga_avg``; empty for
        rules whose epoch state is derived from the weights).
    sampler:
        ``{"seed_root": int, "next_epoch_seeds": [int, ...]}`` — the
        deterministic sampler stream position.
    counters:
        Cumulative measured counter totals at the cut (column layout of
        :mod:`repro.cluster.worker`), folded over workers so the record
        survives membership changes.
    shard_write_totals:
        Cumulative per-shard coordinate-write totals at the cut.
    trace:
        The measured :class:`ExecutionTrace` of the completed epochs.
    """

    identity: Dict[str, Any]
    epoch: int
    num_workers: int
    num_shards: int
    shard_scheme: str
    weights: np.ndarray
    rule: str
    rule_state: Dict[str, np.ndarray] = field(default_factory=dict)
    sampler: Dict[str, Any] = field(default_factory=dict)
    counters: Optional[np.ndarray] = None
    shard_write_totals: Optional[np.ndarray] = None
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    epoch_seconds: List[float] = field(default_factory=list)
    epoch_mean_delay: List[float] = field(default_factory=list)
    epoch_occupancy_skew: List[float] = field(default_factory=list)
    epoch_steals: List[int] = field(default_factory=list)
    epoch_weights: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (arrays bit-exact via :func:`encode_array`)."""
        return {
            "identity": self.identity,
            "epoch": int(self.epoch),
            "num_workers": int(self.num_workers),
            "num_shards": int(self.num_shards),
            "shard_scheme": self.shard_scheme,
            "weights": encode_array(self.weights),
            "rule": self.rule,
            "rule_state": {k: encode_array(v) for k, v in self.rule_state.items()},
            "sampler": self.sampler,
            "counters": encode_array(self.counters) if self.counters is not None else None,
            "shard_write_totals": (
                encode_array(self.shard_write_totals)
                if self.shard_write_totals is not None else None
            ),
            "trace": self.trace.to_dict(),
            "epoch_seconds": [float(s) for s in self.epoch_seconds],
            "epoch_mean_delay": [float(s) for s in self.epoch_mean_delay],
            "epoch_occupancy_skew": [float(s) for s in self.epoch_occupancy_skew],
            "epoch_steals": [int(s) for s in self.epoch_steals],
            "epoch_weights": (
                [encode_array(w) for w in self.epoch_weights]
                if self.epoch_weights is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ClusterCheckpoint":
        """Rebuild a checkpoint from :meth:`to_dict` output."""
        return cls(
            identity=dict(payload["identity"]),
            epoch=int(payload["epoch"]),
            num_workers=int(payload["num_workers"]),
            num_shards=int(payload["num_shards"]),
            shard_scheme=payload["shard_scheme"],
            weights=decode_array(payload["weights"]),
            rule=payload["rule"],
            rule_state={k: decode_array(v) for k, v in payload["rule_state"].items()},
            sampler=dict(payload["sampler"]),
            counters=(
                decode_array(payload["counters"])
                if payload.get("counters") is not None else None
            ),
            shard_write_totals=(
                decode_array(payload["shard_write_totals"])
                if payload.get("shard_write_totals") is not None else None
            ),
            trace=ExecutionTrace.from_dict(payload["trace"]),
            epoch_seconds=list(payload.get("epoch_seconds", [])),
            epoch_mean_delay=list(payload.get("epoch_mean_delay", [])),
            epoch_occupancy_skew=list(payload.get("epoch_occupancy_skew", [])),
            epoch_steals=[int(s) for s in payload.get("epoch_steals", [])],
            epoch_weights=(
                [decode_array(w) for w in payload["epoch_weights"]]
                if payload.get("epoch_weights") is not None else None
            ),
        )

    def copy(self) -> "ClusterCheckpoint":
        """A deep, independent copy (the driver's in-memory checkpoint)."""
        return ClusterCheckpoint.from_dict(self.to_dict())


class CheckpointStore:
    """A directory of per-epoch cluster checkpoints, keyed by run identity.

    Filenames are ``ckpt-<identity sha256 prefix>-ep<epoch>.json``; every
    file also embeds the full identity dict, which :meth:`load` verifies —
    a truncated-digest collision can therefore never resume the wrong run.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    @staticmethod
    def identity_prefix(identity: Dict[str, Any]) -> str:
        """Filename-stable digest prefix of a run identity."""
        from repro.experiments.store import identity_key

        return identity_key(identity)[:40]

    def path_for(self, identity: Dict[str, Any], epoch: int) -> Path:
        """The checkpoint path of ``identity`` at ``epoch``."""
        return self.root / f"ckpt-{self.identity_prefix(identity)}-ep{int(epoch):06d}.json"

    def epochs(self, identity: Dict[str, Any]) -> List[int]:
        """Completed-epoch counts with a stored checkpoint, ascending."""
        if not self.root.is_dir():
            return []
        prefix = f"ckpt-{self.identity_prefix(identity)}-ep"
        found = []
        for path in self.root.glob(f"{prefix}*.json"):
            try:
                found.append(int(path.stem[len(prefix):]))
            except ValueError:  # pragma: no cover - foreign file
                continue
        return sorted(found)

    # ------------------------------------------------------------------ #
    def save(self, checkpoint: ClusterCheckpoint) -> Path:
        """Persist one checkpoint atomically; returns the artifact path."""
        from repro.experiments.store import atomic_write_json

        entry = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "checkpoint": checkpoint.to_dict(),
        }
        return atomic_write_json(
            self.path_for(checkpoint.identity, checkpoint.epoch), entry
        )

    def load(self, identity: Dict[str, Any], epoch: int) -> ClusterCheckpoint:
        """Load and validate the checkpoint of ``identity`` at ``epoch``."""
        path = self.path_for(identity, epoch)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"checkpoint {path} is missing or corrupt: {exc}") from exc
        version = entry.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"checkpoint {path} has format_version {version!r}, "
                f"expected {CHECKPOINT_FORMAT_VERSION}"
            )
        checkpoint = ClusterCheckpoint.from_dict(entry["checkpoint"])
        if checkpoint.identity != identity:
            raise ValueError(
                f"checkpoint {path} belongs to a different run identity"
            )
        return checkpoint

    def latest(
        self, identity: Dict[str, Any], *, max_epoch: Optional[int] = None
    ) -> Optional[ClusterCheckpoint]:
        """The newest stored checkpoint of ``identity`` (or ``None``).

        ``max_epoch`` bounds the search — resuming a 4-epoch run ignores
        checkpoints a longer earlier run may have written past epoch 4.
        """
        candidates = self.epochs(identity)
        if max_epoch is not None:
            candidates = [e for e in candidates if e <= max_epoch]
        if not candidates:
            return None
        return self.load(identity, candidates[-1])

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return len(list(self.root.glob("ckpt-*.json")))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({str(self.root)!r}, checkpoints={len(self)})"


__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "ClusterCheckpoint",
    "CheckpointStore",
    "encode_array",
    "decode_array",
]
