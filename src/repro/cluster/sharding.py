"""Coordinate shard planning for the parameter-server cluster.

The cluster partitions the *weight vector* (not the samples — that is
:mod:`repro.core.partition`'s job) into ``num_shards`` coordinate shards,
each of which lives in its own region of the shared-memory parameter
buffer.  A :class:`ShardPlan` owns the mapping in both directions:

* ``shard_of[coord]`` — which shard a model coordinate belongs to (drives
  the per-shard write-occupancy accounting of the cluster cost model);
* ``flat_of[coord]`` — where the coordinate sits in the *flat layout*, the
  concatenation of all shards that backs the shared parameter buffer.
  Range plans keep the identity layout (shard ``s`` is the contiguous
  coordinate range ``[offsets[s], offsets[s+1])``); coloring plans permute
  coordinates so each shard is still one contiguous flat slice.

Two planners ship:

* :func:`range_shard_plan` — equal contiguous coordinate ranges, the
  classical parameter-server layout (default);
* :func:`coloring_shard_plan` — conflict-aware: the *feature* conflict
  graph (two coordinates conflict when they co-occur in some sample's
  support, i.e. one lock-free update writes both) is coloured through
  :mod:`repro.graph` on the transposed design matrix, and colour classes
  are mapped to shards so that, whenever ``num_shards`` allows it,
  conflicting coordinates land in *distinct* shards.  Updates then spread
  across shards instead of hammering one, which is exactly the occupancy
  skew the cluster cost model prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.sparse.csr import CSRMatrix


@dataclass
class ShardPlan:
    """A partition of ``dim`` model coordinates into contiguous flat shards.

    Attributes
    ----------
    dim:
        Number of model coordinates.
    shard_of:
        ``int64[dim]`` — shard id of every coordinate.
    offsets:
        ``int64[num_shards + 1]`` — shard boundaries in the flat layout;
        shard ``s`` occupies ``flat[offsets[s]:offsets[s+1]]``.
    flat_of:
        ``int64[dim]`` mapping coordinate → flat position, or ``None`` for
        the identity layout (range sharding).
    scheme:
        ``"range"`` or ``"coloring"`` (used by reports/info dicts).
    """

    dim: int
    shard_of: np.ndarray
    offsets: np.ndarray
    flat_of: Optional[np.ndarray] = None
    scheme: str = "range"

    def __post_init__(self) -> None:
        self.shard_of = np.ascontiguousarray(self.shard_of, dtype=np.int64)
        self.offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        if self.flat_of is not None:
            self.flat_of = np.ascontiguousarray(self.flat_of, dtype=np.int64)
            if self.flat_of.shape != (self.dim,):
                raise ValueError("flat_of must have one entry per coordinate")
        if self.shard_of.shape != (self.dim,):
            raise ValueError("shard_of must have one entry per coordinate")
        if self.offsets[0] != 0 or self.offsets[-1] != self.dim:
            raise ValueError("offsets must span [0, dim]")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")

    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """Number of coordinate shards."""
        return int(self.offsets.size - 1)

    def shard_sizes(self) -> np.ndarray:
        """Coordinates per shard."""
        return np.diff(self.offsets)

    def to_flat(self, coords: np.ndarray) -> np.ndarray:
        """Map global coordinate indices into the flat (sharded) layout."""
        if self.flat_of is None:
            return coords
        return self.flat_of[coords]

    def unflatten(self, flat_values: np.ndarray) -> np.ndarray:
        """Re-order a flat-layout vector back into global coordinate order."""
        if self.flat_of is None:
            return flat_values.copy()
        return flat_values[self.flat_of]

    def flatten_vector(self, values: np.ndarray) -> np.ndarray:
        """Re-order a global-layout vector into the flat (sharded) layout."""
        if self.flat_of is None:
            return np.ascontiguousarray(values, dtype=np.float64).copy()
        out = np.empty(self.dim, dtype=np.float64)
        out[self.flat_of] = values
        return out

    def shard_entry_counts(self, coords: np.ndarray) -> np.ndarray:
        """How many of ``coords`` (repeats allowed) fall in each shard."""
        if coords.size == 0:
            return np.zeros(self.num_shards, dtype=np.int64)
        return np.bincount(self.shard_of[coords], minlength=self.num_shards)

    def max_shard_fraction(self) -> float:
        """Largest shard's share of the coordinates (layout imbalance)."""
        if self.dim == 0:
            return 0.0
        return float(self.shard_sizes().max()) / float(self.dim)


def range_shard_plan(dim: int, num_shards: int) -> ShardPlan:
    """Equal contiguous coordinate ranges (identity flat layout)."""
    if dim <= 0:
        raise ValueError("dim must be positive")
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    num_shards = min(num_shards, dim)
    offsets = np.linspace(0, dim, num_shards + 1).astype(np.int64)
    shard_of = np.repeat(np.arange(num_shards, dtype=np.int64), np.diff(offsets))
    return ShardPlan(dim=dim, shard_of=shard_of, offsets=offsets, flat_of=None, scheme="range")


def feature_coloring(X: CSRMatrix, *, max_features: int = 2000) -> Dict[int, int]:
    """Greedy colouring of the *feature* conflict graph of ``X``.

    Two features conflict when they co-occur in at least one sample, i.e.
    one index-compressed update writes both.  The colouring is computed by
    :func:`repro.graph.coloring.greedy_conflict_coloring` on the transposed
    matrix — rows of ``X.T`` are features and two rows of ``X.T`` share a
    column exactly when the features co-occur in a sample of ``X``.

    The exact conflict graph is quadratic in the worst case, so for more
    than ``max_features`` features only the ``max_features`` *hottest*
    (highest column occupancy — the coordinates that cause nearly all
    lock-free conflicts) are coloured exactly; the remaining cold features
    are absent from the returned mapping and the planner places them
    best-effort.
    """
    from repro.graph.coloring import greedy_conflict_coloring

    Xt = X.transpose()
    if X.n_cols <= max_features:
        return greedy_conflict_coloring(Xt, max_rows=max_features)

    # Restrict the graph to the hottest features: rows of X.T gathered into
    # a smaller feature-by-sample matrix (O(nnz), never quadratic).
    occupancy = X.column_nnz()
    hot = np.sort(np.argsort(occupancy, kind="stable")[-max_features:])
    idx, val, lengths = Xt.gather_rows(hot)
    indptr = np.zeros(hot.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    hot_matrix = CSRMatrix(data=val, indices=idx, indptr=indptr, n_cols=Xt.n_cols)
    sub_coloring = greedy_conflict_coloring(hot_matrix, max_rows=max_features)
    return {int(hot[row]): color for row, color in sub_coloring.items()}


def coloring_shard_plan(
    X: CSRMatrix,
    num_shards: int,
    *,
    max_features: int = 2000,
) -> ShardPlan:
    """Conflict-aware shard plan from the feature-conflict-graph colouring.

    Colour classes never contain two conflicting coordinates, so they are
    the safe units of placement: when ``num_shards >= num_colors`` every
    colour class gets its own shard (large classes are further *split* —
    splitting a class is always safe — until all shards are used), which
    guarantees that any two conflicting coordinates live in distinct
    shards.  The guarantee degrades to best-effort in two documented
    cases: when the graph needs more colours than there are shards
    (classes are folded round-robin), and for coordinates beyond the
    ``max_features`` hottest on very wide problems (only the hot
    sub-graph is coloured exactly — see :func:`feature_coloring`; cold
    coordinates are spread round-robin for balance).
    """
    d = X.n_cols
    if d <= 0:
        raise ValueError("X must have at least one column")
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    num_shards = min(num_shards, d)
    coloring = feature_coloring(X, max_features=max_features)
    colors = np.full(d, -1, dtype=np.int64)
    for coord, color in coloring.items():
        colors[coord] = color
    num_colors = int(colors.max()) + 1 if coloring else 0

    # Group the coloured coordinates by colour (ascending coordinate order
    # within each class keeps the plan deterministic).
    groups: List[np.ndarray] = [np.nonzero(colors == c)[0] for c in range(num_colors)]
    groups = [g for g in groups if g.size]
    if not groups:
        return range_shard_plan(d, num_shards)

    # Cold coordinates (beyond max_features, see feature_coloring) carry no
    # exactness guarantee; spread them round-robin for balance.
    cold = np.nonzero(colors < 0)[0]
    if cold.size:
        extras: List[List[int]] = [[] for _ in groups]
        for k, coord in enumerate(cold):
            extras[k % len(groups)].append(int(coord))
        groups = [
            np.sort(np.concatenate([g, np.asarray(e, dtype=np.int64)])) if e else g
            for g, e in zip(groups, extras)
        ]

    if len(groups) <= num_shards:
        # Each colour class is its own shard; split the largest classes in
        # half until every shard is used (same-colour coordinates never
        # conflict, so splitting preserves the separation guarantee).
        while len(groups) < num_shards:
            largest = max(range(len(groups)), key=lambda k: groups[k].size)
            g = groups[largest]
            if g.size < 2:
                break
            half = g.size // 2
            groups[largest] = g[:half]
            groups.append(g[half:])
    else:
        # More colours than shards: fold classes round-robin (best effort).
        folded: List[List[np.ndarray]] = [[] for _ in range(num_shards)]
        for k, g in enumerate(sorted(groups, key=lambda g: -g.size)):
            folded[k % num_shards].append(g)
        groups = [np.sort(np.concatenate(parts)) for parts in folded if parts]

    sizes = np.array([g.size for g in groups], dtype=np.int64)
    offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    shard_of = np.empty(d, dtype=np.int64)
    flat_of = np.empty(d, dtype=np.int64)
    for s, g in enumerate(groups):
        shard_of[g] = s
        flat_of[g] = np.arange(offsets[s], offsets[s + 1], dtype=np.int64)
    return ShardPlan(dim=d, shard_of=shard_of, offsets=offsets, flat_of=flat_of, scheme="coloring")


def remap_flat(src: ShardPlan, dst: ShardPlan, flat_values: np.ndarray) -> np.ndarray:
    """Re-map a flat-layout vector from one plan's layout onto another's.

    Both directions of a :class:`ShardPlan`'s layout are pure permutations,
    so the remap is *bit-identical*: a parameter vector checkpointed under
    one shard plan carries over exactly onto any other plan of the same
    dimension — the property that makes dynamic re-sharding on cluster
    membership changes safe (see :mod:`repro.cluster.checkpoint`).
    """
    if src.dim != dst.dim:
        raise ValueError(
            f"cannot remap between plans of different dimension ({src.dim} vs {dst.dim})"
        )
    values = np.ascontiguousarray(flat_values, dtype=np.float64)
    if values.shape != (src.dim,):
        raise ValueError("flat_values must have one entry per coordinate")
    return dst.flatten_vector(src.unflatten(values))


def make_shard_plan(
    scheme: str,
    dim: int,
    num_shards: int,
    *,
    X: Optional[CSRMatrix] = None,
    max_features: int = 2000,
) -> ShardPlan:
    """Factory: ``"range"`` (default layout) or ``"coloring"`` (needs ``X``)."""
    scheme = scheme.lower()
    if scheme == "range":
        return range_shard_plan(dim, num_shards)
    if scheme == "coloring":
        if X is None:
            raise ValueError("coloring sharding requires the design matrix X")
        return coloring_shard_plan(X, num_shards, max_features=max_features)
    raise ValueError(f"unknown shard scheme {scheme!r}; available: range, coloring")


__all__ = [
    "ShardPlan",
    "range_shard_plan",
    "coloring_shard_plan",
    "feature_coloring",
    "make_shard_plan",
    "remap_flat",
]
