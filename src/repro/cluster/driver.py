"""Driver of the multi-process parameter-server cluster.

:class:`ClusterDriver` turns a data :class:`~repro.core.partition.Partition`
into a fleet of real OS processes sharing one sharded parameter vector:

* it allocates the shared-memory arena (parameter shards, read-only
  dataset arrays, per-worker counter rows, conflict stamps) through
  :class:`~repro.cluster.shm.ShmArena`;
* it plans the coordinate shards (:mod:`repro.cluster.sharding`);
* it spawns one :func:`~repro.cluster.worker.run_worker` process per data
  shard and paces them with a barrier, twice per epoch — between epochs
  the driver snapshots the weights, folds the measured counters into the
  same :class:`~repro.async_engine.events.EpochEvent` records the
  simulator emits, and (for SVRG) refreshes the snapshot state;
* it returns a :class:`ClusterRunResult` whose trace plugs into the
  existing metrics/cost/experiments pipeline unchanged — but whose
  wall-clock is *measured*, not modelled.

Solvers select this tier with ``async_mode="process"`` (see
:mod:`repro.async_engine.modes`); it is the first execution path in the
repository whose throughput scales with physical cores.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.cluster.cost_model import ClusterCostModel, occupancy_skew
from repro.cluster.sharding import ShardPlan, make_shard_plan
from repro.cluster.shm import ShmArena
from repro.cluster.worker import (
    BARRIER_TIMEOUT,
    COL_DELAY_SUM,
    COL_MAX_DELAY,
    NUM_COUNTER_COLS,
    WorkerTask,
    build_rule,
    run_worker,
)
from repro.core.partition import Partition
from repro.objectives.base import Objective
from repro.runtime.trace_fold import fold_sync_step, fold_worker_counters
from repro.rules import available_rules
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import RandomState, as_rng

#: Environment variable overriding the multiprocessing start method.
START_METHOD_ENV_VAR = "REPRO_CLUSTER_START_METHOD"


def default_start_method() -> str:
    """``fork`` where available (cheap), else ``spawn``; env-overridable."""
    env = os.environ.get(START_METHOD_ENV_VAR, "").strip()
    if env:
        return env
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def available_parallelism() -> int:
    """Physical cores usable by this process (affinity-aware)."""
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except AttributeError:  # pragma: no cover - non-Linux
        return max(os.cpu_count() or 1, 1)


@dataclass
class ClusterRunResult:
    """Outcome of :meth:`ClusterDriver.run` (the cluster's ``SimulationResult``)."""

    weights: np.ndarray
    trace: ExecutionTrace
    epoch_weights: Optional[List[np.ndarray]] = None
    epoch_seconds: List[float] = field(default_factory=list)
    epoch_mean_delay: List[float] = field(default_factory=list)
    epoch_occupancy_skew: List[float] = field(default_factory=list)
    shard_write_fractions: Optional[np.ndarray] = None
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_clock(self) -> np.ndarray:
        """Cumulative *measured* seconds at the end of every epoch."""
        return np.cumsum(np.asarray(self.epoch_seconds, dtype=np.float64))


class ClusterDriver:
    """Run SGD-style updates on a sharded shared-memory model with process workers.

    Parameters
    ----------
    X, y, objective:
        The problem definition (the dataset is shared read-only with every
        worker through the arena).
    partition:
        Sample shards, one worker process per shard (built by the solvers
        exactly as for the simulated engines).
    step_size:
        Base step size λ.
    importance_sampling:
        Workers draw from their local importance distribution with the
        ``1/(n_a p_i)`` re-weighting (clipped at ``step_clip``) when True,
        uniformly otherwise.
    rule:
        A registered :mod:`repro.rules` name (``"sgd"``, ``"is_sgd"``,
        ``"svrg"``, ``"svrg_skip_dense"``, ``"saga"``); the workers execute
        the rule's single block definition, and the driver provisions its
        shared state (SVRG's per-epoch µ/snapshot blocks, SAGA's
        coefficient table + running average).  Custom rules registered at
        runtime are only constructible inside the worker processes when
        they inherit the parent's registry (the ``fork`` start method) —
        the runtime dispatch therefore routes them to the in-process tiers
        instead (see ``ProcessBackend.capabilities``).
    shard_scheme:
        ``"range"`` (default) or ``"coloring"`` — see
        :mod:`repro.cluster.sharding`.
    num_shards:
        Coordinate shards; defaults to the worker count.
    batch_size:
        Macro-block length per worker (``"auto"`` picks a block that keeps
        per-block Python overhead negligible without making reads much
        staler than the real interleaving).
    start_method:
        ``multiprocessing`` start method (default: :func:`default_start_method`).
    """

    def __init__(
        self,
        X: CSRMatrix,
        y: np.ndarray,
        objective: Objective,
        partition: Partition,
        *,
        step_size: float,
        importance_sampling: bool = False,
        step_clip: float = 100.0,
        rule: str = "sgd",
        skip_dense_term: bool = False,
        count_sample_draws: Optional[bool] = None,
        shard_scheme: str = "range",
        num_shards: Optional[int] = None,
        coloring_max_features: int = 2000,
        batch_size: Union[int, str] = "auto",
        kernel_name: Optional[str] = None,
        seed: RandomState = 0,
        start_method: Optional[str] = None,
    ) -> None:
        if y.shape[0] != X.n_rows:
            raise ValueError("X and y row counts differ")
        if rule not in available_rules():
            raise ValueError(
                f"unknown update rule {rule!r}; available: {', '.join(available_rules())}"
            )
        self.X = X
        self.y = np.ascontiguousarray(y, dtype=np.float64)
        self.objective = objective
        self.partition = partition
        self.step_size = float(step_size)
        self.importance_sampling = bool(importance_sampling)
        self.step_clip = float(step_clip)
        self.rule = rule
        self.skip_dense_term = bool(skip_dense_term) or rule == "svrg_skip_dense"
        # A prototype rule instance supplies the trace metadata defaults
        # (sample-draw accounting) and, for SAGA, the initial table state —
        # built through the same mapping the worker processes use.
        self._proto_rule = build_rule(
            rule, objective, float(step_size), skip_dense_term=self.skip_dense_term
        )
        self.count_sample_draws = (
            bool(count_sample_draws)
            if count_sample_draws is not None
            else bool(self._proto_rule.counts_sample_draws)
        )
        self.num_workers = partition.num_workers
        self.num_shards = int(num_shards) if num_shards else self.num_workers
        self.shard_scheme = shard_scheme
        self.batch_size = batch_size
        self.kernel_name = kernel_name
        self.seed = seed
        self.start_method = start_method or default_start_method()
        self.plan: ShardPlan = make_shard_plan(
            shard_scheme, X.n_cols, self.num_shards, X=X,
            max_features=coloring_max_features,
        )

    # ------------------------------------------------------------------ #
    def resolved_batch_size(self, iterations_per_worker: int) -> int:
        """The macro-block length actually used."""
        if self.batch_size == "auto":
            # Big enough to amortise per-block Python overhead, small
            # enough that every epoch has many interleaving points per
            # worker (reads stay near-fresh relative to the epoch).
            return int(np.clip(iterations_per_worker // 16, 32, 1024))
        return max(1, int(self.batch_size))

    def run(
        self,
        epochs: int,
        *,
        initial_weights: Optional[np.ndarray] = None,
        keep_epoch_weights: bool = True,
    ) -> ClusterRunResult:
        """Execute ``epochs`` epochs on the process cluster."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        d = self.X.n_cols
        rng = as_rng(self.seed)
        is_svrg = self.rule in ("svrg", "svrg_skip_dense")
        is_saga = self.rule == "saga"

        arena = ShmArena()
        try:
            w = arena.create("weights", (d,), "float64")
            if initial_weights is not None:
                w[...] = self.plan.flatten_vector(
                    np.ascontiguousarray(initial_weights, dtype=np.float64)
                )
            arena.create("x_data", self.X.data.shape, "float64", initial=self.X.data)
            # CSRMatrix normalises indices/indptr to int32; matching the
            # arena dtype keeps the workers' reconstructed views zero-copy.
            arena.create("x_indices", self.X.indices.shape, "int32", initial=self.X.indices)
            arena.create("x_indptr", self.X.indptr.shape, "int32", initial=self.X.indptr)
            arena.create("y", self.y.shape, "float64", initial=self.y)
            arena.create("shard_of", (d,), "int64", initial=self.plan.shard_of)
            if self.plan.flat_of is not None:
                arena.create("flat_of", (d,), "int64", initial=self.plan.flat_of)
            counters = arena.create(
                "counters", (self.num_workers, NUM_COUNTER_COLS), "int64"
            )
            shard_writes = arena.create(
                "shard_writes", (self.num_workers, self.plan.num_shards), "int64"
            )
            arena.create("progress", (self.num_workers,), "int64")
            arena.create("last_writer", (d,), "int32", initial=np.full(d, -1, np.int32))
            arena.create("write_clock", (d,), "int64")
            arena.create("errors", (self.num_workers,), "int64")
            if is_svrg:
                mu_block = arena.create("mu", (d,), "float64")
                snap_block = arena.create("snap_margins", (self.X.n_rows,), "float64")
            if is_saga:
                # SAGA's shared table state, built at the starting iterate
                # through the rule's own definition (one batched kernel
                # pass); the average lives in the flat shard layout.
                from repro.kernels.registry import resolve_backend

                w0 = self.plan.unflatten(w)
                coefs0, avg0 = self._proto_rule.initial_state(
                    self.X, self.y, w0, resolve_backend(self.kernel_name)
                )
                arena.create("saga_coefs", (self.X.n_rows,), "float64", initial=coefs0)
                arena.create(
                    "saga_avg", (d,), "float64", initial=self.plan.flatten_vector(avg0)
                )

            ctx = mp.get_context(self.start_method)
            barrier = ctx.Barrier(self.num_workers + 1)
            procs = []
            iterations = [max(1, shard.size) for shard in self.partition.shards]
            for shard, iters in zip(self.partition.shards, iterations):
                if self.importance_sampling:
                    probs = shard.probabilities
                    with np.errstate(divide="ignore"):
                        reweight = 1.0 / (shard.size * probs)
                    reweight = np.minimum(reweight, self.step_clip)
                else:
                    probs = np.full(shard.size, 1.0 / max(shard.size, 1))
                    reweight = np.ones(shard.size)
                task = WorkerTask(
                    worker_id=shard.worker_id,
                    num_workers=self.num_workers,
                    arena=arena.spec(),
                    rows=shard.row_indices,
                    probabilities=probs,
                    step_weights=reweight,
                    iterations_per_epoch=iters,
                    epochs=epochs,
                    step_size=self.step_size,
                    objective=self.objective,
                    rule=self.rule,
                    skip_dense_term=self.skip_dense_term,
                    count_sample_draws=self.count_sample_draws,
                    batch_size=self.resolved_batch_size(iters),
                    seed=int(rng.integers(0, 2**31 - 1)),
                    kernel_name=self.kernel_name,
                    has_flat_of=self.plan.flat_of is not None,
                    dim=d,
                )
                proc = ctx.Process(target=run_worker, args=(task, barrier), daemon=True)
                procs.append(proc)
            for proc in procs:
                proc.start()

            return self._drive_epochs(
                epochs, arena, barrier, procs, counters, shard_writes,
                keep_epoch_weights, is_svrg,
                mu_block if is_svrg else None,
                snap_block if is_svrg else None,
                is_saga,
            )
        finally:
            arena.close()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _reap(procs) -> None:
        """Join worker processes briefly, terminating stragglers."""
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()

    @staticmethod
    def _guarded_wait(barrier, procs) -> None:
        """Barrier wait that aborts if any worker process died.

        A worker that crashes *before* reaching its first barrier (import
        error, spawn bootstrap failure, OOM kill) can never abort the
        barrier itself; without this watchdog the driver would block for
        the full timeout.
        """
        import threading

        stop = threading.Event()

        def watch() -> None:
            while not stop.wait(0.2):
                for proc in procs:
                    if not proc.is_alive() and proc.exitcode not in (0, None):
                        barrier.abort()
                        return

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        try:
            barrier.wait(timeout=BARRIER_TIMEOUT)
        finally:
            stop.set()
            watcher.join()

    def _drive_epochs(
        self, epochs, arena, barrier, procs, counters, shard_writes,
        keep_epoch_weights, is_svrg, mu_block, snap_block, is_saga=False,
    ) -> ClusterRunResult:
        import threading

        d = self.X.n_cols
        w = arena["weights"]
        trace = ExecutionTrace()
        epoch_weights: List[np.ndarray] = []
        epoch_seconds: List[float] = []
        epoch_mean_delay: List[float] = []
        epoch_occ: List[float] = []
        prev_counters = np.zeros_like(counters)
        prev_shard_writes = np.zeros_like(shard_writes)
        total_inner = sum(max(1, s.size) for s in self.partition.shards)

        try:
            for epoch in range(epochs):
                event = EpochEvent(epoch=epoch)
                # The timed window covers the whole per-epoch algorithm cost,
                # including the driver-side serial work: SVRG's sync step
                # (snapshot + full gradient — the dominant serial fraction of
                # an SVRG epoch) and the skip-µ epoch-level dense add.  Only
                # metrics bookkeeping (snapshots, counter reads) stays out.
                started = time.perf_counter()
                if is_saga and epoch == 0:
                    # Table initialisation at the starting iterate (performed
                    # in run() before the workers launched) — priced like
                    # every other once-per-run sync step.
                    fold_sync_step(event, nnz=self.X.nnz, dim=d)
                if is_svrg:
                    snapshot = self.plan.unflatten(w)
                    mu = self.objective.full_gradient(snapshot, self.X, self.y)
                    mu_block[...] = self.plan.flatten_vector(mu)
                    snap_block[...] = self.X.dot(snapshot)
                    fold_sync_step(event, nnz=self.X.nnz, dim=d)
                self._guarded_wait(barrier, procs)      # release the epoch
                self._guarded_wait(barrier, procs)      # workers finished

                if is_svrg and self.skip_dense_term:
                    # Accumulated dense term, applied once per epoch (the
                    # paper's skip-µ ablation), exactly as the simulated
                    # engines do.
                    w += total_inner * (-self.step_size) * mu_block
                    fold_sync_step(event, nnz=0, dim=d)
                elapsed = time.perf_counter() - started

                snap_counters = counters.copy()
                snap_shards = shard_writes.copy()
                delta = snap_counters - prev_counters
                shard_delta = snap_shards - prev_shard_writes
                prev_counters = snap_counters
                prev_shard_writes = snap_shards
                counters[:, COL_MAX_DELAY] = 0  # per-epoch maximum

                iters = fold_worker_counters(
                    event, delta,
                    max_delay=int(snap_counters[:, COL_MAX_DELAY].max(initial=0)),
                )
                trace.add_epoch(event)
                epoch_seconds.append(elapsed)
                epoch_mean_delay.append(
                    float(delta[:, COL_DELAY_SUM].sum()) / max(iters, 1)
                )
                totals = shard_delta.sum(axis=0)
                epoch_occ.append(occupancy_skew(totals))
                if keep_epoch_weights:
                    epoch_weights.append(self.plan.unflatten(w))
        except threading.BrokenBarrierError:
            failed = np.nonzero(arena["errors"])[0].tolist()
            self._reap(procs)
            raise RuntimeError(
                f"cluster worker(s) {failed or '<unknown>'} failed; see worker traceback above"
            )
        except BaseException:
            # Driver-side failure (KeyboardInterrupt, SVRG prep error, ...):
            # abort the barrier so workers unblock immediately instead of
            # sitting out the full barrier timeout, then reap them.
            barrier.abort()
            self._reap(procs)
            raise

        for proc in procs:
            proc.join(timeout=BARRIER_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                raise RuntimeError("cluster worker failed to exit after the final epoch")

        final = self.plan.unflatten(w)
        totals = prev_shard_writes.sum(axis=0).astype(np.float64)
        fractions = totals / totals.sum() if totals.sum() > 0 else totals
        info = {
            "backend": "process",
            "num_workers": self.num_workers,
            "num_shards": self.plan.num_shards,
            "shard_scheme": self.plan.scheme,
            "start_method": self.start_method,
            "available_parallelism": available_parallelism(),
            "mean_measured_delay": float(np.mean(epoch_mean_delay)) if epoch_mean_delay else 0.0,
            "measured_conflict_rate": trace.conflict_rate(),
            "occupancy_skew": float(np.mean(epoch_occ)) if epoch_occ else 0.0,
        }
        return ClusterRunResult(
            weights=final,
            trace=trace,
            epoch_weights=epoch_weights if keep_epoch_weights else None,
            epoch_seconds=epoch_seconds,
            epoch_mean_delay=epoch_mean_delay,
            epoch_occupancy_skew=epoch_occ,
            shard_write_fractions=fractions,
            info=info,
        )


__all__ = [
    "ClusterDriver",
    "ClusterRunResult",
    "ClusterCostModel",
    "default_start_method",
    "available_parallelism",
    "START_METHOD_ENV_VAR",
]
