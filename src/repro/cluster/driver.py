"""Driver of the multi-process parameter-server cluster.

:class:`ClusterDriver` turns a data :class:`~repro.core.partition.Partition`
into a fleet of real OS processes sharing one sharded parameter vector:

* it allocates the shared-memory arena (parameter shards, read-only
  dataset arrays, per-worker counter rows, conflict stamps, block queues)
  through :class:`~repro.cluster.shm.ShmArena`;
* it plans the coordinate shards (:mod:`repro.cluster.sharding`);
* it spawns one :func:`~repro.cluster.worker.run_worker` process per data
  shard and paces them with a barrier, twice per epoch — between epochs
  the driver snapshots the weights, folds the measured counters into the
  same :class:`~repro.async_engine.events.EpochEvent` records the
  simulator emits, and (for SVRG) refreshes the snapshot state;
* it returns a :class:`ClusterRunResult` whose trace plugs into the
  existing metrics/cost/experiments pipeline unchanged — but whose
  wall-clock is *measured*, not modelled.

The cluster is **elastic and fault-tolerant**:

* every epoch barrier the driver captures a shard-consistent in-memory
  checkpoint (weights, rule state, sampler stream, folded counters — see
  :mod:`repro.cluster.checkpoint`), optionally persisting it to a
  :class:`~repro.cluster.checkpoint.CheckpointStore` every
  ``checkpoint_every`` epochs;
* when a worker dies mid-epoch (SIGKILL, OOM, Python crash) the watchdog
  aborts the barrier, the driver reports exactly *which* worker died and
  how (:class:`WorkerFailure`), reaps the fleet, restores the arena from
  the last checkpoint and respawns a full replacement fleet that replays
  the interrupted epoch (partial lock-free work of the survivors cannot
  be unwound per-worker, so the epoch restarts from a consistent cut);
  ``max_respawns`` bounds the recovery attempts;
* checkpoints store the weights in *global* coordinate order, so a run
  resumed at a different worker count rebuilds its
  :class:`~repro.cluster.sharding.ShardPlan` and remaps the state onto the
  new layout bit-identically (dynamic re-sharding);
* stragglers are mitigated by work-stealing across the per-worker block
  queues, armed per epoch when the planned or measured
  :func:`~repro.cluster.cost_model.work_skew` exceeds
  ``steal_skew_threshold`` (or forced with ``work_stealing=True``).

Solvers select this tier with ``async_mode="process"`` (see
:mod:`repro.async_engine.modes`); it is the first execution path in the
repository whose throughput scales with physical cores.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import signal as signal_module
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.cluster.checkpoint import CheckpointStore, ClusterCheckpoint
from repro.cluster.cost_model import ClusterCostModel, occupancy_skew, work_skew
from repro.cluster.sharding import ShardPlan, make_shard_plan
from repro.cluster.shm import ShmArena
from repro.cluster.worker import (
    BARRIER_TIMEOUT,
    COL_DELAY_SUM,
    COL_ITERATIONS,
    COL_MAX_DELAY,
    COL_STEALS,
    NUM_COUNTER_COLS,
    WorkerTask,
    build_rule,
    run_worker,
)
from repro.core.partition import Partition
from repro.objectives.base import Objective
from repro.runtime.trace_fold import fold_sync_step, fold_worker_counters
from repro.rules import available_rules
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import RandomState, as_rng

#: Environment variable overriding the multiprocessing start method.
START_METHOD_ENV_VAR = "REPRO_CLUSTER_START_METHOD"


def default_start_method() -> str:
    """``fork`` where available (cheap), else ``spawn``; env-overridable."""
    env = os.environ.get(START_METHOD_ENV_VAR, "").strip()
    if env:
        return env
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def available_parallelism() -> int:
    """Physical cores usable by this process (affinity-aware)."""
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except AttributeError:  # pragma: no cover - non-Linux
        return max(os.cpu_count() or 1, 1)


class WorkerFailure(RuntimeError):
    """One or more cluster worker processes died or raised.

    Machine-readable detail rides along: :attr:`failures` is a list of
    ``(worker_id, exitcode)`` pairs — a negative exit code is a death by
    signal (``-9`` = SIGKILL) — and :attr:`python_errors` lists the worker
    ids whose crash was a Python exception (the child printed its
    traceback).  The driver's elastic path catches this, restores the last
    checkpoint and respawns the fleet; with recovery disabled
    (``max_respawns=0``) or exhausted it propagates to the caller.
    """

    def __init__(
        self,
        failures: Sequence[Tuple[int, Optional[int]]],
        python_errors: Sequence[int] = (),
    ) -> None:
        self.failures = [
            (int(wid), None if code is None else int(code)) for wid, code in failures
        ]
        self.python_errors = [int(wid) for wid in python_errors]
        flagged = set(self.python_errors)
        parts = []
        for wid, code in self.failures:
            if code is not None and code < 0:
                try:
                    name = signal_module.Signals(-code).name
                except ValueError:  # pragma: no cover - unknown signal number
                    name = f"signal {-code}"
                parts.append(f"worker {wid} died with {name}")
            elif wid in flagged:
                parts.append(
                    f"worker {wid} raised a Python exception "
                    f"(exit code {code}; see worker traceback above)"
                )
            else:
                parts.append(f"worker {wid} exited with code {code}")
        reported = {wid for wid, _ in self.failures}
        for wid in self.python_errors:
            if wid not in reported:
                parts.append(
                    f"worker {wid} raised a Python exception (see worker traceback above)"
                )
        detail = "; ".join(parts) or "barrier aborted or timed out with no exit status"
        super().__init__(f"cluster worker(s) failed: {detail}")


def _collect_worker_failure(procs, arena: ShmArena) -> WorkerFailure:
    """Build a :class:`WorkerFailure` after a broken barrier.

    Exit codes can lag the barrier abort by a scheduling quantum, so poll
    briefly until either an exit status or a worker-side error flag lands.
    """
    deadline = time.monotonic() + 2.0
    while True:
        failures = [
            (wid, proc.exitcode)
            for wid, proc in enumerate(procs)
            if proc.exitcode not in (0, None)
        ]
        if failures or arena["errors"].any() or time.monotonic() >= deadline:
            break
        time.sleep(0.02)
    python_errors = np.nonzero(arena["errors"])[0].tolist()
    return WorkerFailure(failures, python_errors)


@dataclass
class ClusterRunResult:
    """Outcome of :meth:`ClusterDriver.run` (the cluster's ``SimulationResult``)."""

    weights: np.ndarray
    trace: ExecutionTrace
    epoch_weights: Optional[List[np.ndarray]] = None
    epoch_seconds: List[float] = field(default_factory=list)
    epoch_mean_delay: List[float] = field(default_factory=list)
    epoch_occupancy_skew: List[float] = field(default_factory=list)
    epoch_steals: List[int] = field(default_factory=list)
    shard_write_fractions: Optional[np.ndarray] = None
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_clock(self) -> np.ndarray:
        """Cumulative *measured* seconds at the end of every epoch."""
        return np.cumsum(np.asarray(self.epoch_seconds, dtype=np.float64))


@dataclass
class _RunState:
    """Mutable bookkeeping of one :meth:`ClusterDriver.run` invocation."""

    start_epoch: int = 0
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    epoch_weights: List[np.ndarray] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    epoch_mean_delay: List[float] = field(default_factory=list)
    epoch_occ: List[float] = field(default_factory=list)
    epoch_steals: List[int] = field(default_factory=list)
    prev_counters: Optional[np.ndarray] = None
    prev_shard_writes: Optional[np.ndarray] = None
    base_counters: Optional[np.ndarray] = None       # totals before this fleet
    base_shard_totals: Optional[np.ndarray] = None
    last_work_skew: float = 0.0
    respawns: int = 0
    steal_epochs: int = 0
    checkpoints_persisted: int = 0
    resumed_from: int = 0
    mem_ckpt: Optional[ClusterCheckpoint] = None


class ClusterDriver:
    """Run SGD-style updates on a sharded shared-memory model with process workers.

    Parameters
    ----------
    X, y, objective:
        The problem definition (the dataset is shared read-only with every
        worker through the arena).
    partition:
        Sample shards, one worker process per shard (built by the solvers
        exactly as for the simulated engines).
    step_size:
        Base step size λ.
    importance_sampling:
        Workers draw from their local importance distribution with the
        ``1/(n_a p_i)`` re-weighting (clipped at ``step_clip``) when True,
        uniformly otherwise.
    rule:
        A registered :mod:`repro.rules` name (``"sgd"``, ``"is_sgd"``,
        ``"svrg"``, ``"svrg_skip_dense"``, ``"saga"``); the workers execute
        the rule's single block definition, and the driver provisions its
        shared state (SVRG's per-epoch µ/snapshot blocks, SAGA's
        coefficient table + running average).  Custom rules registered at
        runtime are only constructible inside the worker processes when
        they inherit the parent's registry (the ``fork`` start method) —
        the runtime dispatch therefore routes them to the in-process tiers
        instead (see ``ProcessBackend.capabilities``).
    shard_scheme:
        ``"range"`` (default) or ``"coloring"`` — see
        :mod:`repro.cluster.sharding`.
    num_shards:
        Coordinate shards; defaults to the worker count.
    batch_size:
        Macro-block length per worker (``"auto"`` picks a block that keeps
        per-block Python overhead negligible without making reads much
        staler than the real interleaving).
    start_method:
        ``multiprocessing`` start method (default: :func:`default_start_method`).
    checkpoint_store:
        A :class:`~repro.cluster.checkpoint.CheckpointStore` (or directory
        path) to persist shard-consistent checkpoints into; ``None`` keeps
        checkpoints in memory only (still enough for worker replacement).
    checkpoint_every:
        Persist every N-th epoch barrier to the store (the final epoch is
        always persisted).  The in-memory recovery checkpoint is refreshed
        every epoch regardless.
    max_respawns:
        Fleet respawn budget per run; 0 disables recovery (any worker
        death raises :class:`WorkerFailure` immediately).
    work_stealing:
        ``"auto"`` (default) arms stealing for an epoch when the planned or
        previously measured :func:`~repro.cluster.cost_model.work_skew`
        exceeds ``steal_skew_threshold``; ``True``/``False`` force it.
        SAGA never steals (its coefficient-table rows are owned per shard).
    fault_hook:
        Optional observer ``hook(kind, payload)`` called at
        ``"fleet_spawned"``, ``"epoch_running"`` (between the release and
        end barriers — the epoch cannot complete while the hook runs) and
        ``"respawn"``.  This is the seam the fault-injection test harness
        (``tests/cluster/faults.py``) uses to strike deterministically.
    """

    def __init__(
        self,
        X: CSRMatrix,
        y: np.ndarray,
        objective: Objective,
        partition: Partition,
        *,
        step_size: float,
        importance_sampling: bool = False,
        step_clip: float = 100.0,
        rule: str = "sgd",
        skip_dense_term: bool = False,
        count_sample_draws: Optional[bool] = None,
        shard_scheme: str = "range",
        num_shards: Optional[int] = None,
        coloring_max_features: int = 2000,
        batch_size: Union[int, str] = "auto",
        kernel_name: Optional[str] = None,
        seed: RandomState = 0,
        start_method: Optional[str] = None,
        checkpoint_store: Optional[Union[CheckpointStore, str, Path]] = None,
        checkpoint_every: int = 1,
        max_respawns: int = 3,
        work_stealing: Union[bool, str] = "auto",
        steal_skew_threshold: float = 0.05,
        run_id: Optional[str] = None,
        fault_hook: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    ) -> None:
        if y.shape[0] != X.n_rows:
            raise ValueError("X and y row counts differ")
        if rule not in available_rules():
            raise ValueError(
                f"unknown update rule {rule!r}; available: {', '.join(available_rules())}"
            )
        if work_stealing not in (True, False, "auto"):
            raise ValueError("work_stealing must be True, False or 'auto'")
        if int(checkpoint_every) < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if int(max_respawns) < 0:
            raise ValueError("max_respawns must be >= 0")
        self.X = X
        self.y = np.ascontiguousarray(y, dtype=np.float64)
        self.objective = objective
        self.partition = partition
        self.step_size = float(step_size)
        self.importance_sampling = bool(importance_sampling)
        self.step_clip = float(step_clip)
        self.rule = rule
        self.skip_dense_term = bool(skip_dense_term) or rule == "svrg_skip_dense"
        # A prototype rule instance supplies the trace metadata defaults
        # (sample-draw accounting) and, for SAGA, the initial table state —
        # built through the same mapping the worker processes use.
        self._proto_rule = build_rule(
            rule, objective, float(step_size), skip_dense_term=self.skip_dense_term
        )
        self.count_sample_draws = (
            bool(count_sample_draws)
            if count_sample_draws is not None
            else bool(self._proto_rule.counts_sample_draws)
        )
        self.num_workers = partition.num_workers
        self.num_shards = int(num_shards) if num_shards else self.num_workers
        self.shard_scheme = shard_scheme
        self.batch_size = batch_size
        self.kernel_name = kernel_name
        self.seed = seed
        self.start_method = start_method or default_start_method()
        self.plan: ShardPlan = make_shard_plan(
            shard_scheme, X.n_cols, self.num_shards, X=X,
            max_features=coloring_max_features,
        )
        if checkpoint_store is not None and not isinstance(checkpoint_store, CheckpointStore):
            checkpoint_store = CheckpointStore(checkpoint_store)
        self.checkpoint_store = checkpoint_store
        self.checkpoint_every = int(checkpoint_every)
        self.max_respawns = int(max_respawns)
        self.work_stealing = work_stealing
        self.steal_skew_threshold = float(steal_skew_threshold)
        self.run_id = run_id
        self.fault_hook = fault_hook
        # The sampler seed root: every per-(worker, epoch) sequence seed is
        # derived from it alone, independently of fleet size or epoch count
        # — the property checkpoint/resume and worker replacement rely on.
        self._seed_root = int(as_rng(seed).integers(0, 2**31 - 1))
        self._iterations = [max(1, shard.size) for shard in partition.shards]
        self._identity: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    def resolved_batch_size(self, iterations_per_worker: int) -> int:
        """The macro-block length actually used."""
        if self.batch_size == "auto":
            # Big enough to amortise per-block Python overhead, small
            # enough that every epoch has many interleaving points per
            # worker (reads stay near-fresh relative to the epoch).
            return int(np.clip(iterations_per_worker // 16, 32, 1024))
        return max(1, int(self.batch_size))

    def epoch_seed(self, worker_id: int, epoch: int) -> int:
        """The deterministic sample-sequence seed of ``(worker, epoch)``.

        Derived from ``(seed_root, worker_id, epoch)`` through a
        :class:`numpy.random.SeedSequence`, so it is independent of the
        total epoch count and of every other worker — a replacement worker
        or a resumed run regenerates exactly the original stream.
        """
        ss = np.random.SeedSequence([self._seed_root, int(worker_id), int(epoch)])
        return int(ss.generate_state(1)[0] & 0x7FFFFFFF)

    def checkpoint_identity(self) -> Dict[str, Any]:
        """The run identity checkpoints are keyed by.

        Contains everything that determines the optimisation trajectory —
        the dataset bytes, objective, rule, step sizes and the sampler seed
        root — and deliberately **excludes** cluster membership (worker,
        shard and batch configuration), so a checkpoint resumes at any
        fleet size.
        """
        if self._identity is None:
            digest = hashlib.sha256()
            for array in (self.X.data, self.X.indices, self.X.indptr, self.y):
                digest.update(np.ascontiguousarray(array).tobytes())
            regularizer = getattr(self.objective, "regularizer", None)
            self._identity = {
                "kind": "cluster_checkpoint",
                "data_sha256": digest.hexdigest(),
                "objective": type(self.objective).__name__,
                "regularizer": type(regularizer).__name__ if regularizer is not None else None,
                "rule": self.rule,
                "skip_dense_term": bool(self.skip_dense_term),
                "step_size": float(self.step_size),
                "importance_sampling": bool(self.importance_sampling),
                "step_clip": float(self.step_clip),
                "seed_root": self._seed_root,
                "run_id": self.run_id,
            }
        return self._identity

    # ------------------------------------------------------------------ #
    def run(
        self,
        epochs: int,
        *,
        initial_weights: Optional[np.ndarray] = None,
        keep_epoch_weights: bool = True,
        resume: bool = False,
    ) -> ClusterRunResult:
        """Execute ``epochs`` epochs on the process cluster.

        With ``resume=True`` (requires ``checkpoint_store``) the newest
        stored checkpoint of this run identity at or below ``epochs`` is
        restored — remapped onto the current shard plan, whatever fleet
        shape wrote it — and only the remaining epochs execute;
        ``initial_weights`` is ignored when a checkpoint is found.
        """
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        restored: Optional[ClusterCheckpoint] = None
        if resume:
            if self.checkpoint_store is None:
                raise ValueError("resume=True requires a checkpoint_store")
            restored = self.checkpoint_store.latest(
                self.checkpoint_identity(), max_epoch=epochs
            )

        arena = ShmArena()
        try:
            sampling = self._build_sampling()
            self._create_arena(arena, sampling)
            state = _RunState()
            state.prev_counters = np.zeros((self.num_workers, NUM_COUNTER_COLS), np.int64)
            state.prev_shard_writes = np.zeros(
                (self.num_workers, self.plan.num_shards), np.int64
            )
            state.base_counters = np.zeros(NUM_COUNTER_COLS, np.int64)
            state.base_shard_totals = np.zeros(self.plan.num_shards, np.int64)

            if restored is not None:
                self._restore(arena, state, restored, keep_epoch_weights)
                state.start_epoch = state.resumed_from = restored.epoch
            else:
                if initial_weights is not None:
                    arena["weights"][...] = self.plan.flatten_vector(
                        np.ascontiguousarray(initial_weights, dtype=np.float64)
                    )
                if self.rule == "saga":
                    self._init_saga_state(arena)
            state.mem_ckpt = self._capture(arena, state, state.start_epoch, keep_epoch_weights)
            return self._drive(epochs, arena, state, sampling, keep_epoch_weights)
        finally:
            arena.close()

    # ------------------------------------------------------------------ #
    def _build_sampling(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-shard ``(probabilities, step_weights)`` pairs."""
        sampling = []
        for shard in self.partition.shards:
            if self.importance_sampling:
                probs = shard.probabilities
                with np.errstate(divide="ignore"):
                    reweight = 1.0 / (shard.size * probs)
                reweight = np.minimum(reweight, self.step_clip)
            else:
                probs = np.full(shard.size, 1.0 / max(shard.size, 1))
                reweight = np.ones(shard.size)
            sampling.append((probs, reweight))
        return sampling

    def _create_arena(
        self, arena: ShmArena, sampling: List[Tuple[np.ndarray, np.ndarray]]
    ) -> None:
        """Allocate every shared block of one run."""
        d = self.X.n_cols
        arena.create("weights", (d,), "float64")
        arena.create("x_data", self.X.data.shape, "float64", initial=self.X.data)
        # CSRMatrix normalises indices/indptr to int32; matching the
        # arena dtype keeps the workers' reconstructed views zero-copy.
        arena.create("x_indices", self.X.indices.shape, "int32", initial=self.X.indices)
        arena.create("x_indptr", self.X.indptr.shape, "int32", initial=self.X.indptr)
        arena.create("y", self.y.shape, "float64", initial=self.y)
        arena.create("shard_of", (d,), "int64", initial=self.plan.shard_of)
        if self.plan.flat_of is not None:
            arena.create("flat_of", (d,), "int64", initial=self.plan.flat_of)
        arena.create("counters", (self.num_workers, NUM_COUNTER_COLS), "int64")
        arena.create("shard_writes", (self.num_workers, self.plan.num_shards), "int64")
        arena.create("progress", (self.num_workers,), "int64")
        arena.create("last_writer", (d,), "int32", initial=np.full(d, -1, np.int32))
        arena.create("write_clock", (d,), "int64")
        arena.create("errors", (self.num_workers,), "int64")

        # Block-queue machinery: published sample sequences, per-worker
        # claim bounds and the concatenated shard rows / step weights that
        # let a thief execute a victim's stolen block (see worker module).
        iterations = self._iterations
        arena.create("sequences", (self.num_workers, max(iterations)), "int64")
        arena.create(
            "seq_epoch", (self.num_workers,), "int64",
            initial=np.full(self.num_workers, -1, np.int64),
        )
        arena.create("queue_next", (self.num_workers,), "int64")
        arena.create("queue_end", (self.num_workers,), "int64")
        arena.create(
            "queue_block", (self.num_workers,), "int64",
            initial=np.array(
                [self.resolved_batch_size(it) for it in iterations], np.int64
            ),
        )
        arena.create(
            "queue_iters", (self.num_workers,), "int64",
            initial=np.asarray(iterations, np.int64),
        )
        arena.create("steal_enabled", (1,), "int64")
        # Generation barrier (single-writer words only — see
        # repro.cluster.worker.barrier_phase): per-worker arrival slots
        # plus [release_generation, abort_flag].
        arena.create("barrier_arrive", (self.num_workers,), "int64")
        arena.create("barrier_state", (2,), "int64")
        all_rows = np.concatenate(
            [shard.row_indices for shard in self.partition.shards]
        ).astype(np.int64)
        all_step_weights = np.concatenate([rw for _, rw in sampling]).astype(np.float64)
        sizes = np.array([shard.size for shard in self.partition.shards], np.int64)
        row_offsets = np.zeros(self.num_workers + 1, np.int64)
        np.cumsum(sizes, out=row_offsets[1:])
        arena.create("all_rows", all_rows.shape, "int64", initial=all_rows)
        arena.create(
            "all_step_weights", all_step_weights.shape, "float64",
            initial=all_step_weights,
        )
        arena.create("row_offsets", (self.num_workers + 1,), "int64", initial=row_offsets)

        if self.rule in ("svrg", "svrg_skip_dense"):
            arena.create("mu", (d,), "float64")
            arena.create("snap_margins", (self.X.n_rows,), "float64")
        if self.rule == "saga":
            arena.create("saga_coefs", (self.X.n_rows,), "float64")
            arena.create("saga_avg", (d,), "float64")

    def _init_saga_state(self, arena: ShmArena) -> None:
        """SAGA's shared table state at the starting iterate (one kernel pass)."""
        from repro.kernels.registry import resolve_backend

        w0 = self.plan.unflatten(arena["weights"])
        coefs0, avg0 = self._proto_rule.initial_state(
            self.X, self.y, w0, resolve_backend(self.kernel_name)
        )
        arena["saga_coefs"][...] = coefs0
        arena["saga_avg"][...] = self.plan.flatten_vector(avg0)

    # ------------------------------------------------------------------ #
    def _capture(
        self, arena: ShmArena, state: _RunState, epoch: int, keep_epoch_weights: bool
    ) -> ClusterCheckpoint:
        """A shard-consistent checkpoint of the quiescent arena at ``epoch``."""
        rule_state: Dict[str, np.ndarray] = {}
        if self.rule == "saga":
            rule_state = {
                "saga_coefs": arena["saga_coefs"].copy(),
                "saga_avg": self.plan.unflatten(arena["saga_avg"]),
            }
        return ClusterCheckpoint(
            identity=self.checkpoint_identity(),
            epoch=int(epoch),
            num_workers=self.num_workers,
            num_shards=self.plan.num_shards,
            shard_scheme=self.plan.scheme,
            weights=self.plan.unflatten(arena["weights"]),
            rule=self.rule,
            rule_state=rule_state,
            sampler={
                "seed_root": self._seed_root,
                "next_epoch_seeds": [
                    self.epoch_seed(wid, epoch) for wid in range(self.num_workers)
                ],
            },
            counters=state.base_counters + state.prev_counters.sum(axis=0),
            shard_write_totals=state.base_shard_totals
            + state.prev_shard_writes.sum(axis=0),
            trace=ExecutionTrace.from_dict(state.trace.to_dict()),
            epoch_seconds=list(state.epoch_seconds),
            epoch_mean_delay=list(state.epoch_mean_delay),
            epoch_occupancy_skew=list(state.epoch_occ),
            epoch_steals=list(state.epoch_steals),
            epoch_weights=(
                [np.array(w, copy=True) for w in state.epoch_weights]
                if keep_epoch_weights else None
            ),
        )

    def _restore(
        self,
        arena: ShmArena,
        state: _RunState,
        checkpoint: ClusterCheckpoint,
        keep_epoch_weights: bool,
    ) -> None:
        """Load ``checkpoint`` into the arena and roll the run state back.

        The checkpoint stores layout-independent (global-order) arrays, so
        flattening through the *current* plan performs the re-sharding
        remap — bit-identical whatever plan wrote the checkpoint.
        """
        arena["weights"][...] = self.plan.flatten_vector(checkpoint.weights)
        if self.rule == "saga":
            arena["saga_coefs"][...] = checkpoint.rule_state["saga_coefs"]
            arena["saga_avg"][...] = self.plan.flatten_vector(
                checkpoint.rule_state["saga_avg"]
            )
        arena["counters"][...] = 0
        arena["shard_writes"][...] = 0
        arena["progress"][...] = 0
        arena["write_clock"][...] = 0
        arena["last_writer"][...] = -1
        arena["errors"][...] = 0
        arena["seq_epoch"][...] = -1
        arena["queue_next"][...] = 0
        arena["queue_end"][...] = 0
        state.prev_counters[...] = 0
        state.prev_shard_writes[...] = 0
        state.base_counters = (
            checkpoint.counters.copy()
            if checkpoint.counters is not None
            else np.zeros(NUM_COUNTER_COLS, np.int64)
        )
        if (
            checkpoint.shard_write_totals is not None
            and checkpoint.num_shards == self.plan.num_shards
        ):
            state.base_shard_totals = checkpoint.shard_write_totals.copy()
        else:
            # Shard count changed across the restore: per-shard attribution
            # of the earlier segment no longer maps; fractions restart.
            state.base_shard_totals = np.zeros(self.plan.num_shards, np.int64)
        state.trace = ExecutionTrace.from_dict(checkpoint.trace.to_dict())
        state.epoch_seconds = list(checkpoint.epoch_seconds)
        state.epoch_mean_delay = list(checkpoint.epoch_mean_delay)
        state.epoch_occ = list(checkpoint.epoch_occupancy_skew)
        state.epoch_steals = list(checkpoint.epoch_steals)
        state.epoch_weights = (
            [w.copy() for w in checkpoint.epoch_weights]
            if keep_epoch_weights and checkpoint.epoch_weights is not None
            else []
        )
        state.last_work_skew = 0.0

    # ------------------------------------------------------------------ #
    def _notify(self, kind: str, payload: Dict[str, Any]) -> None:
        if self.fault_hook is not None:
            self.fault_hook(kind, payload)

    def _spawn_fleet(self, ctx, arena: ShmArena, sampling, start_epoch: int, epochs: int):
        """Launch one worker process per shard for epochs ``[start_epoch, epochs)``."""
        lock = ctx.Lock()
        # Invalidate any queue published by a previous fleet so a thief can
        # never claim blocks from before a failure, and reset the
        # generation barrier for the new fleet.
        arena["seq_epoch"][...] = -1
        arena["queue_next"][...] = 0
        arena["queue_end"][...] = 0
        arena["errors"][...] = 0
        arena["barrier_arrive"][...] = 0
        arena["barrier_state"][...] = 0
        procs = []
        for shard, iters, (probs, reweight) in zip(
            self.partition.shards, self._iterations, sampling
        ):
            seeds = np.array(
                [self.epoch_seed(shard.worker_id, e) for e in range(start_epoch, epochs)],
                dtype=np.int64,
            )
            task = WorkerTask(
                worker_id=shard.worker_id,
                num_workers=self.num_workers,
                arena=arena.spec(),
                rows=shard.row_indices,
                probabilities=probs,
                step_weights=reweight,
                iterations_per_epoch=iters,
                epochs=epochs - start_epoch,
                step_size=self.step_size,
                objective=self.objective,
                rule=self.rule,
                skip_dense_term=self.skip_dense_term,
                count_sample_draws=self.count_sample_draws,
                batch_size=self.resolved_batch_size(iters),
                kernel_name=self.kernel_name,
                has_flat_of=self.plan.flat_of is not None,
                dim=self.X.n_cols,
                start_epoch=start_epoch,
                epoch_seeds=seeds,
                # SAGA's coefficient-table rows are owned per sample shard;
                # a thief executing a stolen block would write rows the
                # owner assumes private, so SAGA never steals.
                steal_ok=self.rule != "saga",
            )
            procs.append(ctx.Process(target=run_worker, args=(task, lock), daemon=True))
        for proc in procs:
            proc.start()
        self._notify("fleet_spawned", {"epoch": start_epoch, "procs": procs, "arena": arena})
        return procs

    def _arm_stealing(self, arena: ShmArena, state: _RunState) -> bool:
        """Decide (and publish) whether this epoch's workers may steal."""
        if self.num_workers < 2 or self.rule == "saga":
            armed = False
        elif self.work_stealing is True:
            armed = True
        elif self.work_stealing is False:
            armed = False
        else:  # "auto": planned partition skew or last epoch's measured skew
            planned = work_skew(np.asarray(self._iterations, dtype=np.float64))
            armed = max(planned, state.last_work_skew) > self.steal_skew_threshold
        arena["steal_enabled"][0] = 1 if armed else 0
        return armed

    # ------------------------------------------------------------------ #
    @staticmethod
    def _reap(procs) -> None:
        """Join worker processes briefly, escalating to SIGTERM then SIGKILL.

        The final SIGKILL also fells workers stopped by SIGSTOP, which
        ignore SIGTERM while suspended.
        """
        for proc in procs:
            proc.join(timeout=2.0)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)

    @staticmethod
    def _await_arrivals(arena: ShmArena, procs, gen: int) -> None:
        """Wait until every worker has arrived at barrier generation ``gen``.

        The driver side of the generation barrier (see
        :func:`repro.cluster.worker.barrier_phase` for why
        ``multiprocessing.Barrier`` cannot be used in a kill-prone tier).
        The same poll doubles as the watchdog: a worker that died — even
        *before* reaching its first barrier (spawn bootstrap failure, OOM
        kill) — or raised is detected here, the abort flag is published so
        the survivors stop instead of dead-waiting, and a
        :class:`WorkerFailure` naming the dead workers and their exit
        codes/signals is raised.
        """
        arrive = arena["barrier_arrive"]
        state = arena["barrier_state"]
        errors = arena["errors"]
        deadline = time.monotonic() + BARRIER_TIMEOUT
        while True:
            if bool(np.all(arrive >= gen)):
                return
            failed = errors.any() or any(
                not proc.is_alive() and proc.exitcode not in (0, None)
                for proc in procs
            )
            if failed or time.monotonic() > deadline:
                state[1] = 1
                raise _collect_worker_failure(procs, arena)
            time.sleep(0.001)

    @staticmethod
    def _release(arena: ShmArena, gen: int) -> None:
        """Open barrier generation ``gen`` for every parked worker."""
        arena["barrier_state"][0] = gen

    def _run_epoch(
        self,
        epoch: int,
        fleet_start: int,
        arena: ShmArena,
        procs,
        state: _RunState,
        keep_epoch_weights: bool,
        total_inner: int,
    ) -> None:
        """Drive one epoch: prep, two barrier generations, counter folding."""
        d = self.X.n_cols
        w = arena["weights"]
        counters = arena["counters"]
        shard_writes = arena["shard_writes"]
        is_svrg = self.rule in ("svrg", "svrg_skip_dense")
        gen_start = 2 * (epoch - fleet_start) + 1
        gen_end = gen_start + 1

        event = EpochEvent(epoch=epoch)
        # The timed window covers the whole per-epoch algorithm cost,
        # including the driver-side serial work: SVRG's sync step
        # (snapshot + full gradient — the dominant serial fraction of
        # an SVRG epoch) and the skip-µ epoch-level dense add.  Only
        # metrics bookkeeping (snapshots, counter reads) stays out.
        started = time.perf_counter()
        if self.rule == "saga" and epoch == 0:
            # Table initialisation at the starting iterate (performed
            # before the workers launched) — priced like every other
            # once-per-run sync step.
            fold_sync_step(event, nnz=self.X.nnz, dim=d)
        if is_svrg:
            snapshot = self.plan.unflatten(w)
            mu = self.objective.full_gradient(snapshot, self.X, self.y)
            arena["mu"][...] = self.plan.flatten_vector(mu)
            arena["snap_margins"][...] = self.X.dot(snapshot)
            fold_sync_step(event, nnz=self.X.nnz, dim=d)
        armed = self._arm_stealing(arena, state)
        self._await_arrivals(arena, procs, gen_start)  # workers parked at epoch start
        self._release(arena, gen_start)                # release the epoch
        # The epoch cannot finish while this hook runs: workers park at the
        # end generation until the driver releases it, which happens only
        # after this returns — the deterministic mid-epoch window the
        # fault-injection harness strikes in.
        self._notify(
            "epoch_running",
            {"epoch": epoch, "procs": procs, "arena": arena,
             "total_iterations": total_inner, "gen_end": gen_end},
        )
        self._await_arrivals(arena, procs, gen_end)    # workers finished, parked

        if is_svrg and self.skip_dense_term:
            # Accumulated dense term, applied once per epoch (the
            # paper's skip-µ ablation), exactly as the simulated
            # engines do.
            w += total_inner * (-self.step_size) * arena["mu"]
            fold_sync_step(event, nnz=0, dim=d)
        elapsed = time.perf_counter() - started

        snap_counters = counters.copy()
        snap_shards = shard_writes.copy()
        delta = snap_counters - state.prev_counters
        shard_delta = snap_shards - state.prev_shard_writes
        state.prev_counters = snap_counters
        state.prev_shard_writes = snap_shards
        counters[:, COL_MAX_DELAY] = 0  # per-epoch maximum

        iters = fold_worker_counters(
            event, delta,
            max_delay=int(snap_counters[:, COL_MAX_DELAY].max(initial=0)),
        )
        state.trace.add_epoch(event)
        state.epoch_seconds.append(elapsed)
        state.epoch_mean_delay.append(
            float(delta[:, COL_DELAY_SUM].sum()) / max(iters, 1)
        )
        totals = shard_delta.sum(axis=0)
        state.epoch_occ.append(occupancy_skew(totals))
        state.epoch_steals.append(int(delta[:, COL_STEALS].sum()))
        if armed:
            state.steal_epochs += 1
        state.last_work_skew = work_skew(delta[:, COL_ITERATIONS].astype(np.float64))
        if keep_epoch_weights:
            state.epoch_weights.append(self.plan.unflatten(w))
        # Everything above read the arena while every worker was parked at
        # the end generation (fully quiescent); now let them move on.
        self._release(arena, gen_end)

    def _drive(
        self,
        epochs: int,
        arena: ShmArena,
        state: _RunState,
        sampling,
        keep_epoch_weights: bool,
    ) -> ClusterRunResult:
        ctx = mp.get_context(self.start_method)
        total_inner = sum(self._iterations)
        procs = []
        fleet_start = state.start_epoch
        try:
            if state.start_epoch < epochs:
                procs = self._spawn_fleet(ctx, arena, sampling, state.start_epoch, epochs)
            epoch = state.start_epoch
            while epoch < epochs:
                try:
                    self._run_epoch(
                        epoch, fleet_start, arena, procs, state,
                        keep_epoch_weights, total_inner,
                    )
                except WorkerFailure:
                    self._reap(procs)
                    state.respawns += 1
                    if state.respawns > self.max_respawns:
                        raise
                    # Elastic recovery: roll the arena back to the last
                    # consistent cut and replay from there with a fresh
                    # fleet (the interrupted epoch restarts).
                    epoch = fleet_start = state.mem_ckpt.epoch
                    self._notify(
                        "respawn",
                        {"epoch": epoch, "respawns": state.respawns},
                    )
                    self._restore(arena, state, state.mem_ckpt, keep_epoch_weights)
                    procs = self._spawn_fleet(ctx, arena, sampling, epoch, epochs)
                    continue
                epoch += 1
                state.mem_ckpt = self._capture(arena, state, epoch, keep_epoch_weights)
                if self.checkpoint_store is not None and (
                    epoch % self.checkpoint_every == 0 or epoch == epochs
                ):
                    self.checkpoint_store.save(state.mem_ckpt)
                    state.checkpoints_persisted += 1
        except WorkerFailure:
            raise  # fleet already reaped above
        except BaseException:
            # Driver-side failure (KeyboardInterrupt, SVRG prep error, a
            # fault hook assertion, ...): raise the abort flag so workers
            # unblock immediately instead of sitting out the full barrier
            # timeout, then reap them.
            arena["barrier_state"][1] = 1
            self._reap(procs)
            raise

        for proc in procs:
            proc.join(timeout=BARRIER_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                raise RuntimeError("cluster worker failed to exit after the final epoch")

        final = self.plan.unflatten(arena["weights"])
        totals = (
            state.base_shard_totals + state.prev_shard_writes.sum(axis=0)
        ).astype(np.float64)
        fractions = totals / totals.sum() if totals.sum() > 0 else totals
        info = {
            "backend": "process",
            "num_workers": self.num_workers,
            "num_shards": self.plan.num_shards,
            "shard_scheme": self.plan.scheme,
            "start_method": self.start_method,
            "available_parallelism": available_parallelism(),
            "mean_measured_delay": (
                float(np.mean(state.epoch_mean_delay)) if state.epoch_mean_delay else 0.0
            ),
            "measured_conflict_rate": state.trace.conflict_rate(),
            "occupancy_skew": float(np.mean(state.epoch_occ)) if state.epoch_occ else 0.0,
            "fault_tolerant": self.max_respawns > 0,
            "respawns": state.respawns,
            "resumed_from_epoch": state.resumed_from,
            "work_stealing": (
                "auto" if self.work_stealing == "auto"
                else ("on" if self.work_stealing else "off")
            ),
            "steal_epochs": state.steal_epochs,
            "steal_count": int(sum(state.epoch_steals)),
            "checkpoint_every": self.checkpoint_every,
            "checkpoints_persisted": state.checkpoints_persisted,
        }
        return ClusterRunResult(
            weights=final,
            trace=state.trace,
            epoch_weights=state.epoch_weights if keep_epoch_weights else None,
            epoch_seconds=state.epoch_seconds,
            epoch_mean_delay=state.epoch_mean_delay,
            epoch_occupancy_skew=state.epoch_occ,
            epoch_steals=state.epoch_steals,
            shard_write_fractions=fractions,
            info=info,
        )


__all__ = [
    "ClusterDriver",
    "ClusterRunResult",
    "ClusterCostModel",
    "WorkerFailure",
    "default_start_method",
    "available_parallelism",
    "START_METHOD_ENV_VAR",
]
