"""Multi-process sharded parameter-server execution tier.

The first execution path in the repository where throughput scales with
physical cores: the weight vector is partitioned into coordinate shards
held in ``multiprocessing.shared_memory``, real OS processes apply
lock-free index-compressed updates through the kernel batch primitives,
and the driver folds *measured* staleness/conflict/occupancy counters into
the same trace records the perturbed-iterate simulator emits.

Selected per solver with ``async_mode="process"`` (or globally via
``REPRO_ASYNC_MODE=process``); see ``docs/cluster.md``.
"""

from repro.cluster.cost_model import (
    ClusterCostModel,
    ClusterCostParameters,
    compare_traces,
    occupancy_skew,
)
from repro.cluster.driver import (
    ClusterDriver,
    ClusterRunResult,
    available_parallelism,
    default_start_method,
)
from repro.cluster.sharding import (
    ShardPlan,
    coloring_shard_plan,
    feature_coloring,
    make_shard_plan,
    range_shard_plan,
)
from repro.cluster.shm import ArenaSpec, ShmArena

__all__ = [
    "ClusterDriver",
    "ClusterRunResult",
    "ClusterCostModel",
    "ClusterCostParameters",
    "compare_traces",
    "occupancy_skew",
    "ShardPlan",
    "range_shard_plan",
    "coloring_shard_plan",
    "feature_coloring",
    "make_shard_plan",
    "ShmArena",
    "ArenaSpec",
    "available_parallelism",
    "default_start_method",
]
