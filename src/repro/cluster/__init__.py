"""Multi-process sharded parameter-server execution tier.

The first execution path in the repository where throughput scales with
physical cores: the weight vector is partitioned into coordinate shards
held in ``multiprocessing.shared_memory``, real OS processes apply
lock-free index-compressed updates through the kernel batch primitives,
and the driver folds *measured* staleness/conflict/occupancy counters into
the same trace records the perturbed-iterate simulator emits.

The tier is elastic and fault-tolerant: the driver checkpoints a
shard-consistent cut of the run at every epoch barrier
(:mod:`repro.cluster.checkpoint`), replaces workers that die mid-epoch by
respawning the fleet from the last checkpoint, re-shards checkpointed
state bit-identically across membership changes
(:func:`~repro.cluster.sharding.remap_flat`), and mitigates stragglers by
work-stealing across the per-worker block queues when the measured
:func:`~repro.cluster.cost_model.work_skew` warrants it.

Selected per solver with ``async_mode="process"`` (or globally via
``REPRO_ASYNC_MODE=process``); see ``docs/cluster.md``.
"""

from repro.cluster.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointStore,
    ClusterCheckpoint,
)
from repro.cluster.cost_model import (
    ClusterCostModel,
    ClusterCostParameters,
    compare_traces,
    occupancy_skew,
    work_skew,
)
from repro.cluster.driver import (
    ClusterDriver,
    ClusterRunResult,
    WorkerFailure,
    available_parallelism,
    default_start_method,
)
from repro.cluster.sharding import (
    ShardPlan,
    coloring_shard_plan,
    feature_coloring,
    make_shard_plan,
    range_shard_plan,
    remap_flat,
)
from repro.cluster.shm import ArenaSpec, ShmArena

__all__ = [
    "ClusterDriver",
    "ClusterRunResult",
    "WorkerFailure",
    "ClusterCostModel",
    "ClusterCostParameters",
    "CheckpointStore",
    "ClusterCheckpoint",
    "CHECKPOINT_FORMAT_VERSION",
    "compare_traces",
    "occupancy_skew",
    "work_skew",
    "ShardPlan",
    "range_shard_plan",
    "coloring_shard_plan",
    "feature_coloring",
    "make_shard_plan",
    "remap_flat",
    "ShmArena",
    "ArenaSpec",
    "available_parallelism",
    "default_start_method",
]
