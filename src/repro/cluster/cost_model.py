"""Communication / occupancy cost model of the process cluster.

:mod:`repro.async_engine.cost_model` prices *simulated* traces; this module
is its measured-execution mirror.  It does two jobs:

1. **Prediction** — :class:`ClusterCostModel` translates an
   :class:`~repro.async_engine.events.ExecutionTrace` (the same record type
   the simulator emits, here filled with *measured* counters) into
   predicted wall-clock seconds, with the parallel efficiency degraded by
   the measured conflict rate *and* by the shard-occupancy skew: when most
   writes land in few shards, workers contend on the same cache
   lines/pages no matter how many shards exist.

2. **Comparison** — :func:`compare_traces` lines a measured cluster trace
   up against a simulated one (same solver, same workload) so the
   simulator's staleness/conflict assumptions can be checked against what
   the hardware actually did, and :meth:`ClusterCostModel.compare_measured`
   reports predicted-vs-measured seconds per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.async_engine.events import EpochEvent, ExecutionTrace
from repro.utils.validation import check_positive


@dataclass
class ClusterCostParameters:
    """Per-operation cost constants of the multi-process execution tier.

    Attributes
    ----------
    coord_write_cost:
        Seconds per coordinate touched by a lock-free scatter-add into the
        shared parameter buffer (shared-memory traffic included).
    dense_coord_cost:
        Seconds per coordinate of a dense (SVRG-style µ) block add.
    block_overhead:
        Fixed cost per macro-block (gather + margin setup + Python
        dispatch).
    sample_draw_cost:
        Seconds per weighted sample draw (alias-sampler sequence entry).
    epoch_sync_cost:
        Fixed cost per epoch per worker for the two barrier waits and the
        driver's snapshot/counter collection.
    contention_penalty:
        Multiplicative slowdown per unit measured conflict rate — same
        role as ``CostParameters.conflict_penalty``, but driven by
        *measured* conflicts.
    occupancy_penalty:
        Multiplicative slowdown applied to the normalised shard-occupancy
        skew: ``num_shards * Σ_s f_s² - 1`` is 0 for perfectly spread
        writes and ``num_shards - 1`` when one shard takes every write.
    base_parallel_efficiency:
        Parallel efficiency at zero conflicts and perfectly spread writes.
    """

    coord_write_cost: float = 1.2e-8
    dense_coord_cost: float = 2e-9
    block_overhead: float = 2.5e-5
    sample_draw_cost: float = 1.5e-8
    epoch_sync_cost: float = 2e-4
    contention_penalty: float = 0.15
    occupancy_penalty: float = 0.05
    base_parallel_efficiency: float = 0.85

    def __post_init__(self) -> None:
        check_positive(self.coord_write_cost, "coord_write_cost")
        check_positive(self.dense_coord_cost, "dense_coord_cost")
        check_positive(self.block_overhead, "block_overhead", strict=False)
        check_positive(self.sample_draw_cost, "sample_draw_cost", strict=False)
        check_positive(self.epoch_sync_cost, "epoch_sync_cost", strict=False)
        check_positive(self.contention_penalty, "contention_penalty", strict=False)
        check_positive(self.occupancy_penalty, "occupancy_penalty", strict=False)
        if not 0.0 < self.base_parallel_efficiency <= 1.0:
            raise ValueError("base_parallel_efficiency must be in (0, 1]")


def occupancy_skew(shard_write_fractions: Sequence[float]) -> float:
    """Normalised write-concentration of the shards.

    ``num_shards * Σ_s f_s² - 1`` where ``f_s`` is shard ``s``'s fraction
    of all coordinate writes: 0.0 when writes spread evenly, growing to
    ``num_shards - 1`` when a single shard absorbs everything.  This is the
    collision-probability analogue of the simulator's conflict rate, at
    shard rather than coordinate granularity.
    """
    f = np.asarray(shard_write_fractions, dtype=np.float64)
    if f.size == 0 or f.sum() <= 0.0:
        return 0.0
    f = f / f.sum()
    return float(f.size * np.sum(f * f) - 1.0)


def work_skew(per_worker_iterations: Sequence[float]) -> float:
    """Normalised imbalance of the per-worker iteration counts.

    The same collision statistic as :func:`occupancy_skew`, applied over
    *workers* instead of shards: 0.0 when every worker performs the same
    number of iterations, growing to ``num_workers - 1`` when one worker
    does all the work.  The driver uses it to decide when straggler
    mitigation (work-stealing across the per-worker shard queues) is worth
    arming: a skewed partition — or a measured epoch where one worker fell
    behind — pushes the statistic over the stealing threshold.
    """
    return occupancy_skew(per_worker_iterations)


class ClusterCostModel:
    """Predict and audit the wall-clock of measured cluster traces."""

    def __init__(self, params: Optional[ClusterCostParameters] = None) -> None:
        self.params = params or ClusterCostParameters()

    # ------------------------------------------------------------------ #
    def parallel_efficiency(
        self, conflict_rate: float, num_workers: int, *, occupancy: float = 0.0
    ) -> float:
        """Efficiency as a function of measured conflicts and shard skew."""
        if num_workers <= 1:
            return 1.0
        p = self.params
        drag = 1.0 + p.contention_penalty * max(conflict_rate, 0.0)
        drag += p.occupancy_penalty * max(occupancy, 0.0)
        return p.base_parallel_efficiency / drag

    def epoch_serial_seconds(self, epoch: EpochEvent, *, blocks: int = 0) -> float:
        """Serial compute seconds of one epoch's measured operation counts."""
        p = self.params
        return (
            p.coord_write_cost * epoch.sparse_coordinate_updates
            + p.dense_coord_cost * epoch.dense_coordinate_updates
            + p.sample_draw_cost * epoch.sample_draws
            + p.block_overhead * blocks
        )

    def epoch_wall_clock(
        self,
        epoch: EpochEvent,
        num_workers: int,
        *,
        occupancy: float = 0.0,
        blocks: int = 0,
    ) -> float:
        """Predicted wall-clock seconds of one measured epoch."""
        serial = self.epoch_serial_seconds(epoch, blocks=blocks)
        sync = self.params.epoch_sync_cost * max(num_workers, 1)
        if num_workers <= 1:
            return serial + sync
        eff = self.parallel_efficiency(epoch.conflict_rate, num_workers, occupancy=occupancy)
        return serial / (num_workers * eff) + sync

    def trace_wall_clock(
        self,
        trace: ExecutionTrace,
        num_workers: int,
        *,
        occupancies: Optional[Sequence[float]] = None,
        blocks_per_epoch: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Cumulative predicted seconds after every epoch (CostModel mirror)."""
        times = []
        for k, epoch in enumerate(trace.epochs):
            occ = float(occupancies[k]) if occupancies is not None else 0.0
            blocks = int(blocks_per_epoch[k]) if blocks_per_epoch is not None else 0
            times.append(
                self.epoch_wall_clock(epoch, num_workers, occupancy=occ, blocks=blocks)
            )
        return np.cumsum(np.asarray(times, dtype=np.float64))

    # ------------------------------------------------------------------ #
    def compare_measured(
        self,
        trace: ExecutionTrace,
        measured_epoch_seconds: Sequence[float],
        num_workers: int,
        *,
        occupancies: Optional[Sequence[float]] = None,
    ) -> List[Dict[str, float]]:
        """Per-epoch predicted vs measured seconds (ratio > 1 = model optimistic)."""
        rows: List[Dict[str, float]] = []
        for k, epoch in enumerate(trace.epochs):
            occ = float(occupancies[k]) if occupancies is not None else 0.0
            predicted = self.epoch_wall_clock(epoch, num_workers, occupancy=occ)
            measured = float(measured_epoch_seconds[k])
            rows.append(
                {
                    "epoch": float(epoch.epoch),
                    "predicted_seconds": predicted,
                    "measured_seconds": measured,
                    "measured_over_predicted": measured / predicted if predicted > 0 else float("inf"),
                    "conflict_rate": epoch.conflict_rate,
                    "occupancy_skew": occ,
                }
            )
        return rows


def compare_traces(measured: ExecutionTrace, simulated: ExecutionTrace) -> Dict[str, float]:
    """Side-by-side staleness/conflict summary of a measured vs simulated run.

    Both traces use the same :class:`EpochEvent` record type, so the
    cluster's *measured* counters can be checked against what the
    perturbed-iterate simulator *assumed* for the same workload — the
    empirical closure of the Section 3.1 model.
    """
    def _summary(trace: ExecutionTrace, prefix: str) -> Dict[str, float]:
        iters = max(trace.total_iterations, 1)
        stale = sum(e.stale_reads for e in trace.epochs)
        max_delay = max((e.max_observed_delay for e in trace.epochs), default=0)
        return {
            f"{prefix}_iterations": float(trace.total_iterations),
            f"{prefix}_conflict_rate": trace.conflict_rate(),
            f"{prefix}_stale_read_fraction": stale / iters,
            f"{prefix}_max_observed_delay": float(max_delay),
        }

    out = _summary(measured, "measured")
    out.update(_summary(simulated, "simulated"))
    sim_rate = out["simulated_conflict_rate"]
    out["conflict_rate_ratio"] = (
        out["measured_conflict_rate"] / sim_rate if sim_rate > 0 else float("inf")
    )
    return out


__all__ = [
    "ClusterCostParameters",
    "ClusterCostModel",
    "occupancy_skew",
    "work_skew",
    "compare_traces",
]
