"""Shared-memory arena backing the parameter-server cluster.

The driver allocates every cross-process buffer — the sharded parameter
vector, the read-only dataset arrays, the per-worker counter rows and the
conflict-detection stamps — as named ``multiprocessing.shared_memory``
blocks through one :class:`ShmArena`.  Workers receive the arena's
picklable :class:`ArenaSpec` and re-attach zero-copy NumPy views onto the
same physical pages; nothing but the spec (names, shapes, dtypes) ever
crosses the process boundary.

Ownership is explicit: the creating (driver) process unlinks the blocks,
attaching workers only close their mappings.  Because every attacher is a
*child* of the owner, all registrations land in the one shared
``resource_tracker`` and are balanced by the owner's ``unlink()`` — no
leaked-segment warnings, no premature teardown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable description of an arena's blocks: name → (shm name, shape, dtype)."""

    blocks: Tuple[Tuple[str, str, Tuple[int, ...], str], ...]


class ShmArena:
    """A named collection of shared-memory-backed NumPy arrays.

    Use :meth:`create` in the owning (driver) process and
    :meth:`ShmArena.attach` in workers.  Arrays are plain ``ndarray`` views
    over the shared pages — every NumPy operation on them is visible to all
    attached processes, with exactly the lock-free semantics the paper's
    Hogwild setting prescribes.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._arrays: Dict[str, np.ndarray] = {}
        self._meta: Dict[str, Tuple[str, Tuple[int, ...], str]] = {}
        self._owner = False

    # ------------------------------------------------------------------ #
    def create(
        self, name: str, shape: Tuple[int, ...], dtype: str = "float64",
        initial: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Allocate one block and return its NumPy view (zero-filled)."""
        if name in self._segments:
            raise ValueError(f"block {name!r} already exists")
        self._owner = True
        nbytes = max(int(np.prod(shape)) * np.dtype(dtype).itemsize, 1)
        seg = shared_memory.SharedMemory(create=True, size=nbytes)
        arr = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
        if initial is not None:
            arr[...] = initial
        else:
            arr.fill(0)
        self._segments[name] = seg
        self._arrays[name] = arr
        self._meta[name] = (seg.name, tuple(int(s) for s in shape), str(np.dtype(dtype)))
        return arr

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "ShmArena":
        """Attach to every block of ``spec`` (worker side; non-owning)."""
        arena = cls()
        for name, shm_name, shape, dtype in spec.blocks:
            seg = shared_memory.SharedMemory(name=shm_name)
            arena._segments[name] = seg
            arena._arrays[name] = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
            arena._meta[name] = (shm_name, shape, dtype)
        return arena

    def spec(self) -> ArenaSpec:
        """The picklable description workers attach with."""
        return ArenaSpec(
            blocks=tuple((name, *self._meta[name]) for name in self._meta)
        )

    # ------------------------------------------------------------------ #
    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def close(self) -> None:
        """Release the mappings; the owner also unlinks the segments.

        A NumPy view still referencing a segment makes ``mmap.close()``
        raise ``BufferError``; the mapping then simply lives until the view
        is garbage-collected (or the process exits).  Unlinking is
        independent of the mapping on POSIX, so the owner always removes
        the name — no segment outlives the run either way.
        """
        self._arrays.clear()
        for seg in self._segments.values():
            if self._owner:
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            try:
                seg.close()
            except BufferError:  # view still referenced somewhere
                pass
        self._segments.clear()
        self._meta.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["ShmArena", "ArenaSpec"]
