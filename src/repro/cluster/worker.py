"""The process worker of the parameter-server cluster.

Each worker is a real OS process (no GIL sharing with its peers).  It owns
one shard of the *samples* (a :class:`repro.core.partition.WorkerShard`,
exactly as in the simulated engines) and executes its per-epoch sample
sequence in macro-blocks through the kernel batch primitives:

1. ``CSRMatrix.gather_rows`` — one gather of the block's rows from the
   shared (read-only) dataset arrays;
2. ``KernelBackend.segment_margins`` — all block margins against the live
   shared parameter buffer (other workers keep writing underneath: these
   reads are genuinely stale, not simulated-stale);
3. the solver rule's batched coefficients (``Objective.batch_grad_coeffs``);
4. ``KernelBackend.scatter_add`` — one lock-free index-compressed write of
   the whole block into the sharded parameter buffer (``np.add.at`` over
   shared memory: last-writer-wins per coordinate, the Hogwild semantics).

Around the arithmetic the worker measures what the simulator *models*: the
update lag between its read and its write (the perturbed-iterate delay τ),
which coordinates were overwritten by other workers in that window
(conflicts), and how its writes spread over the coordinate shards
(occupancy).  The driver folds those counters into the same
:class:`~repro.async_engine.events.EpochEvent` records the simulator
emits, so measured and simulated traces are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cluster.shm import ArenaSpec, ShmArena
from repro.core.sampler import SampleSequence
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import segment_bool_any
from repro.utils.rng import as_rng

# Column layout of the per-worker counter rows (int64, one row per worker;
# a worker only ever writes its own row, so no cross-process races).
COL_ITERATIONS = 0
COL_SPARSE_WRITES = 1
COL_CONFLICTS = 2
COL_STALE_READS = 3
COL_DELAY_SUM = 4
COL_MAX_DELAY = 5
COL_DENSE_WRITES = 6
COL_SAMPLE_DRAWS = 7
COL_BLOCKS = 8
NUM_COUNTER_COLS = 9

#: Barrier wait timeout (seconds); a worker crash aborts the barrier long
#: before this, the timeout only guards against silent hangs.
BARRIER_TIMEOUT = 300.0


@dataclass
class WorkerTask:
    """Everything one process worker needs (fully picklable).

    The heavy state (dataset, parameter shards, counters) is *not* in here
    — workers attach to it through ``arena``; the task carries only the
    worker's own sample shard and scalar configuration.
    """

    worker_id: int
    num_workers: int
    arena: ArenaSpec
    rows: np.ndarray                    # global row indices of the sample shard
    probabilities: np.ndarray           # local sampling distribution over rows
    step_weights: np.ndarray            # per-local-sample re-weighting 1/(n_a p_i), clipped
    iterations_per_epoch: int
    epochs: int
    step_size: float
    objective: object                   # repro Objective (picklable)
    rule: str = "sgd"                   # "sgd" | "svrg"
    skip_dense_term: bool = False
    count_sample_draws: bool = True
    batch_size: int = 256
    seed: int = 0
    kernel_name: Optional[str] = None
    has_flat_of: bool = False
    dim: int = 0


def run_worker(task: WorkerTask, barrier) -> None:
    """Process entry point: run ``task.epochs`` epochs against the arena.

    The protocol is two barrier waits per epoch: the first releases the
    epoch (the driver has finished its preparation — e.g. SVRG's µ), the
    second ends it (the driver may now snapshot weights and read counters).
    Any exception aborts the barrier so neither side dead-waits.
    """
    import threading

    from repro.kernels.registry import resolve_backend
    from repro.objectives.regularizers import NoRegularizer

    arena = ShmArena.attach(task.arena)
    try:
        _worker_loop(task, barrier, arena, resolve_backend(task.kernel_name), NoRegularizer)
    except threading.BrokenBarrierError:
        pass
    except BaseException:
        try:
            arena["errors"][task.worker_id] = 1
        except Exception:
            pass
        barrier.abort()
        raise
    finally:
        arena.close()


def _worker_loop(task: WorkerTask, barrier, arena: ShmArena, kernel, no_reg_cls) -> None:
    wid = task.worker_id
    w = arena["weights"]                       # flat (sharded) layout, float64[dim]
    X = CSRMatrix(
        data=arena["x_data"],
        indices=arena["x_indices"],
        indptr=arena["x_indptr"],
        n_cols=task.dim,
    )
    y = arena["y"]
    flat_of = arena["flat_of"] if task.has_flat_of else None
    shard_of = arena["shard_of"]
    counters = arena["counters"]
    shard_writes = arena["shard_writes"]
    progress = arena["progress"]
    last_writer = arena["last_writer"]
    write_clock = arena["write_clock"]
    num_shards = shard_writes.shape[1]

    obj = task.objective
    lam = float(task.step_size)
    reg = getattr(obj, "regularizer", None)
    use_reg = reg is not None and not isinstance(reg, no_reg_cls)
    rng = as_rng(task.seed)
    block = max(1, int(task.batch_size))
    is_svrg = task.rule == "svrg"
    mu_flat = arena["mu"] if is_svrg else None
    snap_margins = arena["snap_margins"] if is_svrg else None
    d = task.dim

    for _epoch in range(task.epochs):
        epoch_seed = int(rng.integers(0, 2**31 - 1))
        barrier.wait(timeout=BARRIER_TIMEOUT)    # --- epoch start
        sequence = SampleSequence.generate(
            task.probabilities, task.iterations_per_epoch, seed=epoch_seed
        ).indices
        dense_step = None
        if is_svrg and not task.skip_dense_term:
            dense_step = -lam * mu_flat.copy()

        for start in range(0, sequence.size, block):
            local = sequence[start : start + block]
            n_iter = int(local.size)
            rows = task.rows[local]
            step_w = task.step_weights[local]

            # Read side: logical clock before the stale read.
            t_read = int(progress.sum())
            idx, val, lengths = X.gather_rows(rows)
            fidx = flat_of[idx] if flat_of is not None else idx
            margins = kernel.segment_margins(fidx, val, lengths, w)
            y_rows = y[rows]

            if is_svrg:
                coef_w = obj.batch_grad_coeffs(margins, y_rows)
                coef_s = obj.batch_grad_coeffs(snap_margins[rows], y_rows)
                entry = -lam * np.repeat(step_w * (coef_w - coef_s), lengths) * val
            else:
                coeffs = obj.batch_grad_coeffs(margins, y_rows)
                entry = np.repeat(step_w * coeffs, lengths) * val
                if use_reg and fidx.size:
                    entry = entry + np.repeat(step_w, lengths) * reg.grad_coords(w, fidx)
                entry = -lam * entry

            # Write side: what landed from other workers while we computed?
            t_write = int(progress.sum())
            delay = t_write - t_read
            if fidx.size:
                foreign = (
                    (last_writer[fidx] != wid)
                    & (last_writer[fidx] >= 0)
                    & (write_clock[fidx] > t_read)
                )
                conflicts = int(np.count_nonzero(segment_bool_any(foreign, lengths)))
            else:
                conflicts = 0

            if dense_step is not None:
                w += n_iter * dense_step
            kernel.scatter_add(w, fidx, entry)
            if fidx.size:
                write_clock[fidx] = t_write
                last_writer[fidx] = wid
                # shard_of is indexed by *global* coordinate, not flat position.
                shard_writes[wid] += np.bincount(shard_of[idx], minlength=num_shards)
            progress[wid] += n_iter

            row_c = counters[wid]
            row_c[COL_ITERATIONS] += n_iter
            row_c[COL_SPARSE_WRITES] += (2 if is_svrg else 1) * int(lengths.sum())
            row_c[COL_CONFLICTS] += conflicts
            row_c[COL_DELAY_SUM] += delay * n_iter
            row_c[COL_BLOCKS] += 1
            if delay > 0:
                row_c[COL_STALE_READS] += n_iter
                if delay > row_c[COL_MAX_DELAY]:
                    row_c[COL_MAX_DELAY] = delay
            if dense_step is not None:
                row_c[COL_DENSE_WRITES] += n_iter * d
            if task.count_sample_draws:
                row_c[COL_SAMPLE_DRAWS] += n_iter

        barrier.wait(timeout=BARRIER_TIMEOUT)    # --- epoch end


__all__ = [
    "WorkerTask",
    "run_worker",
    "NUM_COUNTER_COLS",
    "COL_ITERATIONS",
    "COL_SPARSE_WRITES",
    "COL_CONFLICTS",
    "COL_STALE_READS",
    "COL_DELAY_SUM",
    "COL_MAX_DELAY",
    "COL_DENSE_WRITES",
    "COL_SAMPLE_DRAWS",
    "COL_BLOCKS",
    "BARRIER_TIMEOUT",
]
