"""The process worker of the parameter-server cluster.

Each worker is a real OS process (no GIL sharing with its peers).  It owns
one shard of the *samples* (a :class:`repro.core.partition.WorkerShard`,
exactly as in the simulated engines) and executes its per-epoch sample
sequence in macro-blocks through the kernel batch primitives:

1. ``CSRMatrix.gather_rows`` — one gather of the block's rows from the
   shared (read-only) dataset arrays;
2. ``KernelBackend.segment_margins`` — all block margins against the live
   shared parameter buffer (other workers keep writing underneath: these
   reads are genuinely stale, not simulated-stale);
3. the registered update rule's block computation
   (:meth:`repro.rules.base.UpdateRuleKernel.block_entry_weights` — the
   *same* definition the simulated and threaded tiers execute, fed flat
   shard-layout coordinates);
4. ``KernelBackend.scatter_add`` — one lock-free index-compressed write of
   the whole block into the sharded parameter buffer (``np.add.at`` over
   shared memory: last-writer-wins per coordinate, the Hogwild semantics).

Since the elasticity work, an epoch's sample sequence is not private to
its owner: each worker publishes its sequence and a *block queue* into the
arena at epoch start, claims blocks one at a time under a shared lock, and
— when the driver arms work-stealing for the epoch — a worker that drains
its own queue steals tail blocks from the most-loaded peer instead of
idling at the barrier.  Stolen blocks execute the victim's samples with
the victim's step weights; the measured counters (and a ``COL_STEALS``
tally) are credited to the thief.  Every block is claimed exactly once,
so the epoch's total work is invariant under stealing.

Determinism of the sample stream is seed-table based: the driver derives
one seed per ``(worker, epoch)`` from its own root seed and passes each
worker its slice (``task.epoch_seeds``), so a replacement worker spawned
after a failure — or a resumed run — replays exactly the sequences the
original fleet would have drawn.

Around the arithmetic the worker measures what the simulator *models*: the
update lag between its read and its write (the perturbed-iterate delay τ),
which coordinates were overwritten by other workers in that window
(conflicts), and how its writes spread over the coordinate shards
(occupancy).  The driver folds those counters into the same
:class:`~repro.async_engine.events.EpochEvent` records the simulator
emits, so measured and simulated traces are directly comparable.

Rule-specific shared state rides in the arena: SVRG's per-epoch snapshot
blocks (``mu``, ``snap_margins``, refreshed by the driver between epochs)
and SAGA's coefficient table + lock-free running average (``saga_coefs``,
``saga_avg``).  SAGA's table rows are owned per *sample shard*, so the
driver never arms stealing for SAGA runs (a thief would write rows the
owner assumes private); the task-level ``steal_ok`` flag enforces it on
the worker side too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.cluster.shm import ArenaSpec, ShmArena
from repro.core.sampler import SampleSequence
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import segment_bool_any
from repro.utils.rng import as_rng

# Column layout of the per-worker counter rows (int64, one row per worker;
# a worker only ever writes its own row, so no cross-process races).
COL_ITERATIONS = 0
COL_SPARSE_WRITES = 1
COL_CONFLICTS = 2
COL_STALE_READS = 3
COL_DELAY_SUM = 4
COL_MAX_DELAY = 5
COL_DENSE_WRITES = 6
COL_SAMPLE_DRAWS = 7
COL_BLOCKS = 8
COL_STEALS = 9
NUM_COUNTER_COLS = 10

#: Barrier wait timeout (seconds); a worker crash aborts the barrier long
#: before this, the timeout only guards against silent hangs.
BARRIER_TIMEOUT = 300.0

#: Poll interval (seconds) of the generation-barrier wait loops.
BARRIER_POLL = 0.0005


class BarrierAborted(RuntimeError):
    """The driver aborted the epoch barrier (failure or shutdown)."""


def barrier_phase(arrive: np.ndarray, state: np.ndarray, wid: int, gen: int) -> None:
    """One worker-side crossing of the shared-memory generation barrier.

    ``multiprocessing.Barrier`` is built on shared locks and condition
    variables; a worker SIGKILLed while parked in (or passing through) one
    of them corrupts the primitive for every survivor — ``notify`` blocks
    forever on the dead waiter's wake handshake, and even ``abort`` needs
    the very mutex the corpse may hold.  A fault-tolerant tier therefore
    cannot use it.  This barrier keeps every participant on *single-writer*
    shared-memory words instead: a worker publishes its arrival by writing
    its own slot of ``arrive`` (one aligned int64 store, nothing a dying
    process can leave half-taken), then polls the driver-owned release
    generation in ``state[0]``; ``state[1]`` is the driver's abort flag.
    Killing any participant at any instruction leaves the others fully
    functional — detection and recovery stay entirely with the driver.
    """
    arrive[wid] = gen
    deadline = time.monotonic() + BARRIER_TIMEOUT
    while int(state[0]) < gen:
        if int(state[1]):
            raise BarrierAborted("driver aborted the epoch barrier")
        if time.monotonic() > deadline:
            raise BarrierAborted("epoch barrier timed out (driver gone?)")
        time.sleep(BARRIER_POLL)


@dataclass
class WorkerTask:
    """Everything one process worker needs (fully picklable).

    The heavy state (dataset, parameter shards, counters) is *not* in here
    — workers attach to it through ``arena``; the task carries only the
    worker's own sample shard and scalar configuration.
    """

    worker_id: int
    num_workers: int
    arena: ArenaSpec
    rows: np.ndarray                    # global row indices of the sample shard
    probabilities: np.ndarray           # local sampling distribution over rows
    step_weights: np.ndarray            # per-local-sample re-weighting 1/(n_a p_i), clipped
    iterations_per_epoch: int
    epochs: int                         # epochs left to run from start_epoch
    step_size: float
    objective: object                   # repro Objective (picklable)
    rule: str = "sgd"                   # registry name from repro.rules
    skip_dense_term: bool = False
    count_sample_draws: bool = True
    batch_size: int = 256
    seed: int = 0                       # fallback seed when epoch_seeds is absent
    kernel_name: Optional[str] = None
    has_flat_of: bool = False
    dim: int = 0
    start_epoch: int = 0                # global index of the first epoch to run
    epoch_seeds: Optional[np.ndarray] = None  # int64[epochs], one per epoch
    steal_ok: bool = True               # rule allows executing stolen blocks


def run_worker(task: WorkerTask, lock=None) -> None:
    """Process entry point: run ``task.epochs`` epochs against the arena.

    The protocol is two generation-barrier crossings per epoch (see
    :func:`barrier_phase`): the first releases the epoch (the driver has
    finished its preparation — e.g. SVRG's µ), the second ends it (the
    driver snapshots weights and reads counters while everyone is parked).
    ``lock`` serialises block-queue claims (own-queue pops and steals).
    On any exception the worker raises its ``errors`` flag — the driver's
    arrival poll notices — and re-raises, exiting nonzero.
    """
    import threading

    from repro.kernels.registry import resolve_backend

    if lock is None:  # single-process callers; claims need no cross-process lock
        lock = threading.Lock()
    arena = ShmArena.attach(task.arena)
    try:
        _worker_loop(task, lock, arena, resolve_backend(task.kernel_name))
    except BarrierAborted:
        pass
    except BaseException:
        try:
            arena["errors"][task.worker_id] = 1
        except Exception:
            pass
        raise
    finally:
        arena.close()


def build_rule(rule: str, objective, step_size: float, *, skip_dense_term: bool = False):
    """Instantiate a cluster-side update rule from the registry.

    The SVRG family shares one class (``skip_dense_term`` selects the
    ablation); everything else maps straight through :func:`make_rule`.
    The driver (trace-metadata prototype, SAGA table init) and the workers
    build their rule through this one mapping so they can never diverge.
    """
    from repro.rules import make_rule

    if rule in ("svrg", "svrg_skip_dense"):
        return make_rule(
            "svrg",
            objective,
            float(step_size),
            skip_dense_term=skip_dense_term or rule == "svrg_skip_dense",
        )
    return make_rule(rule, objective, float(step_size))


def build_task_rule(task: WorkerTask):
    """The worker-process entry to :func:`build_rule`."""
    return build_rule(
        task.rule, task.objective, task.step_size,
        skip_dense_term=task.skip_dense_term,
    )


def _claim_block(
    lock, wid: int, tag: int, queue_next, queue_end, seq_epoch, steal_ok: bool
) -> Optional[Tuple[int, int]]:
    """Claim the next block: own queue head first, else steal a tail block.

    Returns ``(victim, block_index)`` or ``None`` when no claimable block
    remains.  Steal victims must have *published* their queue for this
    epoch (``seq_epoch == tag``) — a replacement fleet resets the tags, so
    a thief can never execute a stale queue from before a failure.  All
    bounds are read and advanced under ``lock``: every block is claimed
    exactly once, by exactly one worker.
    """
    with lock:
        if seq_epoch[wid] == tag and queue_next[wid] < queue_end[wid]:
            block = int(queue_next[wid])
            queue_next[wid] += 1
            return wid, block
        if not steal_ok:
            return None
        victim, best_remaining = -1, 0
        for peer in range(seq_epoch.size):
            if peer == wid or seq_epoch[peer] != tag:
                continue
            remaining = int(queue_end[peer] - queue_next[peer])
            if remaining > best_remaining:
                victim, best_remaining = peer, remaining
        if victim < 0:
            return None
        queue_end[victim] -= 1
        return victim, int(queue_end[victim])


def _worker_loop(task: WorkerTask, lock, arena: ShmArena, kernel) -> None:
    wid = task.worker_id
    barrier_arrive = arena["barrier_arrive"]
    barrier_state = arena["barrier_state"]
    w = arena["weights"]                       # flat (sharded) layout, float64[dim]
    X = CSRMatrix(
        data=arena["x_data"],
        indices=arena["x_indices"],
        indptr=arena["x_indptr"],
        n_cols=task.dim,
    )
    y = arena["y"]
    flat_of = arena["flat_of"] if task.has_flat_of else None
    shard_of = arena["shard_of"]
    counters = arena["counters"]
    shard_writes = arena["shard_writes"]
    progress = arena["progress"]
    last_writer = arena["last_writer"]
    write_clock = arena["write_clock"]
    num_shards = shard_writes.shape[1]

    # Block-queue machinery (shared with every peer; see module docstring).
    sequences = arena["sequences"]
    seq_epoch = arena["seq_epoch"]
    queue_next = arena["queue_next"]
    queue_end = arena["queue_end"]
    queue_block = arena["queue_block"]
    queue_iters = arena["queue_iters"]
    steal_enabled = arena["steal_enabled"]
    all_rows = arena["all_rows"]
    all_step_weights = arena["all_step_weights"]
    row_offsets = arena["row_offsets"]

    rule = build_task_rule(task)
    if task.epoch_seeds is not None:
        epoch_seeds = np.asarray(task.epoch_seeds, dtype=np.int64)
    else:
        rng = as_rng(task.seed)
        epoch_seeds = rng.integers(0, 2**31 - 1, size=max(task.epochs, 1), dtype=np.int64)
    block = max(1, int(task.batch_size))
    n_blocks = -(-task.iterations_per_epoch // block)
    is_svrg = task.rule in ("svrg", "svrg_skip_dense")
    mu_flat = arena["mu"] if is_svrg else None
    snap_margins = arena["snap_margins"] if is_svrg else None
    if task.rule == "saga":
        # Table rows of this worker's shard are written by this worker
        # only; the running average is genuinely shared (Hogwild writes).
        rule.attach_state(arena["saga_coefs"], arena["saga_avg"], X.n_rows)
    grad_nnz_mult = int(rule.grad_nnz_multiplier)

    for k in range(task.epochs):
        tag = task.start_epoch + k
        barrier_phase(barrier_arrive, barrier_state, wid, 2 * k + 1)  # epoch start
        steal_ok = (
            task.steal_ok and task.num_workers > 1 and int(steal_enabled[0]) == 1
        )
        sequence = SampleSequence.generate(
            task.probabilities, task.iterations_per_epoch, seed=int(epoch_seeds[k])
        ).indices
        sequences[wid, : sequence.size] = sequence
        if is_svrg:
            # Adopt the driver's refreshed snapshot state for this epoch
            # (mu arrives in the flat layout; the rule math is layout-blind).
            rule.set_snapshot(mu_flat.copy(), snap_margins)

        # Publish this worker's block queue; the tag goes last so a peer
        # that observes it sees fully initialised bounds.
        with lock:
            queue_next[wid] = 0
            queue_end[wid] = n_blocks
            seq_epoch[wid] = tag

        while True:
            if int(barrier_state[1]):  # driver aborted (peer died) — stop early
                raise BarrierAborted("driver aborted the epoch barrier")
            claim = _claim_block(lock, wid, tag, queue_next, queue_end, seq_epoch, steal_ok)
            if claim is None:
                break
            victim, block_index = claim
            vblock = int(queue_block[victim])
            viters = int(queue_iters[victim])
            start = block_index * vblock
            local = sequences[victim, start : min(start + vblock, viters)]
            n_iter = int(local.size)
            if n_iter == 0:
                continue
            base = int(row_offsets[victim])
            rows = all_rows[base + local]
            step_w = all_step_weights[base + local]

            # Read side: logical clock before the stale read.
            t_read = int(progress.sum())
            idx, val, lengths = X.gather_rows(rows)
            fidx = flat_of[idx] if flat_of is not None else idx
            margins = kernel.segment_margins(fidx, val, lengths, w)

            entry = rule.block_entry_weights(
                w=w,
                rows=rows,
                y=y[rows],
                margins=margins,
                step_weights=step_w,
                idx=fidx,
                val=val,
                lengths=lengths,
            )
            dense_step = rule.dense_delta

            # Write side: what landed from other workers while we computed?
            t_write = int(progress.sum())
            delay = t_write - t_read
            if fidx.size:
                foreign = (
                    (last_writer[fidx] != wid)
                    & (last_writer[fidx] >= 0)
                    & (write_clock[fidx] > t_read)
                )
                conflicts = int(np.count_nonzero(segment_bool_any(foreign, lengths)))
            else:
                conflicts = 0

            if dense_step is not None:
                w += n_iter * dense_step
            kernel.scatter_add(w, fidx, entry)
            if fidx.size:
                write_clock[fidx] = t_write
                last_writer[fidx] = wid
                # shard_of is indexed by *global* coordinate, not flat position.
                shard_writes[wid] += np.bincount(shard_of[idx], minlength=num_shards)
            progress[wid] += n_iter

            row_c = counters[wid]
            row_c[COL_ITERATIONS] += n_iter
            row_c[COL_SPARSE_WRITES] += grad_nnz_mult * int(lengths.sum())
            row_c[COL_CONFLICTS] += conflicts
            row_c[COL_DELAY_SUM] += delay * n_iter
            row_c[COL_BLOCKS] += 1
            if victim != wid:
                row_c[COL_STEALS] += 1
            if delay > 0:
                row_c[COL_STALE_READS] += n_iter
                if delay > row_c[COL_MAX_DELAY]:
                    row_c[COL_MAX_DELAY] = delay
            if dense_step is not None:
                row_c[COL_DENSE_WRITES] += n_iter * int(dense_step.shape[0])
            if task.count_sample_draws:
                row_c[COL_SAMPLE_DRAWS] += n_iter

        barrier_phase(barrier_arrive, barrier_state, wid, 2 * k + 2)  # epoch end


__all__ = [
    "WorkerTask",
    "run_worker",
    "barrier_phase",
    "BarrierAborted",
    "build_rule",
    "build_task_rule",
    "NUM_COUNTER_COLS",
    "COL_ITERATIONS",
    "COL_SPARSE_WRITES",
    "COL_CONFLICTS",
    "COL_STALE_READS",
    "COL_DELAY_SUM",
    "COL_MAX_DELAY",
    "COL_DENSE_WRITES",
    "COL_SAMPLE_DRAWS",
    "COL_BLOCKS",
    "COL_STEALS",
    "BARRIER_TIMEOUT",
]
