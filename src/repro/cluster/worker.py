"""The process worker of the parameter-server cluster.

Each worker is a real OS process (no GIL sharing with its peers).  It owns
one shard of the *samples* (a :class:`repro.core.partition.WorkerShard`,
exactly as in the simulated engines) and executes its per-epoch sample
sequence in macro-blocks through the kernel batch primitives:

1. ``CSRMatrix.gather_rows`` — one gather of the block's rows from the
   shared (read-only) dataset arrays;
2. ``KernelBackend.segment_margins`` — all block margins against the live
   shared parameter buffer (other workers keep writing underneath: these
   reads are genuinely stale, not simulated-stale);
3. the registered update rule's block computation
   (:meth:`repro.rules.base.UpdateRuleKernel.block_entry_weights` — the
   *same* definition the simulated and threaded tiers execute, fed flat
   shard-layout coordinates);
4. ``KernelBackend.scatter_add`` — one lock-free index-compressed write of
   the whole block into the sharded parameter buffer (``np.add.at`` over
   shared memory: last-writer-wins per coordinate, the Hogwild semantics).

Around the arithmetic the worker measures what the simulator *models*: the
update lag between its read and its write (the perturbed-iterate delay τ),
which coordinates were overwritten by other workers in that window
(conflicts), and how its writes spread over the coordinate shards
(occupancy).  The driver folds those counters into the same
:class:`~repro.async_engine.events.EpochEvent` records the simulator
emits, so measured and simulated traces are directly comparable.

Rule-specific shared state rides in the arena: SVRG's per-epoch snapshot
blocks (``mu``, ``snap_margins``, refreshed by the driver between epochs)
and SAGA's coefficient table + lock-free running average (``saga_coefs``,
``saga_avg`` — the table rows of a worker's shard are touched by that
worker only, the average is updated Hogwild-style by everyone).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cluster.shm import ArenaSpec, ShmArena
from repro.core.sampler import SampleSequence
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import segment_bool_any
from repro.utils.rng import as_rng

# Column layout of the per-worker counter rows (int64, one row per worker;
# a worker only ever writes its own row, so no cross-process races).
COL_ITERATIONS = 0
COL_SPARSE_WRITES = 1
COL_CONFLICTS = 2
COL_STALE_READS = 3
COL_DELAY_SUM = 4
COL_MAX_DELAY = 5
COL_DENSE_WRITES = 6
COL_SAMPLE_DRAWS = 7
COL_BLOCKS = 8
NUM_COUNTER_COLS = 9

#: Barrier wait timeout (seconds); a worker crash aborts the barrier long
#: before this, the timeout only guards against silent hangs.
BARRIER_TIMEOUT = 300.0


@dataclass
class WorkerTask:
    """Everything one process worker needs (fully picklable).

    The heavy state (dataset, parameter shards, counters) is *not* in here
    — workers attach to it through ``arena``; the task carries only the
    worker's own sample shard and scalar configuration.
    """

    worker_id: int
    num_workers: int
    arena: ArenaSpec
    rows: np.ndarray                    # global row indices of the sample shard
    probabilities: np.ndarray           # local sampling distribution over rows
    step_weights: np.ndarray            # per-local-sample re-weighting 1/(n_a p_i), clipped
    iterations_per_epoch: int
    epochs: int
    step_size: float
    objective: object                   # repro Objective (picklable)
    rule: str = "sgd"                   # registry name from repro.rules
    skip_dense_term: bool = False
    count_sample_draws: bool = True
    batch_size: int = 256
    seed: int = 0
    kernel_name: Optional[str] = None
    has_flat_of: bool = False
    dim: int = 0


def run_worker(task: WorkerTask, barrier) -> None:
    """Process entry point: run ``task.epochs`` epochs against the arena.

    The protocol is two barrier waits per epoch: the first releases the
    epoch (the driver has finished its preparation — e.g. SVRG's µ), the
    second ends it (the driver may now snapshot weights and read counters).
    Any exception aborts the barrier so neither side dead-waits.
    """
    import threading

    from repro.kernels.registry import resolve_backend

    arena = ShmArena.attach(task.arena)
    try:
        _worker_loop(task, barrier, arena, resolve_backend(task.kernel_name))
    except threading.BrokenBarrierError:
        pass
    except BaseException:
        try:
            arena["errors"][task.worker_id] = 1
        except Exception:
            pass
        barrier.abort()
        raise
    finally:
        arena.close()


def build_rule(rule: str, objective, step_size: float, *, skip_dense_term: bool = False):
    """Instantiate a cluster-side update rule from the registry.

    The SVRG family shares one class (``skip_dense_term`` selects the
    ablation); everything else maps straight through :func:`make_rule`.
    The driver (trace-metadata prototype, SAGA table init) and the workers
    build their rule through this one mapping so they can never diverge.
    """
    from repro.rules import make_rule

    if rule in ("svrg", "svrg_skip_dense"):
        return make_rule(
            "svrg",
            objective,
            float(step_size),
            skip_dense_term=skip_dense_term or rule == "svrg_skip_dense",
        )
    return make_rule(rule, objective, float(step_size))


def build_task_rule(task: WorkerTask):
    """The worker-process entry to :func:`build_rule`."""
    return build_rule(
        task.rule, task.objective, task.step_size,
        skip_dense_term=task.skip_dense_term,
    )


def _worker_loop(task: WorkerTask, barrier, arena: ShmArena, kernel) -> None:
    wid = task.worker_id
    w = arena["weights"]                       # flat (sharded) layout, float64[dim]
    X = CSRMatrix(
        data=arena["x_data"],
        indices=arena["x_indices"],
        indptr=arena["x_indptr"],
        n_cols=task.dim,
    )
    y = arena["y"]
    flat_of = arena["flat_of"] if task.has_flat_of else None
    shard_of = arena["shard_of"]
    counters = arena["counters"]
    shard_writes = arena["shard_writes"]
    progress = arena["progress"]
    last_writer = arena["last_writer"]
    write_clock = arena["write_clock"]
    num_shards = shard_writes.shape[1]

    rule = build_task_rule(task)
    rng = as_rng(task.seed)
    block = max(1, int(task.batch_size))
    is_svrg = task.rule in ("svrg", "svrg_skip_dense")
    mu_flat = arena["mu"] if is_svrg else None
    snap_margins = arena["snap_margins"] if is_svrg else None
    if task.rule == "saga":
        # Table rows of this worker's shard are written by this worker
        # only; the running average is genuinely shared (Hogwild writes).
        rule.attach_state(arena["saga_coefs"], arena["saga_avg"], X.n_rows)
    grad_nnz_mult = int(rule.grad_nnz_multiplier)

    for _epoch in range(task.epochs):
        epoch_seed = int(rng.integers(0, 2**31 - 1))
        barrier.wait(timeout=BARRIER_TIMEOUT)    # --- epoch start
        sequence = SampleSequence.generate(
            task.probabilities, task.iterations_per_epoch, seed=epoch_seed
        ).indices
        if is_svrg:
            # Adopt the driver's refreshed snapshot state for this epoch
            # (mu arrives in the flat layout; the rule math is layout-blind).
            rule.set_snapshot(mu_flat.copy(), snap_margins)

        for start in range(0, sequence.size, block):
            local = sequence[start : start + block]
            n_iter = int(local.size)
            rows = task.rows[local]
            step_w = task.step_weights[local]

            # Read side: logical clock before the stale read.
            t_read = int(progress.sum())
            idx, val, lengths = X.gather_rows(rows)
            fidx = flat_of[idx] if flat_of is not None else idx
            margins = kernel.segment_margins(fidx, val, lengths, w)

            entry = rule.block_entry_weights(
                w=w,
                rows=rows,
                y=y[rows],
                margins=margins,
                step_weights=step_w,
                idx=fidx,
                val=val,
                lengths=lengths,
            )
            dense_step = rule.dense_delta

            # Write side: what landed from other workers while we computed?
            t_write = int(progress.sum())
            delay = t_write - t_read
            if fidx.size:
                foreign = (
                    (last_writer[fidx] != wid)
                    & (last_writer[fidx] >= 0)
                    & (write_clock[fidx] > t_read)
                )
                conflicts = int(np.count_nonzero(segment_bool_any(foreign, lengths)))
            else:
                conflicts = 0

            if dense_step is not None:
                w += n_iter * dense_step
            kernel.scatter_add(w, fidx, entry)
            if fidx.size:
                write_clock[fidx] = t_write
                last_writer[fidx] = wid
                # shard_of is indexed by *global* coordinate, not flat position.
                shard_writes[wid] += np.bincount(shard_of[idx], minlength=num_shards)
            progress[wid] += n_iter

            row_c = counters[wid]
            row_c[COL_ITERATIONS] += n_iter
            row_c[COL_SPARSE_WRITES] += grad_nnz_mult * int(lengths.sum())
            row_c[COL_CONFLICTS] += conflicts
            row_c[COL_DELAY_SUM] += delay * n_iter
            row_c[COL_BLOCKS] += 1
            if delay > 0:
                row_c[COL_STALE_READS] += n_iter
                if delay > row_c[COL_MAX_DELAY]:
                    row_c[COL_MAX_DELAY] = delay
            if dense_step is not None:
                row_c[COL_DENSE_WRITES] += n_iter * int(dense_step.shape[0])
            if task.count_sample_draws:
                row_c[COL_SAMPLE_DRAWS] += n_iter

        barrier.wait(timeout=BARRIER_TIMEOUT)    # --- epoch end


__all__ = [
    "WorkerTask",
    "run_worker",
    "build_rule",
    "build_task_rule",
    "NUM_COUNTER_COLS",
    "COL_ITERATIONS",
    "COL_SPARSE_WRITES",
    "COL_CONFLICTS",
    "COL_STALE_READS",
    "COL_DELAY_SUM",
    "COL_MAX_DELAY",
    "COL_DENSE_WRITES",
    "COL_SAMPLE_DRAWS",
    "COL_BLOCKS",
    "BARRIER_TIMEOUT",
]
