"""Least-squares / ridge-regression objective.

``f_i(w) = (1/2) (<x_i, w> - y_i)^2 (+ r(w))``.  Used in the test-suite as a
problem with a closed-form optimum, and as the regression example
application (the randomized-Kaczmarz connection referenced by the paper's
importance-sampling citations is exactly weighted SGD on this objective).
"""

from __future__ import annotations

import numpy as np

from repro.objectives.base import Objective
from repro.objectives.regularizers import L2Regularizer
from repro.sparse.csr import CSRMatrix


class LeastSquaresObjective(Objective):
    """Squared-error loss ``0.5 * (<x, w> - y)²`` with an optional regulariser."""

    name = "least_squares"
    is_classification = False

    @classmethod
    def ridge(cls, eta: float = 1e-4) -> "LeastSquaresObjective":
        """Ridge regression: squared error + ``(eta/2) ||w||²``."""
        return cls(regularizer=L2Regularizer(eta))

    # -- scalar hot path ------------------------------------------------ #
    def sample_loss(self, w: np.ndarray, x_idx: np.ndarray, x_val: np.ndarray, y: float) -> float:
        resid = self.sample_margin(w, x_idx, x_val) - y
        return 0.5 * resid * resid

    def _loss_derivative(self, margin_or_pred: float, y: float) -> float:
        return float(margin_or_pred - y)

    # -- vectorised ------------------------------------------------------ #
    def _vector_loss(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        resid = margins - y
        return 0.5 * resid * resid

    def _vector_loss_derivative(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        return margins - y

    # -- smoothness ------------------------------------------------------ #
    def smoothness_coefficient(self) -> float:
        """The squared error is 1-smooth in the prediction."""
        return 1.0

    # -- extras ----------------------------------------------------------- #
    def solve_exact(self, X: CSRMatrix, y: np.ndarray) -> np.ndarray:
        """Closed-form (regularised) least-squares solution, for testing.

        Solves ``(X^T X / n + eta I) w = X^T y / n`` densely; intended only
        for small problems in the test-suite.
        """
        dense = X.to_dense()
        n = max(X.n_rows, 1)
        gram = dense.T @ dense / n
        eta = getattr(self.regularizer, "eta", 0.0) if isinstance(self.regularizer, L2Regularizer) else 0.0
        gram += (eta + 1e-12) * np.eye(X.n_cols)
        rhs = dense.T @ y / n
        return np.linalg.solve(gram, rhs)


__all__ = ["LeastSquaresObjective"]
