"""Standard (non-squared) hinge-loss SVM objective.

Included as an additional baseline objective; note the hinge loss is not
smooth, so its "Lipschitz constants" are gradient-norm bounds rather than
smoothness constants — still a perfectly valid importance measure (the
Needell et al. analysis the paper builds on covers exactly this case).
"""

from __future__ import annotations

import numpy as np

from repro.objectives.base import Objective
from repro.sparse.csr import CSRMatrix


class HingeObjective(Objective):
    """Hinge loss ``max(0, 1 - y <x, w>)`` with an optional regulariser."""

    name = "hinge"
    is_classification = True

    # -- scalar hot path ------------------------------------------------ #
    def sample_loss(self, w: np.ndarray, x_idx: np.ndarray, x_val: np.ndarray, y: float) -> float:
        margin = self.sample_margin(w, x_idx, x_val)
        return max(0.0, 1.0 - y * margin)

    def _loss_derivative(self, margin_or_pred: float, y: float) -> float:
        if 1.0 - y * margin_or_pred > 0.0:
            return float(-y)
        return 0.0

    # -- vectorised ------------------------------------------------------ #
    def _vector_loss(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, 1.0 - y * margins)

    def _vector_loss_derivative(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        active = (1.0 - y * margins) > 0.0
        return np.where(active, -y, 0.0)

    # -- smoothness ------------------------------------------------------ #
    def smoothness_coefficient(self) -> float:
        """The hinge is non-smooth; 1.0 is the subgradient-norm coefficient.

        ``||∂f_i(w)|| <= ||x_i||`` for the hinge, so using coefficient 1 with
        the *non-squared* row norm would be tight; we keep the base-class
        convention (coefficient times squared norm) as a conservative proxy
        and override :meth:`lipschitz_constants` to use the tight bound.
        """
        return 1.0

    def lipschitz_constants(self, X: CSRMatrix, y=None) -> np.ndarray:
        """Subgradient-norm bounds ``||x_i|| + reg`` (tight for the hinge)."""
        norms = X.row_norms(squared=False)
        reg = np.array([self.regularizer.lipschitz_bound(float(n)) for n in norms])
        return norms + reg


__all__ = ["HingeObjective"]
