"""Objective-function substrate.

Empirical-risk-minimisation objectives of the form

    F(w) = (1/n) * sum_i f_i(w),      f_i(w) = phi_i(w) + eta * r(w)

(Eq. 1-2 of the paper).  Each :class:`~repro.objectives.base.Objective`
exposes per-sample losses, *index-compressed* per-sample gradients, full
objective values, misclassification error and per-sample Lipschitz
constants — everything the solvers, importance samplers and theory module
need.
"""

from repro.objectives.base import Objective, SparseGradient
from repro.objectives.regularizers import (
    ElasticNetRegularizer,
    L1Regularizer,
    L2Regularizer,
    NoRegularizer,
    Regularizer,
)
from repro.objectives.logistic import LogisticObjective
from repro.objectives.squared_hinge import SquaredHingeObjective
from repro.objectives.hinge import HingeObjective
from repro.objectives.least_squares import LeastSquaresObjective
from repro.objectives.registry import available_objectives, make_objective

__all__ = [
    "Objective",
    "SparseGradient",
    "Regularizer",
    "NoRegularizer",
    "L1Regularizer",
    "L2Regularizer",
    "ElasticNetRegularizer",
    "LogisticObjective",
    "SquaredHingeObjective",
    "HingeObjective",
    "LeastSquaresObjective",
    "available_objectives",
    "make_objective",
]
