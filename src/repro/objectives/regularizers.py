"""Regularisers ``r(w)`` and their (sub)gradients.

The solvers apply regularisation in the *index-compressed* style used by
Hogwild-type implementations: for a stochastic step on sample ``i`` only the
coordinates in the support of ``x_i`` receive the regulariser's gradient
contribution.  This keeps every update sparse — which is the entire point
of the paper's performance argument — at the cost of treating the
regulariser stochastically as well (standard practice; the expectation of
the update is unchanged when the support coverage is uniform, and lazily
regularised variants converge to the same optimum in practice).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_positive


class Regularizer(ABC):
    """Interface for a separable regulariser ``r(w) = sum_j r_j(w_j)``."""

    #: Strong-convexity modulus contributed by the regulariser (0 if none).
    strong_convexity: float = 0.0

    @abstractmethod
    def value(self, w: np.ndarray) -> float:
        """Full regularisation value ``r(w)``."""

    @abstractmethod
    def grad_coords(self, w: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """(Sub)gradient of ``r`` restricted to ``indices`` of ``w``."""

    @abstractmethod
    def lipschitz_bound(self, norm_xi: float) -> float:
        """Additive contribution of the regulariser to the per-sample Lipschitz constant."""

    def grad_dense(self, w: np.ndarray) -> np.ndarray:
        """Full (sub)gradient of ``r`` (dense); default delegates to :meth:`grad_coords`."""
        return self.grad_coords(w, np.arange(w.shape[0]))


class NoRegularizer(Regularizer):
    """The zero regulariser (``r ≡ 0``)."""

    strong_convexity = 0.0

    def value(self, w: np.ndarray) -> float:
        return 0.0

    def grad_coords(self, w: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return np.zeros(indices.shape[0], dtype=np.float64)

    def lipschitz_bound(self, norm_xi: float) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NoRegularizer()"


class L2Regularizer(Regularizer):
    """Ridge penalty ``r(w) = (eta / 2) * ||w||_2^2``.

    Parameters
    ----------
    eta:
        Regularisation strength; must be positive.
    """

    def __init__(self, eta: float) -> None:
        self.eta = check_positive(eta, "eta")

    @property
    def strong_convexity(self) -> float:  # type: ignore[override]
        return self.eta

    def value(self, w: np.ndarray) -> float:
        return 0.5 * self.eta * float(np.dot(w, w))

    def grad_coords(self, w: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return self.eta * w[indices]

    def lipschitz_bound(self, norm_xi: float) -> float:
        return self.eta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"L2Regularizer(eta={self.eta})"


class L1Regularizer(Regularizer):
    """Lasso penalty ``r(w) = eta * ||w||_1`` with the sign subgradient.

    The subgradient at 0 is taken to be 0, the standard choice for
    stochastic subgradient solvers.
    """

    strong_convexity = 0.0

    def __init__(self, eta: float) -> None:
        self.eta = check_positive(eta, "eta")

    def value(self, w: np.ndarray) -> float:
        return self.eta * float(np.abs(w).sum())

    def grad_coords(self, w: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return self.eta * np.sign(w[indices])

    def lipschitz_bound(self, norm_xi: float) -> float:
        # |partial r| <= eta in every coordinate; the gradient-norm bound used
        # for importance sampling only needs an additive constant.
        return self.eta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"L1Regularizer(eta={self.eta})"


class ElasticNetRegularizer(Regularizer):
    """Elastic-net penalty ``eta1 * ||w||_1 + (eta2 / 2) * ||w||_2^2``."""

    def __init__(self, eta_l1: float, eta_l2: float) -> None:
        self.eta_l1 = check_positive(eta_l1, "eta_l1", strict=False)
        self.eta_l2 = check_positive(eta_l2, "eta_l2", strict=False)
        if self.eta_l1 == 0.0 and self.eta_l2 == 0.0:
            raise ValueError("at least one of eta_l1/eta_l2 must be positive")

    @property
    def strong_convexity(self) -> float:  # type: ignore[override]
        return self.eta_l2

    def value(self, w: np.ndarray) -> float:
        return self.eta_l1 * float(np.abs(w).sum()) + 0.5 * self.eta_l2 * float(np.dot(w, w))

    def grad_coords(self, w: np.ndarray, indices: np.ndarray) -> np.ndarray:
        wi = w[indices]
        return self.eta_l1 * np.sign(wi) + self.eta_l2 * wi

    def lipschitz_bound(self, norm_xi: float) -> float:
        return self.eta_l1 + self.eta_l2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ElasticNetRegularizer(eta_l1={self.eta_l1}, eta_l2={self.eta_l2})"


__all__ = [
    "Regularizer",
    "NoRegularizer",
    "L1Regularizer",
    "L2Regularizer",
    "ElasticNetRegularizer",
]
