"""L1/L2-regularised logistic-regression (cross-entropy) objective.

The paper's evaluation uses "the most widely used objective function in
classification problems, i.e., L1-regularised cross-entropy loss".  With
labels ``y ∈ {-1, +1}`` the per-sample loss is the logistic loss

    phi_i(w) = log(1 + exp(-y_i <x_i, w>)).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.objectives.base import Objective
from repro.objectives.regularizers import L1Regularizer, Regularizer


def _log1pexp(z: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable ``log(1 + exp(z))``."""
    z = np.asarray(z, dtype=np.float64)
    # max(z, 0) + log1p(exp(-|z|)) never overflows: the exponential argument
    # is always <= 0.
    out = np.maximum(z, 0.0) + np.log1p(np.exp(-np.abs(z)))
    if out.ndim == 0:
        return float(out)
    return out


def _sigmoid(z: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable logistic sigmoid."""
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    expz = np.exp(z[~pos])
    out[~pos] = expz / (1.0 + expz)
    if out.ndim == 0:
        return float(out)
    return out


class LogisticObjective(Objective):
    """Binary cross-entropy with ±1 labels and an optional regulariser.

    Parameters
    ----------
    regularizer:
        Any :class:`~repro.objectives.regularizers.Regularizer`; defaults to
        no regularisation.  Use :meth:`l1_regularized` for the paper's
        configuration.
    """

    name = "logistic"
    is_classification = True

    @classmethod
    def l1_regularized(cls, eta: float = 1e-4) -> "LogisticObjective":
        """The paper's objective: cross-entropy + ``eta * ||w||_1``."""
        return cls(regularizer=L1Regularizer(eta))

    # -- scalar hot path ------------------------------------------------ #
    def sample_loss(self, w: np.ndarray, x_idx: np.ndarray, x_val: np.ndarray, y: float) -> float:
        margin = self.sample_margin(w, x_idx, x_val)
        return float(_log1pexp(-y * margin))

    def _loss_derivative(self, margin_or_pred: float, y: float) -> float:
        # d/dt log(1 + exp(-y t)) = -y * sigmoid(-y t)
        return float(-y * _sigmoid(-y * margin_or_pred))

    # -- vectorised ------------------------------------------------------ #
    def _vector_loss(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.asarray(_log1pexp(-y * margins), dtype=np.float64)

    def _vector_loss_derivative(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.asarray(-y * _sigmoid(-y * margins), dtype=np.float64)

    # -- smoothness ------------------------------------------------------ #
    def smoothness_coefficient(self) -> float:
        """The logistic loss is 1/4-smooth in the margin."""
        return 0.25

    has_probabilities = True

    def proba_from_margins(self, margins: np.ndarray) -> np.ndarray:
        """Positive-class probability ``sigmoid(<x_i, w>)`` from margins."""
        return np.asarray(_sigmoid(np.asarray(margins, dtype=np.float64)), dtype=np.float64)

    def predict_proba(self, w: np.ndarray, X) -> np.ndarray:
        """Probability of the positive class for each row of ``X``."""
        return self.proba_from_margins(X.dot(w))


__all__ = ["LogisticObjective"]
