"""Name-based objective factory.

The experiment configuration files refer to objectives by name
(``"logistic_l1"`` etc.); this registry turns those names into configured
:class:`~repro.objectives.base.Objective` instances.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.objectives.base import Objective
from repro.objectives.hinge import HingeObjective
from repro.objectives.least_squares import LeastSquaresObjective
from repro.objectives.logistic import LogisticObjective
from repro.objectives.regularizers import (
    ElasticNetRegularizer,
    L1Regularizer,
    L2Regularizer,
)
from repro.objectives.squared_hinge import SquaredHingeObjective

_FACTORIES: Dict[str, Callable[[float], Objective]] = {
    # The paper's evaluation objective.
    "logistic_l1": lambda eta: LogisticObjective(regularizer=L1Regularizer(eta)),
    "logistic_l2": lambda eta: LogisticObjective(regularizer=L2Regularizer(eta)),
    "logistic": lambda eta: LogisticObjective(),
    # The paper's Eq. 16 example objective.
    "squared_hinge_l2": lambda eta: SquaredHingeObjective(regularizer=L2Regularizer(eta)),
    "squared_hinge": lambda eta: SquaredHingeObjective(),
    "hinge_l2": lambda eta: HingeObjective(regularizer=L2Regularizer(eta)),
    "hinge": lambda eta: HingeObjective(),
    "least_squares": lambda eta: LeastSquaresObjective(),
    "ridge": lambda eta: LeastSquaresObjective(regularizer=L2Regularizer(eta)),
    "logistic_elastic": lambda eta: LogisticObjective(
        regularizer=ElasticNetRegularizer(eta, eta)
    ),
}


def available_objectives() -> List[str]:
    """Names accepted by :func:`make_objective`, sorted alphabetically."""
    return sorted(_FACTORIES)


def make_objective(name: str, *, eta: float = 1e-4) -> Objective:
    """Instantiate an objective by name.

    Parameters
    ----------
    name:
        One of :func:`available_objectives`.
    eta:
        Regularisation strength passed to the regulariser (ignored by the
        unregularised variants).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown objective {name!r}; available: {', '.join(available_objectives())}"
        ) from None
    return factory(eta)


def register_objective(name: str, factory: Callable[[float], Objective]) -> None:
    """Register a custom objective factory under ``name`` (overwrites existing)."""
    _FACTORIES[name] = factory


__all__ = ["available_objectives", "make_objective", "register_objective"]
