"""L2-regularised squared-hinge SVM objective.

Section 2.2 of the paper uses this objective to illustrate the gradient-norm
bound of Eq. 16:

    f_i(w) = (max(0, 1 - y_i <x_i, w>))^2 + (lambda / 2) ||w||^2,
    ||∇f_i(w)|| <= 2 (1 + ||x_i|| / sqrt(lambda)) ||x_i|| + sqrt(lambda).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.objectives.base import Objective
from repro.objectives.regularizers import L2Regularizer, Regularizer
from repro.sparse.csr import CSRMatrix


class SquaredHingeObjective(Objective):
    """Squared-hinge loss ``(⌊1 - y <x, w>⌋_+)²`` with an optional regulariser."""

    name = "squared_hinge"
    is_classification = True

    @classmethod
    def l2_regularized(cls, lam: float = 1e-4) -> "SquaredHingeObjective":
        """The paper's Eq.-16 configuration: squared hinge + ``(lam/2)||w||²``."""
        return cls(regularizer=L2Regularizer(lam))

    # -- scalar hot path ------------------------------------------------ #
    def sample_loss(self, w: np.ndarray, x_idx: np.ndarray, x_val: np.ndarray, y: float) -> float:
        margin = self.sample_margin(w, x_idx, x_val)
        slack = max(0.0, 1.0 - y * margin)
        return slack * slack

    def _loss_derivative(self, margin_or_pred: float, y: float) -> float:
        slack = 1.0 - y * margin_or_pred
        if slack <= 0.0:
            return 0.0
        return float(-2.0 * y * slack)

    # -- vectorised ------------------------------------------------------ #
    def _vector_loss(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        slack = np.maximum(0.0, 1.0 - y * margins)
        return slack * slack

    def _vector_loss_derivative(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        slack = np.maximum(0.0, 1.0 - y * margins)
        return -2.0 * y * slack

    # -- smoothness ------------------------------------------------------ #
    def smoothness_coefficient(self) -> float:
        """The squared hinge is 2-smooth in the margin."""
        return 2.0

    # -- paper-specific gradient-norm bound (Eq. 16) --------------------- #
    def gradient_norm_bounds(self, X: CSRMatrix, radius: float = 1.0) -> np.ndarray:
        """Per-sample bound on ``||∇f_i(w)||`` from Eq. 16 of the paper.

        Only available when the regulariser is the L2 penalty the equation
        assumes; other regularisers fall back to the generic ``R * L_i``
        bound of the base class.
        """
        if isinstance(self.regularizer, L2Regularizer):
            lam = self.regularizer.eta
            norms = X.row_norms(squared=False)
            return 2.0 * (1.0 + norms / np.sqrt(lam)) * norms + np.sqrt(lam)
        return super().gradient_norm_bounds(X, radius=radius)


__all__ = ["SquaredHingeObjective"]
