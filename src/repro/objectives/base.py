"""Abstract objective interface.

Every objective is a finite sum ``F(w) = (1/n) Σ f_i(w)`` over the rows of a
:class:`~repro.sparse.csr.CSRMatrix`.  The key design decision — dictated by
the paper — is that per-sample gradients are *index-compressed*: a gradient
is returned as a :class:`SparseGradient` whose support equals the support of
``x_i`` so that a model update touches only ``nnz(x_i)`` coordinates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.objectives.regularizers import NoRegularizer, Regularizer
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import sparse_norm_sq


@dataclass
class SparseGradient:
    """An index-compressed gradient ``(indices, values)``.

    Attributes
    ----------
    indices:
        Coordinates of the non-zero gradient entries (integer array;
        ``int32`` when sliced from a :class:`CSRMatrix` row).
    values:
        Gradient values at those coordinates (``float64``).
    """

    indices: np.ndarray
    values: np.ndarray

    @property
    def nnz(self) -> int:
        """Number of touched coordinates."""
        return int(self.indices.size)

    def norm_sq(self) -> float:
        """Squared Euclidean norm of the gradient."""
        return sparse_norm_sq(self.values)

    def norm(self) -> float:
        """Euclidean norm of the gradient."""
        return float(np.sqrt(self.norm_sq()))

    def scaled(self, scale: float) -> "SparseGradient":
        """Return a new gradient with values multiplied by ``scale``."""
        return SparseGradient(indices=self.indices, values=self.values * scale)

    def to_dense(self, dim: int) -> np.ndarray:
        """Expand to a dense vector of length ``dim``."""
        out = np.zeros(dim, dtype=np.float64)
        if self.indices.size:
            np.add.at(out, self.indices, self.values)
        return out


class Objective(ABC):
    """Finite-sum objective over a sparse design matrix.

    Subclasses implement the scalar loss ``phi(margin-or-residual)`` pieces;
    the base class provides the shared full-objective, error-rate and
    Lipschitz plumbing.

    Parameters
    ----------
    regularizer:
        Separable regulariser ``r(w)``; defaults to no regularisation.
    """

    #: Human-readable identifier used by the registry and reports.
    name: str = "objective"
    #: Whether labels are class labels in {-1, +1} (True) or real targets.
    is_classification: bool = True

    def __init__(self, regularizer: Optional[Regularizer] = None) -> None:
        self.regularizer = regularizer if regularizer is not None else NoRegularizer()

    # ------------------------------------------------------------------ #
    # Per-sample quantities (the hot path)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def sample_loss(self, w: np.ndarray, x_idx: np.ndarray, x_val: np.ndarray, y: float) -> float:
        """Unregularised loss ``phi_i(w)`` of one sample."""

    @abstractmethod
    def _loss_derivative(self, margin_or_pred: float, y: float) -> float:
        """Derivative of the scalar loss with respect to the linear activation ``<x_i, w>``."""

    def sample_margin(self, w: np.ndarray, x_idx: np.ndarray, x_val: np.ndarray) -> float:
        """Linear activation ``<x_i, w>`` of one sample."""
        if x_idx.size == 0:
            return 0.0
        return float(np.dot(x_val, w[x_idx]))

    def sample_grad(
        self, w: np.ndarray, x_idx: np.ndarray, x_val: np.ndarray, y: float
    ) -> SparseGradient:
        """Index-compressed gradient ``∇f_i(w)`` (loss + regulariser on the support)."""
        activation = self.sample_margin(w, x_idx, x_val)
        coef = self._loss_derivative(activation, y)
        values = coef * x_val
        if not isinstance(self.regularizer, NoRegularizer) and x_idx.size:
            values = values + self.regularizer.grad_coords(w, x_idx)
        return SparseGradient(indices=x_idx, values=values)

    def sample_grad_dense(
        self, w: np.ndarray, x_idx: np.ndarray, x_val: np.ndarray, y: float
    ) -> np.ndarray:
        """Dense per-sample gradient including the *full* regulariser gradient.

        This is the mathematically exact ``∇f_i(w)`` used by the theory module
        and by SVRG's full-gradient computation; the index-compressed variant
        used in the solvers' hot loop restricts the regulariser to the sample
        support (see module docstring of :mod:`repro.objectives.regularizers`).
        """
        activation = self.sample_margin(w, x_idx, x_val)
        coef = self._loss_derivative(activation, y)
        grad = np.zeros(w.shape[0], dtype=np.float64)
        if x_idx.size:
            np.add.at(grad, x_idx, coef * x_val)
        if not isinstance(self.regularizer, NoRegularizer):
            grad += self.regularizer.grad_dense(w)
        return grad

    # ------------------------------------------------------------------ #
    # Batch API (the contract the kernel backends build on; implemented
    # once here from the vectorised loss hooks, so every objective gets the
    # batched paths for free — see the ``repro.kernels`` module docstring)
    # ------------------------------------------------------------------ #
    def batch_margins(
        self,
        w: np.ndarray,
        X: CSRMatrix,
        rows: Optional[np.ndarray] = None,
        kernel=None,
    ) -> np.ndarray:
        """Margins ``<x_i, w>`` for ``rows`` (all rows when ``None``).

        Dispatches through the selected kernel backend (``kernel`` may be a
        backend instance, a registry name, or ``None`` for the default).
        """
        from repro.kernels.registry import resolve_backend

        return resolve_backend(kernel).margins(X, w, rows)

    def batch_loss(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Elementwise unregularised losses from precomputed margins.

        Must agree with the scalar :meth:`sample_loss` evaluated per row;
        the parity suite enforces this for every registered objective.
        """
        return np.asarray(
            self._vector_loss(
                np.ascontiguousarray(margins, dtype=np.float64),
                np.ascontiguousarray(y, dtype=np.float64),
            ),
            dtype=np.float64,
        )

    def batch_grad_coeffs(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Elementwise loss derivatives w.r.t. the margin from precomputed margins.

        Must agree with the scalar :meth:`_loss_derivative` per row, so the
        per-sample gradient is always ``batch_grad_coeffs(m, y)[i] * x_i``
        plus the regulariser restricted to the support.
        """
        return np.asarray(
            self._vector_loss_derivative(
                np.ascontiguousarray(margins, dtype=np.float64),
                np.ascontiguousarray(y, dtype=np.float64),
            ),
            dtype=np.float64,
        )

    # ------------------------------------------------------------------ #
    # Full-dataset quantities
    # ------------------------------------------------------------------ #
    def full_loss(self, w: np.ndarray, X: CSRMatrix, y: np.ndarray) -> float:
        """Full objective ``F(w) = (1/n) Σ phi_i(w) + r(w)``."""
        if X.n_rows == 0:
            return self.regularizer.value(w)
        margins = X.dot(w)
        losses = self._vector_loss(margins, y)
        return float(losses.mean()) + self.regularizer.value(w)

    def full_gradient(self, w: np.ndarray, X: CSRMatrix, y: np.ndarray) -> np.ndarray:
        """Dense full gradient ``∇F(w)`` (used by SVRG and the theory module)."""
        margins = X.dot(w)
        coefs = self._vector_loss_derivative(margins, y)
        grad = X.transpose_dot(coefs) / max(X.n_rows, 1)
        grad += self.regularizer.grad_dense(w)
        return grad

    def rmse(self, w: np.ndarray, X: CSRMatrix, y: np.ndarray) -> float:
        """The paper's "RMSE" metric: the square root of the mean objective value.

        Section 4 defines RMSE as the rooted mean squared error *with the
        objective value as the error*, i.e. ``sqrt(F(w))`` where ``F`` is the
        mean per-sample loss.  Negative means (impossible for the losses
        implemented here) are clipped to zero defensively.
        """
        return float(np.sqrt(max(self.full_loss(w, X, y), 0.0)))

    def error_rate(self, w: np.ndarray, X: CSRMatrix, y: np.ndarray) -> float:
        """Misclassification rate (classification) or normalised MSE (regression)."""
        return self.error_rate_from_margins(X.dot(w), y)

    def error_rate_from_margins(self, margins: np.ndarray, y: np.ndarray) -> float:
        """:meth:`error_rate` from precomputed margins (one matvec shared with the loss)."""
        preds = self.predict_from_margins(margins)
        if self.is_classification:
            return float(np.mean(preds != np.sign(y)))
        denom = float(np.mean(y**2)) or 1.0
        return float(np.mean((preds - y) ** 2)) / denom

    def predict(self, w: np.ndarray, X: CSRMatrix) -> np.ndarray:
        """Class predictions in {-1, +1} (classification) or raw scores (regression)."""
        return self.predict_from_margins(X.dot(w))

    def predict_from_margins(self, margins: np.ndarray) -> np.ndarray:
        """:meth:`predict` from precomputed margins."""
        if self.is_classification:
            preds = np.sign(margins)
            preds[preds == 0] = 1.0
            return preds
        return np.asarray(margins, dtype=np.float64)

    #: Whether :meth:`proba_from_margins` is meaningful for this objective
    #: (only losses with a probabilistic interpretation override it).
    has_probabilities: bool = False

    def proba_from_margins(self, margins: np.ndarray) -> np.ndarray:
        """Positive-class probabilities from precomputed margins.

        Only objectives whose loss has a probabilistic interpretation
        (:attr:`has_probabilities`) implement this; the serving layer uses
        it for ``predict_proba`` and reports a helpful error otherwise.
        """
        raise ValueError(
            f"objective {self.name!r} does not define class probabilities; "
            "use predict/decision_function instead"
        )

    # ------------------------------------------------------------------ #
    # Vectorised internals (subclasses implement the scalar math too so the
    # per-sample hot path avoids array temporaries)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _vector_loss(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised unregularised loss for all samples."""

    @abstractmethod
    def _vector_loss_derivative(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised derivative of the loss w.r.t. the linear activation."""

    # ------------------------------------------------------------------ #
    # Lipschitz constants (drive the importance-sampling distribution)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def smoothness_coefficient(self) -> float:
        """Upper bound on the second derivative of the scalar loss.

        For a loss ``phi(t, y)`` with ``|phi''| <= beta`` the gradient of
        ``phi(<x_i, w>, y_i)`` is ``beta * ||x_i||²``-Lipschitz in ``w``.
        """

    def lipschitz_constants(self, X: CSRMatrix, y: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-sample gradient Lipschitz constants ``L_i``.

        ``L_i = beta * ||x_i||² + regulariser`` where ``beta`` is the loss
        smoothness coefficient.  These are the quantities Eq. 12 turns into
        the importance-sampling distribution.
        """
        norms_sq = X.row_norms(squared=True)
        beta = self.smoothness_coefficient()
        reg = np.array([self.regularizer.lipschitz_bound(float(np.sqrt(s))) for s in norms_sq])
        return beta * norms_sq + reg

    def gradient_norm_bounds(self, X: CSRMatrix, radius: float = 1.0) -> np.ndarray:
        """Upper bounds on ``||∇f_i(w)||`` for ``||w|| <= radius`` (sup-norm proxy ``R * L_i``)."""
        return radius * self.lipschitz_constants(X)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(regularizer={self.regularizer!r})"


__all__ = ["Objective", "SparseGradient"]
