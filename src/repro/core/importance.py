"""Importance-sampling distributions and unbiased re-weighting.

Importance sampling replaces the uniform draw of SGD by a weighted draw
with probability ``p_i`` (Eq. 7) and compensates by scaling the step by
``1 / (n p_i)`` (Eq. 8) so the update stays an unbiased estimator of the
full gradient.  Two distributions are implemented:

* :func:`optimal_probabilities` — the variance-minimising distribution
  proportional to the *current* gradient norms (Eq. 11).  It requires a full
  pass per iteration and is therefore only used by the theory/diagnostics
  modules.
* :func:`lipschitz_probabilities` — the practical distribution proportional
  to the per-sample Lipschitz constants (Eq. 12), fixed for the whole run.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

import numpy as np

from repro.objectives.base import Objective
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_array_1d, check_probability_vector


class ImportanceScheme(str, Enum):
    """Which sampling distribution a solver uses."""

    UNIFORM = "uniform"
    LIPSCHITZ = "lipschitz"
    GRADIENT_NORM = "gradient_norm"


def importance_weights(lipschitz: np.ndarray, *, floor: float = 1e-12) -> np.ndarray:
    """Raw (unnormalised) importance factors ``I_i`` from Lipschitz constants.

    A tiny floor keeps samples with (numerically) zero Lipschitz constant
    reachable, which both avoids division by zero in the re-weighting and
    keeps the estimator unbiased over the full support.
    """
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    if np.any(L < 0):
        raise ValueError("Lipschitz constants must be non-negative")
    return np.maximum(L, floor)


def uniform_probabilities(n: int) -> np.ndarray:
    """The uniform distribution ``p_i = 1/n`` used by plain SGD/ASGD."""
    if n <= 0:
        raise ValueError("n must be positive")
    return np.full(n, 1.0 / n, dtype=np.float64)


def lipschitz_probabilities(lipschitz: np.ndarray, *, floor: float = 1e-12) -> np.ndarray:
    """The practical IS distribution ``p_i = L_i / Σ_j L_j`` (Eq. 12)."""
    weights = importance_weights(lipschitz, floor=floor)
    return weights / weights.sum()


def optimal_probabilities(
    w: np.ndarray,
    X: CSRMatrix,
    y: np.ndarray,
    objective: Objective,
    *,
    floor: float = 1e-12,
) -> np.ndarray:
    """The variance-minimising distribution ``p_i ∝ ||∇f_i(w)||`` (Eq. 11).

    Requires one full pass over the data; exposed for diagnostics and for
    quantifying how close the Lipschitz proxy comes to the optimum.
    """
    norms = np.empty(X.n_rows, dtype=np.float64)
    for i in range(X.n_rows):
        idx, val = X.row(i)
        norms[i] = objective.sample_grad(w, idx, val, float(y[i])).norm()
    norms = np.maximum(norms, floor)
    return norms / norms.sum()


def stepsize_reweighting(probabilities: np.ndarray) -> np.ndarray:
    """Per-sample step multipliers ``1 / (n p_i)`` making the IS estimator unbiased (Eq. 8)."""
    p = check_probability_vector(probabilities, "probabilities")
    n = p.shape[0]
    return 1.0 / (n * p)


def effective_sample_size(probabilities: np.ndarray) -> float:
    """Kish effective sample size of an importance distribution.

    ``ESS = 1 / Σ p_i²`` ranges from 1 (all mass on one sample) to ``n``
    (uniform); a useful one-number diagnostic of how aggressive a sampling
    distribution is.
    """
    p = check_probability_vector(probabilities, "probabilities")
    return float(1.0 / np.dot(p, p))


def variance_reduction_factor(lipschitz: np.ndarray) -> float:
    """Predicted bound-improvement factor of IS over uniform sampling.

    From Eq. 13 vs Eq. 14 the bound ratio is
    ``(Σ L_i / n) / sqrt(Σ L_i² / n) = sqrt(ψ)`` — the square root of the ψ
    ratio of Eq. 15.  A value of 1 means no improvement; smaller is better.
    """
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    denom = float(np.sqrt(np.mean(L**2)))
    if denom == 0.0:
        return 1.0
    return float(np.mean(L)) / denom


__all__ = [
    "ImportanceScheme",
    "importance_weights",
    "uniform_probabilities",
    "lipschitz_probabilities",
    "optimal_probabilities",
    "stepsize_reweighting",
    "effective_sample_size",
    "variance_reduction_factor",
]
