"""Importance balancing (Algorithm 3) and the adaptive balance/shuffle rule.

When each asynchronous worker samples only from its local shard, the local
sampling distributions ``P_a`` are distorted relative to the global IS
distribution unless every shard carries the same total importance mass
``Φ_a = Σ_i L_i`` (Section 2.3).  Algorithm 3 approximates equal-mass
partitioning with a head–tail pairing of the Lipschitz-sorted samples;
Algorithm 4 applies it only when the imbalance-potential metric ρ (Eq. 20)
says it is worth doing, otherwise a plain random shuffle suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

import numpy as np

from repro.sparse.stats import normalized_rho, rho
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_array_1d

#: Paper's empirical threshold for ρ (Section 2.4 / Algorithm 4): balance when
#: the (normalised) imbalance potential exceeds ζ.
DEFAULT_ZETA: float = 5e-4


class BalancingDecision(str, Enum):
    """Outcome of the adaptive rule in Algorithm 4."""

    BALANCE = "balance"
    SHUFFLE = "shuffle"


def importance_mass(lipschitz: np.ndarray, shard_bounds: np.ndarray) -> np.ndarray:
    """Per-shard importance mass ``Φ_a`` for contiguous shards.

    Parameters
    ----------
    lipschitz:
        Per-sample Lipschitz constants in *dataset order* (after any
        re-ordering).
    shard_bounds:
        Array of ``num_shards + 1`` boundary indices; shard ``a`` owns rows
        ``[shard_bounds[a], shard_bounds[a + 1])``.
    """
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    bounds = np.ascontiguousarray(shard_bounds, dtype=np.int64)
    if bounds.ndim != 1 or bounds.size < 2:
        raise ValueError("shard_bounds must contain at least two entries")
    if bounds[0] != 0 or bounds[-1] != L.shape[0] or np.any(np.diff(bounds) < 0):
        raise ValueError("shard_bounds must start at 0, end at n and be non-decreasing")
    csum = np.concatenate([[0.0], np.cumsum(L)])
    return csum[bounds[1:]] - csum[bounds[:-1]]


def imbalance_ratio(lipschitz: np.ndarray, shard_bounds: np.ndarray) -> float:
    """Max/min ratio of the per-shard importance masses (1.0 = perfectly balanced)."""
    masses = importance_mass(lipschitz, shard_bounds)
    min_mass = float(masses.min())
    if min_mass <= 0.0:
        return float("inf")
    return float(masses.max()) / min_mass


def head_tail_order(lipschitz: np.ndarray) -> np.ndarray:
    """Algorithm 3: the head–tail interleaved ordering of sample indices.

    Samples are sorted by Lipschitz constant and then paired largest-with-
    smallest: the output ordering is ``[s_0, s_{n-1}, s_1, s_{n-2}, ...]``
    where ``s_k`` is the index of the k-th smallest constant.  Splitting this
    ordering into contiguous equal-length shards gives every shard an
    (approximately) equal share of small and large constants, hence nearly
    equal ``Φ_a``.
    """
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    n = L.shape[0]
    sorted_idx = np.argsort(L, kind="stable")
    out = np.empty(n, dtype=np.int64)
    pos = 0
    for i in range(n // 2):
        out[pos] = sorted_idx[i]
        pos += 1
        out[pos] = sorted_idx[n - 1 - i]
        pos += 1
    if n % 2:
        out[pos] = sorted_idx[n // 2]
    return out


def random_order(n: int, seed: RandomState = None) -> np.ndarray:
    """A uniformly random permutation of ``range(n)`` (the shuffle branch)."""
    return as_rng(seed).permutation(n).astype(np.int64)


def snake_order(lipschitz: np.ndarray, num_workers: int) -> np.ndarray:
    """Serpentine (boustrophedon) dealing — an extension beyond Algorithm 3.

    The paper's head–tail pairing balances well when the Lipschitz spread is
    roughly symmetric (its Figure 2 example) but can fail badly for
    heavy-tailed spectra, because the pair sums themselves vary by orders of
    magnitude.  Serpentine dealing — sort descending and deal the samples to
    the workers left-to-right, then right-to-left, alternating — keeps both
    the per-worker counts and the per-worker importance masses near-equal
    for *any* spread, at the same O(n log n) cost.  The returned ordering
    concatenates each worker's samples so that contiguous equal-size shards
    reproduce the dealt assignment.
    """
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    num_workers = min(num_workers, L.shape[0])
    descending = np.argsort(-L, kind="stable")
    buckets: list[list[int]] = [[] for _ in range(num_workers)]
    forward = True
    pos = 0
    while pos < descending.size:
        worker_range = range(num_workers) if forward else range(num_workers - 1, -1, -1)
        for w in worker_range:
            if pos >= descending.size:
                break
            buckets[w].append(int(descending[pos]))
            pos += 1
        forward = not forward
    # Equalise counts: the partitioner splits into equal-size contiguous
    # shards, so move samples from over-full buckets to under-full ones
    # (only the last round can be uneven, so this touches few elements).
    target_sizes = [len(b) for b in buckets]
    n = descending.size
    base, extra = divmod(n, num_workers)
    desired = [base + (1 if i < extra else 0) for i in range(num_workers)]
    overfull = [i for i in range(num_workers) if target_sizes[i] > desired[i]]
    underfull = [i for i in range(num_workers) if target_sizes[i] < desired[i]]
    for src in overfull:
        while len(buckets[src]) > desired[src] and underfull:
            dst = underfull[0]
            buckets[dst].append(buckets[src].pop())
            if len(buckets[dst]) >= desired[dst]:
                underfull.pop(0)
    return np.asarray([idx for bucket in buckets for idx in bucket], dtype=np.int64)


def decide_balancing(
    lipschitz: np.ndarray,
    *,
    zeta: float = DEFAULT_ZETA,
    use_normalized_rho: bool = True,
) -> Tuple[BalancingDecision, float]:
    """Adaptive rule of Algorithm 4: balance when ρ exceeds the threshold ζ.

    The paper's pseudo-code compares ρ against ζ and balances on the *low*
    branch, but its own narrative (Section 2.4: "a lower ρ indicates lower
    potential of severe importance imbalance", and Section 4: News20 with the
    *largest* ρ is the balanced dataset) makes clear that balancing is the
    action taken when the imbalance potential is *high*.  We follow the
    narrative + evaluation semantics: ``ρ > ζ → balance``.

    Returns the decision together with the ρ value used.
    """
    value = normalized_rho(lipschitz) if use_normalized_rho else rho(lipschitz)
    if value > zeta:
        return BalancingDecision.BALANCE, float(value)
    return BalancingDecision.SHUFFLE, float(value)


@dataclass
class BalancingResult:
    """The outcome of :func:`balance_dataset`."""

    order: np.ndarray
    decision: BalancingDecision
    rho: float
    imbalance_before: float
    imbalance_after: float


def balance_dataset(
    lipschitz: np.ndarray,
    num_workers: int,
    *,
    zeta: float = DEFAULT_ZETA,
    seed: RandomState = None,
    force: Optional[BalancingDecision] = None,
    use_normalized_rho: bool = True,
    method: str = "head_tail",
) -> BalancingResult:
    """Produce the dataset ordering Algorithm 4 trains on.

    Parameters
    ----------
    lipschitz:
        Per-sample Lipschitz constants in the original dataset order.
    num_workers:
        Number of shards the ordered dataset will be split into.
    zeta:
        Threshold for the adaptive rule.
    force:
        Override the adaptive decision (used by the ablation benchmarks).
    method:
        ``"head_tail"`` (the paper's Algorithm 3) or ``"snake"`` (the
        serpentine-dealing extension that also balances heavy-tailed
        spectra); only used on the balance branch.

    Returns
    -------
    BalancingResult
        The row ordering plus before/after imbalance diagnostics (imbalance
        is measured for contiguous equal-size shards over ``num_workers``).
    """
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    num_workers = min(num_workers, L.shape[0])

    bounds = np.linspace(0, L.shape[0], num_workers + 1).astype(np.int64)
    before = imbalance_ratio(L, bounds)

    if force is not None:
        decision = force
        rho_value = normalized_rho(L) if use_normalized_rho else rho(L)
    else:
        decision, rho_value = decide_balancing(L, zeta=zeta, use_normalized_rho=use_normalized_rho)

    if decision is BalancingDecision.BALANCE:
        if method == "head_tail":
            order = head_tail_order(L)
        elif method == "snake":
            order = snake_order(L, num_workers)
        else:
            raise ValueError(f"unknown balancing method {method!r}")
    else:
        order = random_order(L.shape[0], seed=seed)

    after = imbalance_ratio(L[order], bounds)
    return BalancingResult(
        order=order,
        decision=decision,
        rho=rho_value,
        imbalance_before=before,
        imbalance_after=after,
    )


__all__ = [
    "DEFAULT_ZETA",
    "BalancingDecision",
    "BalancingResult",
    "importance_mass",
    "imbalance_ratio",
    "head_tail_order",
    "snake_order",
    "random_order",
    "decide_balancing",
    "balance_dataset",
]
