"""IS-ASGD: the paper's Algorithm 4.

The solver combines every piece of the library:

1. compute the per-sample Lipschitz constants of the objective;
2. evaluate the imbalance-potential metric ρ (Eq. 20) and either
   importance-balance (Algorithm 3) or randomly shuffle the dataset;
3. partition the re-ordered data into contiguous shards, one per worker,
   and build each worker's *local* importance distribution (Eq. 12 over its
   own shard);
4. pre-generate each worker's weighted sample sequence;
5. run lock-free asynchronous execution, with every step re-weighted by
   ``1/(n_a p_i)`` for unbiasedness.

Steps 1–4 are this solver's declaration — the *what*.  Step 5 is handed to
the execution runtime (:mod:`repro.runtime`) as the registered ``is_sgd``
rule (the same coefficient math as ``sgd``; the re-weighting rides in the
sampler's step weights), so any of the four backends can execute it:
``per_sample`` (ground truth, the DESIGN.md §5 substitution), ``batched``,
``threads`` or the ``process`` cluster.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.async_engine.modes import resolve_async_mode
from repro.async_engine.staleness import StalenessModel, UniformDelay
from repro.core.balancing import balance_dataset
from repro.core.config import ISASGDConfig
from repro.core.importance import ImportanceScheme
from repro.core.partition import partition_dataset
from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import as_rng


class ISASGDSolver(BaseSolver):
    """Importance-sampled asynchronous SGD (Algorithm 4).

    Parameters
    ----------
    config:
        Full :class:`~repro.core.config.ISASGDConfig`.  The convenience
        keyword arguments of :class:`~repro.solvers.base.BaseSolver`
        (``step_size``, ``epochs``, ``seed``) are taken from the config.
    cost_model:
        Shared cost model for the simulated wall-clock.
    staleness:
        Optional override of the delay model (defaults to
        ``UniformDelay(config.effective_max_delay)``).
    backend:
        ``"simulated"`` (default) or ``"threads"`` (backward-compatible
        alias for ``async_mode="threads"``).
    async_mode:
        Execution backend, resolved through the runtime registry:
        ``"per_sample"``, ``"batched"``, ``"threads"`` or ``"process"``;
        ``None`` resolves via ``REPRO_ASYNC_MODE``.  See
        ``docs/runtime.md`` for the capability matrix.
    batch_size:
        Macro-step length for the batched/process backends (``"auto"`` by
        default).
    shard_scheme / num_shards:
        Parameter-shard layout for ``async_mode="process"``.
    """

    name = "is_asgd"
    #: Registered update rule this solver declares.
    rule = "is_sgd"

    def __init__(
        self,
        config: Optional[ISASGDConfig] = None,
        *,
        cost_model=None,
        staleness: Optional[StalenessModel] = None,
        backend: str = "simulated",
        kernel=None,
        async_mode: Optional[str] = None,
        batch_size="auto",
        shard_scheme: str = "range",
        num_shards: Optional[int] = None,
        **config_overrides,
    ) -> None:
        if config is None:
            config = ISASGDConfig(**config_overrides)
        elif config_overrides:
            config = config.with_updates(**config_overrides)
        super().__init__(
            step_size=config.step_size,
            epochs=config.epochs,
            seed=config.seed,
            cost_model=cost_model,
            record_every=config.record_every,
            kernel=kernel,
        )
        if backend not in {"simulated", "threads"}:
            raise ValueError("backend must be 'simulated' or 'threads'")
        self.config = config
        self.staleness = staleness
        self.backend = backend
        if backend == "threads":
            # Backward-compatible alias; an explicit conflicting async_mode
            # is a caller error, not something to override silently.
            if async_mode not in (None, "threads"):
                raise ValueError(
                    f"backend='threads' conflicts with async_mode={async_mode!r}"
                )
            async_mode = "threads"
        self.async_mode = resolve_async_mode(async_mode)
        self.batch_size = batch_size
        self.shard_scheme = shard_scheme
        self.num_shards = num_shards

    @property
    def parallel_workers(self) -> int:
        return self.config.num_workers

    # ------------------------------------------------------------------ #
    def prepare_partition(self, problem: Problem, rng: np.random.Generator):
        """Steps 1-3 of Algorithm 4: Lipschitz constants, balancing, partitioning.

        Returns ``(partition, balancing_result)``; exposed separately so the
        balancing ablation benchmarks can inspect the partition without
        running training.
        """
        cfg = self.config
        L = problem.lipschitz_constants()
        balancing = balance_dataset(
            L,
            cfg.num_workers,
            zeta=cfg.zeta,
            seed=rng,
            force=cfg.force_balancing,
            use_normalized_rho=cfg.use_normalized_rho,
            method=cfg.balancing_method,
        )
        scheme = "lipschitz" if cfg.importance is ImportanceScheme.LIPSCHITZ else "uniform"
        partition = partition_dataset(balancing.order, L, cfg.num_workers, scheme=scheme)
        return partition, balancing

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run IS-ASGD on ``problem``."""
        rng = as_rng(self.seed)
        cfg = self.config
        partition, balancing = self.prepare_partition(problem, rng)
        return self._execute_async(
            problem,
            partition,
            rng,
            rule=self.rule,
            staleness=self.staleness or UniformDelay(cfg.effective_max_delay),
            include_sampling=True,
            extra_info=self._info(problem, partition, balancing),
            initial_weights=initial_weights,
            importance_sampling=cfg.importance is ImportanceScheme.LIPSCHITZ,
            step_clip=cfg.step_clip,
            reshuffle=not cfg.reshuffle_sequences,
            regenerate=cfg.reshuffle_sequences,
        )

    # ------------------------------------------------------------------ #
    def _info(self, problem: Problem, partition, balancing) -> dict:
        from repro.sparse.stats import psi

        L = problem.lipschitz_constants()
        return {
            "backend": self.backend,
            "num_workers": self.config.num_workers,
            "balancing_decision": balancing.decision.value,
            "balancing_method": self.config.balancing_method,
            "rho": balancing.rho,
            "zeta": self.config.zeta,
            "psi": psi(L),
            "mass_imbalance_before": balancing.imbalance_before,
            "mass_imbalance_after": balancing.imbalance_after,
            "local_vs_global_distortion": partition.local_vs_global_distortion(),
            "importance_scheme": self.config.importance.value,
        }


__all__ = ["ISASGDSolver"]
