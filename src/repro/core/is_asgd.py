"""IS-ASGD: the paper's Algorithm 4.

The solver combines every piece of the library:

1. compute the per-sample Lipschitz constants of the objective;
2. evaluate the imbalance-potential metric ρ (Eq. 20) and either
   importance-balance (Algorithm 3) or randomly shuffle the dataset;
3. partition the re-ordered data into contiguous shards, one per worker,
   and build each worker's *local* importance distribution (Eq. 12 over its
   own shard);
4. pre-generate each worker's weighted sample sequence;
5. run lock-free asynchronous execution, with every step re-weighted by
   ``1/(n_a p_i)`` for unbiasedness.

The asynchronous execution goes through the perturbed-iterate simulator by
default (see DESIGN.md §5 for the substitution rationale); the real
threading backend can be selected for functional validation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.async_engine.batched import BatchedSimulator
from repro.async_engine.modes import resolve_async_mode
from repro.async_engine.simulator import AsyncSimulator
from repro.async_engine.staleness import StalenessModel, UniformDelay
from repro.async_engine.worker import build_workers
from repro.core.balancing import BalancingDecision, balance_dataset
from repro.core.config import ISASGDConfig
from repro.core.importance import ImportanceScheme
from repro.core.partition import partition_dataset
from repro.solvers.asgd import BatchedSparseSGDRule, SparseSGDUpdateRule
from repro.solvers.base import BaseSolver, Problem
from repro.solvers.results import TrainResult
from repro.utils.rng import as_rng


class ISASGDSolver(BaseSolver):
    """Importance-sampled asynchronous SGD (Algorithm 4).

    Parameters
    ----------
    config:
        Full :class:`~repro.core.config.ISASGDConfig`.  The convenience
        keyword arguments of :class:`~repro.solvers.base.BaseSolver`
        (``step_size``, ``epochs``, ``seed``) are taken from the config.
    cost_model:
        Shared cost model for the simulated wall-clock.
    staleness:
        Optional override of the delay model (defaults to
        ``UniformDelay(config.effective_max_delay)``).
    backend:
        ``"simulated"`` (default) or ``"threads"`` (backward-compatible
        alias for ``async_mode="threads"``).
    async_mode:
        Execution engine: ``"per_sample"`` (simulated ground truth),
        ``"batched"`` (simulated macro-step fast path), ``"threads"``
        (real lock-free threads, GIL-bound) or ``"process"`` (true
        multi-process sharded parameter server with measured wall-clock —
        see :mod:`repro.cluster`); ``None`` resolves via
        ``REPRO_ASYNC_MODE``.
    batch_size:
        Macro-step length for the batched/process engines (``"auto"`` by
        default).
    shard_scheme / num_shards:
        Parameter-shard layout for ``async_mode="process"``.
    """

    name = "is_asgd"

    def __init__(
        self,
        config: Optional[ISASGDConfig] = None,
        *,
        cost_model=None,
        staleness: Optional[StalenessModel] = None,
        backend: str = "simulated",
        kernel=None,
        async_mode: Optional[str] = None,
        batch_size="auto",
        shard_scheme: str = "range",
        num_shards: Optional[int] = None,
        **config_overrides,
    ) -> None:
        if config is None:
            config = ISASGDConfig(**config_overrides)
        elif config_overrides:
            config = config.with_updates(**config_overrides)
        super().__init__(
            step_size=config.step_size,
            epochs=config.epochs,
            seed=config.seed,
            cost_model=cost_model,
            record_every=config.record_every,
            kernel=kernel,
        )
        if backend not in {"simulated", "threads"}:
            raise ValueError("backend must be 'simulated' or 'threads'")
        self.config = config
        self.staleness = staleness
        self.backend = backend
        if backend == "threads":
            # Backward-compatible alias; an explicit conflicting async_mode
            # is a caller error, not something to override silently.
            if async_mode not in (None, "threads"):
                raise ValueError(
                    f"backend='threads' conflicts with async_mode={async_mode!r}"
                )
            async_mode = "threads"
        self.async_mode = resolve_async_mode(async_mode)
        self.batch_size = batch_size
        self.shard_scheme = shard_scheme
        self.num_shards = num_shards

    @property
    def parallel_workers(self) -> int:
        return self.config.num_workers

    # ------------------------------------------------------------------ #
    def prepare_partition(self, problem: Problem, rng: np.random.Generator):
        """Steps 1-3 of Algorithm 4: Lipschitz constants, balancing, partitioning.

        Returns ``(partition, balancing_result)``; exposed separately so the
        balancing ablation benchmarks can inspect the partition without
        running training.
        """
        cfg = self.config
        L = problem.lipschitz_constants()
        balancing = balance_dataset(
            L,
            cfg.num_workers,
            zeta=cfg.zeta,
            seed=rng,
            force=cfg.force_balancing,
            use_normalized_rho=cfg.use_normalized_rho,
            method=cfg.balancing_method,
        )
        scheme = "lipschitz" if cfg.importance is ImportanceScheme.LIPSCHITZ else "uniform"
        partition = partition_dataset(balancing.order, L, cfg.num_workers, scheme=scheme)
        return partition, balancing

    def fit(self, problem: Problem, *, initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Run IS-ASGD on ``problem``."""
        rng = as_rng(self.seed)
        cfg = self.config
        partition, balancing = self.prepare_partition(problem, rng)

        if self.async_mode == "threads":
            return self._fit_threads(problem, partition, balancing, rng, initial_weights)
        if self.async_mode == "process":
            return self._fit_process(problem, partition, balancing, rng, initial_weights)

        iterations_per_worker = max(1, problem.n_samples // cfg.num_workers)
        workers = build_workers(
            partition,
            iterations_per_worker,
            step_clip=cfg.step_clip,
            seed=int(rng.integers(0, 2**31 - 1)),
            importance_sampling=cfg.importance is ImportanceScheme.LIPSCHITZ,
        )
        staleness = self.staleness or UniformDelay(cfg.effective_max_delay)
        sim_seed = int(rng.integers(0, 2**31 - 1))
        if self.async_mode == "batched":
            simulator = BatchedSimulator(
                X=problem.X,
                y=problem.y,
                workers=workers,
                update_rule=BatchedSparseSGDRule(
                    objective=problem.objective, step_size=cfg.step_size
                ),
                staleness=staleness,
                seed=sim_seed,
                batch_size=self.batch_size,
                kernel=self.kernel,
            )
        else:
            simulator = AsyncSimulator(
                X=problem.X,
                y=problem.y,
                workers=workers,
                update_rule=SparseSGDUpdateRule(
                    objective=problem.objective, step_size=cfg.step_size
                ),
                staleness=staleness,
                seed=sim_seed,
            )
        sim_result = simulator.run(
            cfg.epochs,
            initial_weights=initial_weights,
            reshuffle=not cfg.reshuffle_sequences,
            regenerate=cfg.reshuffle_sequences,
            keep_epoch_weights=True,
        )
        info = self._info(problem, partition, balancing)
        info["async_mode"] = self.async_mode
        info["conflict_rate"] = sim_result.trace.conflict_rate()
        info["max_delay"] = staleness.max_delay
        return self._finalize(
            problem,
            sim_result.epoch_weights or [sim_result.weights],
            sim_result.trace,
            include_sampling=True,
            info=info,
        )

    # ------------------------------------------------------------------ #
    def _fit_process(self, problem: Problem, partition, balancing, rng, initial_weights) -> TrainResult:
        """Algorithm 4 on the true multi-process parameter-server tier."""
        cfg = self.config
        return self._run_cluster(
            problem,
            partition,
            rule="sgd",
            seed=int(rng.integers(0, 2**31 - 1)),
            include_sampling=True,
            importance_sampling=cfg.importance is ImportanceScheme.LIPSCHITZ,
            step_clip=cfg.step_clip,
            extra_info=self._info(problem, partition, balancing),
            initial_weights=initial_weights,
        )

    # ------------------------------------------------------------------ #
    def _fit_threads(self, problem: Problem, partition, balancing, rng, initial_weights) -> TrainResult:
        from repro.async_engine.events import EpochEvent, ExecutionTrace
        from repro.async_engine.threads import HogwildThreadPool

        cfg = self.config
        pool = HogwildThreadPool(
            problem.X,
            problem.y,
            problem.objective,
            partition,
            step_size=cfg.step_size,
            importance_sampling=cfg.importance is ImportanceScheme.LIPSCHITZ,
            step_clip=cfg.step_clip,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        if initial_weights is not None:
            pool.weights[:] = initial_weights
        iterations_per_worker = max(1, problem.n_samples // cfg.num_workers)

        trace = ExecutionTrace()
        weights_by_epoch = []
        avg_nnz = problem.X.nnz / max(problem.n_samples, 1)

        def callback(epoch: int, weights: np.ndarray) -> None:
            event = EpochEvent(epoch=epoch)
            total = iterations_per_worker * cfg.num_workers
            event.iterations = total
            event.sparse_coordinate_updates = int(total * avg_nnz)
            event.sample_draws = total
            trace.add_epoch(event)
            weights_by_epoch.append(weights)

        pool.run(cfg.epochs, iterations_per_worker, epoch_callback=callback)
        info = self._info(problem, partition, balancing)
        info["backend"] = "threads"
        info["async_mode"] = "threads"
        return self._finalize(problem, weights_by_epoch, trace, include_sampling=True, info=info)

    # ------------------------------------------------------------------ #
    def _info(self, problem: Problem, partition, balancing) -> dict:
        from repro.sparse.stats import psi

        L = problem.lipschitz_constants()
        return {
            "backend": self.backend,
            "num_workers": self.config.num_workers,
            "balancing_decision": balancing.decision.value,
            "balancing_method": self.config.balancing_method,
            "rho": balancing.rho,
            "zeta": self.config.zeta,
            "psi": psi(L),
            "mass_imbalance_before": balancing.imbalance_before,
            "mass_imbalance_after": balancing.imbalance_after,
            "local_vs_global_distortion": partition.local_vs_global_distortion(),
            "importance_scheme": self.config.importance.value,
        }


__all__ = ["ISASGDSolver"]
