"""The paper's primary contribution: importance-sampled asynchronous SGD.

Sub-modules
-----------
``importance``
    Lipschitz-based sampling distributions (Eq. 11/12) and unbiased
    re-weighting (Eq. 8).
``sampler``
    O(1) alias-method weighted sampler and pre-generated sample sequences.
``balancing``
    Algorithm 3 importance balancing, the ρ metric and the adaptive
    balance-or-shuffle rule of Algorithm 4.
``partition``
    Splitting a (re-ordered) dataset across workers and per-worker
    importance distributions.
``is_asgd``
    The IS-ASGD solver (Algorithm 4) built on the asynchronous engine.
``config``
    Dataclasses describing an IS-ASGD run.
"""

from repro.core.importance import (
    ImportanceScheme,
    importance_weights,
    optimal_probabilities,
    lipschitz_probabilities,
    uniform_probabilities,
    stepsize_reweighting,
)
from repro.core.sampler import AliasSampler, InverseCDFSampler, SampleSequence, make_sampler
from repro.core.balancing import (
    BalancingDecision,
    balance_dataset,
    decide_balancing,
    head_tail_order,
    importance_mass,
    imbalance_ratio,
)
from repro.core.partition import Partition, WorkerShard, partition_dataset
from repro.core.config import ISASGDConfig
from repro.core.is_asgd import ISASGDSolver

__all__ = [
    "ImportanceScheme",
    "importance_weights",
    "optimal_probabilities",
    "lipschitz_probabilities",
    "uniform_probabilities",
    "stepsize_reweighting",
    "AliasSampler",
    "InverseCDFSampler",
    "SampleSequence",
    "make_sampler",
    "BalancingDecision",
    "balance_dataset",
    "decide_balancing",
    "head_tail_order",
    "importance_mass",
    "imbalance_ratio",
    "Partition",
    "WorkerShard",
    "partition_dataset",
    "ISASGDConfig",
    "ISASGDSolver",
]
