"""Weighted samplers and pre-generated sample sequences.

The paper stresses that IS adds essentially no on-line cost because the
weighted sample sequence can be generated *before* training and the compute
threads simply iterate over it (Algorithm 2, line 3).  This module provides
two weighted samplers — the O(1)-per-draw alias method (Walker/Vose) and a
binary-search inverse-CDF sampler — plus :class:`SampleSequence`, the
pre-generated sequence abstraction the solvers consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Literal, Optional

import numpy as np

from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_probability_vector


#: Below this size the classic one-pair-per-iteration Vose construction is
#: used: it is already sub-millisecond there and keeps the exact alias
#: tables (hence draw streams) of the original implementation reproducible.
#: At or above it the vectorised round-based construction takes over.
VECTORIZED_BUILD_MIN_N = 4096


class AliasSampler:
    """Vose's alias method: O(n) construction, O(1) per draw.

    Parameters
    ----------
    probabilities:
        The target distribution over ``n`` items.
    seed:
        Randomness source for :meth:`draw`/:meth:`sample`.
    """

    def __init__(self, probabilities: np.ndarray, seed: RandomState = None) -> None:
        p = check_probability_vector(probabilities, "probabilities")
        self._rng = as_rng(seed)
        self.n = p.shape[0]
        self.probabilities = p
        self._prob_table = np.zeros(self.n, dtype=np.float64)
        self._alias_table = np.zeros(self.n, dtype=np.int64)
        self._build(p)

    def _build(self, p: np.ndarray) -> None:
        """Construct the alias/probability tables without a per-item Python loop.

        The classic Vose construction pops one (small, large) pair per
        interpreted iteration — O(n) Python overhead paid on every sampler
        construction (once per worker per epoch when sequences are
        regenerated).  This variant lays the larges' surpluses end to end on
        a cumulative axis and assigns each small's deficit to the large
        whose surplus window it starts in; every small is finalised per
        round with vectorised NumPy ops, and only larges demoted below 1 go
        into the next round.  Any valid alias table (not necessarily Vose's)
        represents the distribution exactly, which the test-suite verifies
        by reconstruction.  Below :data:`VECTORIZED_BUILD_MIN_N` items the
        classic sequential construction is kept (already sub-millisecond,
        and its exact tables/draw streams stay reproducible).
        """
        scaled = (p * self.n).copy()
        prob = self._prob_table
        alias = self._alias_table
        small = np.nonzero(scaled < 1.0)[0]
        large = np.nonzero(scaled >= 1.0)[0]
        if self.n < VECTORIZED_BUILD_MIN_N:
            self._build_sequential(scaled, list(small), list(large))
            return
        rounds = 0
        max_rounds = 64 + 2 * int(np.ceil(np.log2(self.n + 1)))
        while small.size and large.size and rounds < max_rounds:
            rounds += 1
            deficits = 1.0 - scaled[small]
            cum_def = np.cumsum(deficits)
            cum_sur = np.cumsum(scaled[large] - 1.0)
            n_l = large.size
            # Window of large j on the cumulative axis: (cum_sur[j-1], cum_sur[j]].
            # Each small is paired with the large whose window contains the
            # *start* of its deficit interval; a small whose interval spans a
            # window boundary simply drives that large's residual below 1
            # (demoting it), exactly as a sequential absorption would.
            owners = np.searchsorted(cum_sur, cum_def - deficits, side="right")
            np.clip(owners, 0, n_l - 1, out=owners)
            prob[small] = scaled[small]
            alias[small] = large[owners]
            charged = np.bincount(owners, weights=deficits, minlength=n_l)
            scaled[large] -= charged
            still_large = scaled[large] >= 1.0
            small = large[~still_large]
            large = large[still_large]
        if small.size and large.size:  # pragma: no cover - adversarial guard
            self._build_sequential(scaled, list(small), list(large))
            return
        for remaining in (*large, *small):
            prob[remaining] = 1.0
            alias[remaining] = remaining

    def _build_sequential(self, scaled: np.ndarray, small: List[int], large: List[int]) -> None:
        """Classic one-pair-per-iteration Vose construction (small n, and fallback)."""
        while small and large:
            s = small.pop()
            l = large.pop()
            self._prob_table[s] = scaled[s]
            self._alias_table[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for remaining in (*large, *small):
            self._prob_table[remaining] = 1.0
            self._alias_table[remaining] = remaining

    def draw(self) -> int:
        """Draw a single index from the distribution."""
        col = int(self._rng.integers(0, self.n))
        if self._rng.random() < self._prob_table[col]:
            return col
        return int(self._alias_table[col])

    def sample(self, size: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``size`` i.i.d. indices (vectorised)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        gen = rng if rng is not None else self._rng
        cols = gen.integers(0, self.n, size=size)
        coins = gen.random(size=size)
        take_alias = coins >= self._prob_table[cols]
        out = np.where(take_alias, self._alias_table[cols], cols)
        return out.astype(np.int64)


class InverseCDFSampler:
    """Weighted sampling by binary search on the cumulative distribution.

    O(log n) per draw; kept as a reference implementation and for the
    sampler ablation benchmark.
    """

    def __init__(self, probabilities: np.ndarray, seed: RandomState = None) -> None:
        p = check_probability_vector(probabilities, "probabilities")
        self._rng = as_rng(seed)
        self.n = p.shape[0]
        self.probabilities = p
        self._cdf = np.cumsum(p)
        self._cdf[-1] = 1.0

    def draw(self) -> int:
        """Draw a single index from the distribution."""
        u = self._rng.random()
        return int(np.searchsorted(self._cdf, u, side="right"))

    def sample(self, size: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``size`` i.i.d. indices (vectorised)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        gen = rng if rng is not None else self._rng
        u = gen.random(size=size)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)


SamplerKind = Literal["alias", "inverse_cdf"]


def make_sampler(
    probabilities: np.ndarray,
    kind: SamplerKind = "alias",
    seed: RandomState = None,
):
    """Factory for the weighted samplers (``"alias"`` or ``"inverse_cdf"``)."""
    if kind == "alias":
        return AliasSampler(probabilities, seed=seed)
    if kind == "inverse_cdf":
        return InverseCDFSampler(probabilities, seed=seed)
    raise ValueError(f"unknown sampler kind {kind!r}")


@dataclass
class SampleSequence:
    """A pre-generated sequence of (local) sample indices for one worker.

    Attributes
    ----------
    indices:
        The sequence of local row indices to visit, in order.
    probabilities:
        The distribution the sequence was drawn from (needed for the
        ``1/(n p_i)`` re-weighting).
    """

    indices: np.ndarray
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        self.probabilities = check_probability_vector(self.probabilities, "probabilities")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.probabilities.shape[0]
        ):
            raise ValueError("sequence indices out of range of the probability vector")

    def __len__(self) -> int:
        return int(self.indices.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices.tolist())

    def __getitem__(self, t: int) -> int:
        return int(self.indices[t])

    def reshuffled(self, seed: RandomState = None) -> "SampleSequence":
        """Return a permuted copy of the sequence.

        This implements the paper's "generate once and shuffle every epoch"
        approximation (Section 4.2): the multiset of visited samples — and
        therefore the empirical sampling frequencies — is preserved while
        the visit order changes.
        """
        rng = as_rng(seed)
        return SampleSequence(indices=rng.permutation(self.indices), probabilities=self.probabilities)

    @classmethod
    def generate(
        cls,
        probabilities: np.ndarray,
        length: int,
        *,
        seed: RandomState = None,
        sampler: SamplerKind = "alias",
    ) -> "SampleSequence":
        """Pre-generate a weighted sample sequence of ``length`` draws."""
        if length < 0:
            raise ValueError("length must be non-negative")
        rng = as_rng(seed)
        s = make_sampler(probabilities, kind=sampler, seed=rng)
        return cls(indices=s.sample(length, rng=rng), probabilities=np.asarray(probabilities, dtype=np.float64))

    @classmethod
    def uniform_epoch(cls, n: int, *, seed: RandomState = None) -> "SampleSequence":
        """A without-replacement random permutation of ``range(n)`` (plain SGD epoch)."""
        rng = as_rng(seed)
        p = np.full(n, 1.0 / n)
        return cls(indices=rng.permutation(n), probabilities=p)

    def empirical_frequencies(self) -> np.ndarray:
        """Observed visit frequencies (should approach ``probabilities`` for long sequences)."""
        counts = np.bincount(self.indices, minlength=self.probabilities.shape[0])
        total = counts.sum()
        return counts / total if total else counts.astype(np.float64)


__all__ = [
    "AliasSampler",
    "InverseCDFSampler",
    "SampleSequence",
    "make_sampler",
]
