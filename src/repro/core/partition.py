"""Worker data partitioning.

After the dataset has been re-ordered (balanced or shuffled) Algorithm 4
splits it into contiguous shards, one per worker, and each worker builds its
*local* importance distribution from its own Lipschitz constants.  This
module owns that split and the per-shard distributions, and provides the
diagnostics used in the Figure 2 discussion (local vs global probabilities).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.importance import lipschitz_probabilities, uniform_probabilities
from repro.utils.validation import check_array_1d


@dataclass
class WorkerShard:
    """One worker's contiguous shard of the (re-ordered) dataset.

    Attributes
    ----------
    worker_id:
        Index of the worker owning the shard.
    row_indices:
        Global row indices (into the original dataset) of the shard's
        samples, in shard-local order.
    lipschitz:
        The per-sample Lipschitz constants of those rows.
    probabilities:
        The worker-local sampling distribution over the shard.
    """

    worker_id: int
    row_indices: np.ndarray
    lipschitz: np.ndarray
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        self.row_indices = np.ascontiguousarray(self.row_indices, dtype=np.int64)
        self.lipschitz = check_array_1d(self.lipschitz, "lipschitz")
        self.probabilities = np.ascontiguousarray(self.probabilities, dtype=np.float64)
        if not (self.row_indices.shape == self.lipschitz.shape == self.probabilities.shape):
            raise ValueError("row_indices, lipschitz and probabilities must have equal shapes")

    @property
    def size(self) -> int:
        """Number of samples in the shard."""
        return int(self.row_indices.size)

    @property
    def importance_mass(self) -> float:
        """Total importance mass ``Φ_a = Σ L_i`` of the shard."""
        return float(self.lipschitz.sum())

    def global_probabilities(self, total_mass: float) -> np.ndarray:
        """What the shard samples' probabilities would be under *global* IS."""
        if total_mass <= 0.0:
            return uniform_probabilities(max(self.size, 1))[: self.size]
        return self.lipschitz / total_mass


@dataclass
class Partition:
    """A full partition of the dataset across workers."""

    shards: List[WorkerShard]
    order: np.ndarray

    @property
    def num_workers(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def total_mass(self) -> float:
        """Total importance mass of the dataset."""
        return float(sum(s.importance_mass for s in self.shards))

    def mass_imbalance(self) -> float:
        """Max/min ratio of per-shard importance masses (1.0 = perfect balance)."""
        masses = np.array([s.importance_mass for s in self.shards])
        min_mass = float(masses.min())
        if min_mass <= 0.0:
            return float("inf")
        return float(masses.max()) / min_mass

    def local_vs_global_distortion(self) -> float:
        """Mean absolute relative distortion of local vs global sampling probabilities.

        For each sample the local probability is ``L_i / Φ_a`` and under a
        perfectly balanced partition with ``numT`` workers it would equal
        ``numT * L_i / Σ L`` — i.e. the global probability scaled by the
        worker count.  The distortion reported here is the mean of
        ``|p_local - numT * p_global| / (numT * p_global)`` over all samples,
        which is exactly zero when every ``Φ_a`` is equal (Eq. 19).
        """
        total = self.total_mass
        if total <= 0.0:
            return 0.0
        numT = self.num_workers
        distortions = []
        for shard in self.shards:
            p_local = shard.probabilities
            p_global_scaled = numT * shard.global_probabilities(total)
            with np.errstate(divide="ignore", invalid="ignore"):
                rel = np.abs(p_local - p_global_scaled) / np.where(
                    p_global_scaled > 0, p_global_scaled, 1.0
                )
            distortions.append(rel)
        return float(np.concatenate(distortions).mean()) if distortions else 0.0


def partition_dataset(
    order: Sequence[int],
    lipschitz: np.ndarray,
    num_workers: int,
    *,
    scheme: str = "lipschitz",
) -> Partition:
    """Split the re-ordered dataset into contiguous per-worker shards.

    Parameters
    ----------
    order:
        Row ordering produced by :func:`repro.core.balancing.balance_dataset`
        (or any permutation / subset of row indices).
    lipschitz:
        Per-sample Lipschitz constants indexed by *original* row index.
    num_workers:
        Number of shards; must be >= 1 (it is capped at the number of rows).
    scheme:
        ``"lipschitz"`` builds each shard's IS distribution from its local
        constants (Algorithm 4, line 11); ``"uniform"`` gives every local
        sample equal probability (plain ASGD behaviour).
    """
    order = np.ascontiguousarray(order, dtype=np.int64)
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    if order.size == 0:
        raise ValueError("order must contain at least one row index")
    if order.min() < 0 or order.max() >= L.shape[0]:
        raise ValueError("order contains indices outside the Lipschitz array")
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    num_workers = min(num_workers, order.size)

    bounds = np.linspace(0, order.size, num_workers + 1).astype(np.int64)
    shards: List[WorkerShard] = []
    for a in range(num_workers):
        rows = order[bounds[a] : bounds[a + 1]]
        local_L = L[rows]
        if scheme == "lipschitz":
            probs = lipschitz_probabilities(local_L)
        elif scheme == "uniform":
            probs = uniform_probabilities(rows.size)
        else:
            raise ValueError(f"unknown scheme {scheme!r}")
        shards.append(
            WorkerShard(worker_id=a, row_indices=rows, lipschitz=local_L, probabilities=probs)
        )
    return Partition(shards=shards, order=order)


__all__ = ["WorkerShard", "Partition", "partition_dataset"]
