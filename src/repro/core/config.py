"""Configuration dataclasses for the IS-ASGD solver family."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.balancing import DEFAULT_ZETA, BalancingDecision
from repro.core.importance import ImportanceScheme
from repro.utils.validation import check_in_range, check_positive


@dataclass
class ISASGDConfig:
    """Hyper-parameters of an IS-ASGD run (Algorithm 4).

    Parameters
    ----------
    step_size:
        Base step size λ; the effective step of sample ``i`` is
        ``λ / (n p_i)`` under importance sampling.
    epochs:
        Number of passes over the data (each worker performs
        ``n / num_workers`` iterations per epoch).
    num_workers:
        Degree of asynchrony (the paper's thread count / τ proxy).
    zeta:
        Threshold of the adaptive balancing rule.
    importance:
        Sampling scheme; ``LIPSCHITZ`` is IS-ASGD, ``UNIFORM`` degrades the
        solver to plain ASGD over the same execution engine.
    force_balancing:
        Override the adaptive rule (None = adaptive).
    balancing_method:
        ``"head_tail"`` (the paper's Algorithm 3, default) or ``"snake"``
        (the serpentine-dealing extension that also balances heavy-tailed
        Lipschitz spectra).
    reshuffle_sequences:
        Regenerate (True) or merely permute (False) the per-worker sample
        sequences at every epoch.  The paper notes the permute-only variant
        removes the residual sampling overhead with no practical loss.
    max_delay:
        Maximum staleness (in iterations) injected by the asynchronous
        engine; ``None`` uses the worker count, mirroring the common
        assumption that delay is proportional to concurrency.
    step_clip:
        Upper bound applied to the re-weighting factor ``1/(n p_i)`` to keep
        rarely-sampled points from producing destabilising steps.
    seed:
        Master seed for balancing, sequence generation and the engine.
    """

    step_size: float = 0.5
    epochs: int = 10
    num_workers: int = 4
    zeta: float = DEFAULT_ZETA
    importance: ImportanceScheme = ImportanceScheme.LIPSCHITZ
    force_balancing: Optional[BalancingDecision] = None
    balancing_method: str = "head_tail"
    reshuffle_sequences: bool = True
    max_delay: Optional[int] = None
    step_clip: float = 100.0
    seed: int = 0
    record_every: int = 1
    use_normalized_rho: bool = True

    def __post_init__(self) -> None:
        check_positive(self.step_size, "step_size")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        check_positive(self.zeta, "zeta")
        check_positive(self.step_clip, "step_clip")
        if self.record_every < 1:
            raise ValueError("record_every must be >= 1")
        if self.max_delay is not None and self.max_delay < 0:
            raise ValueError("max_delay must be >= 0 when given")
        if isinstance(self.importance, str):
            self.importance = ImportanceScheme(self.importance)
        if self.balancing_method not in {"head_tail", "snake"}:
            raise ValueError(
                f"balancing_method must be 'head_tail' or 'snake', got {self.balancing_method!r}"
            )

    @property
    def effective_max_delay(self) -> int:
        """The τ actually used by the asynchronous engine."""
        return self.num_workers if self.max_delay is None else self.max_delay

    def with_updates(self, **kwargs) -> "ISASGDConfig":
        """Return a copy with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **kwargs)


__all__ = ["ISASGDConfig"]
