"""Dataset substrate.

The paper evaluates on four LibSVM datasets (News20, URL, KDD2010-Algebra,
KDD2010-Bridge).  Those files are multi-gigabyte downloads and cannot be
shipped here, so this package provides *synthetic surrogates* whose
statistical shape — dimensionality ratio, per-sample sparsity, the
bound-improvement ratio ψ and the imbalance metric ρ — tracks Table 1 of
the paper at laptop scale.  Real LibSVM files can be substituted through
:func:`repro.sparse.io.load_libsvm` and :func:`repro.datasets.loader.load_dataset`.
"""

from repro.datasets.synthetic import (
    SyntheticSpec,
    make_sparse_classification,
    make_sparse_regression,
)
from repro.datasets.catalog import (
    DatasetDescriptor,
    PAPER_DATASETS,
    get_descriptor,
    list_datasets,
)
from repro.datasets.loader import Dataset, load_dataset
from repro.datasets.splits import train_test_split

__all__ = [
    "SyntheticSpec",
    "make_sparse_classification",
    "make_sparse_regression",
    "DatasetDescriptor",
    "PAPER_DATASETS",
    "get_descriptor",
    "list_datasets",
    "Dataset",
    "load_dataset",
    "train_test_split",
]
