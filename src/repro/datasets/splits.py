"""Train/test splitting utilities for :class:`~repro.sparse.csr.CSRMatrix` data."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_in_range


def train_test_split(
    X: CSRMatrix,
    y: np.ndarray,
    *,
    test_fraction: float = 0.2,
    seed: RandomState = 0,
    stratify: bool = True,
) -> Tuple[CSRMatrix, np.ndarray, CSRMatrix, np.ndarray]:
    """Split ``(X, y)`` into train and test partitions.

    Parameters
    ----------
    test_fraction:
        Fraction of rows put in the test partition (0 < f < 1).
    stratify:
        When the labels are ±1, keep the class balance identical in both
        partitions (per-class shuffling).

    Returns
    -------
    (X_train, y_train, X_test, y_test)
    """
    check_in_range(test_fraction, "test_fraction", low=0.0, high=1.0, inclusive=False)
    if y.shape[0] != X.n_rows:
        raise ValueError("X and y must have the same number of rows")
    rng = as_rng(seed)
    n = X.n_rows
    if stratify and np.all(np.isin(np.unique(y), (-1.0, 1.0))):
        test_idx_parts = []
        for cls in (-1.0, 1.0):
            cls_idx = np.nonzero(y == cls)[0]
            rng.shuffle(cls_idx)
            k = int(round(test_fraction * cls_idx.size))
            test_idx_parts.append(cls_idx[:k])
        test_idx = np.sort(np.concatenate(test_idx_parts))
    else:
        order = rng.permutation(n)
        k = int(round(test_fraction * n))
        test_idx = np.sort(order[:k])
    mask = np.zeros(n, dtype=bool)
    mask[test_idx] = True
    train_idx = np.nonzero(~mask)[0]

    return (
        X.take_rows(train_idx),
        y[train_idx],
        X.take_rows(test_idx),
        y[test_idx],
    )


def k_fold_indices(n: int, k: int, seed: RandomState = 0) -> list[np.ndarray]:
    """Return ``k`` disjoint index folds covering ``range(n)``."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if k > n:
        raise ValueError("cannot create more folds than samples")
    order = as_rng(seed).permutation(n)
    return [np.sort(fold) for fold in np.array_split(order, k)]


__all__ = ["train_test_split", "k_fold_indices"]
