"""Catalog of the paper's evaluation datasets and their surrogate recipes.

Table 1 of the paper lists four LibSVM datasets.  Each
:class:`DatasetDescriptor` below records the paper's reported statistics
(for reference and for the Table 1 regeneration) together with the
*scaled-down* synthetic recipe used by the benchmark harness.  Scaling
preserves the ordering of the relevant properties across datasets:

========  ===========  ============  ============  =====  =======
dataset   dimension    instances     sparsity      ψ      ρ-band
========  ===========  ============  ============  =====  =======
news20    1.36e6       2.0e4         ~1e-3 (dense) high   high
url       3.2e6        2.4e6         ~1e-5         high   medium
algebra   2.0e7        8.4e6         ~1e-7         low    low
bridge    3.0e7        1.9e7         ~1e-7         lowest low
========  ===========  ============  ============  =====  =======

"high ψ" datasets get a narrow Lipschitz spread (small IS gain), "low ψ"
datasets a heavy-tailed spread (large IS gain) — mirroring the paper's
observation that the KDD datasets benefit most from IS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.datasets.synthetic import SyntheticSpec


@dataclass(frozen=True)
class PaperStats:
    """Statistics reported in Table 1 of the paper (for reference output)."""

    dimension: int
    instances: int
    grad_sparsity: float
    psi: float
    rho: float
    source: str


@dataclass(frozen=True)
class DatasetDescriptor:
    """A named dataset: the paper's statistics plus our surrogate recipe."""

    name: str
    paper: PaperStats
    surrogate: SyntheticSpec
    step_size: float
    epochs: int
    description: str = ""

    @property
    def surrogate_density(self) -> float:
        """Expected density of the surrogate design matrix."""
        return self.surrogate.density


def _spec(name: str, n_samples: int, n_features: int, nnz: float, skew: float,
          spread: float, noise: float) -> SyntheticSpec:
    return SyntheticSpec(
        n_samples=n_samples,
        n_features=n_features,
        nnz_per_sample=nnz,
        feature_skew=skew,
        norm_spread=spread,
        label_noise=noise,
        name=name,
    )


#: The four surrogate datasets, keyed by short name.  Sizes are chosen so
#: the full Figure 3/4/5 sweep runs in minutes on a laptop while keeping the
#: qualitative ordering of Table 1 (news20 smallest and densest; bridge the
#: largest, sparsest and most IS-favourable).
PAPER_DATASETS: Dict[str, DatasetDescriptor] = {
    "news20": DatasetDescriptor(
        name="news20",
        paper=PaperStats(
            dimension=1_355_191,
            instances=19_996,
            grad_sparsity=1e-3,
            psi=0.972,
            rho=5e-4,
            source="JMLR",
        ),
        surrogate=_spec("news20", n_samples=2_000, n_features=4_000, nnz=60.0,
                        skew=0.9, spread=0.15, noise=0.05),
        step_size=0.5,
        epochs=15,
        description="Low dimensionality, relatively dense, high psi (small IS gain).",
    ),
    "url": DatasetDescriptor(
        name="url",
        paper=PaperStats(
            dimension=3_231_961,
            instances=2_396_130,
            grad_sparsity=1e-5,
            psi=0.964,
            rho=3e-4,
            source="ICML",
        ),
        surrogate=_spec("url", n_samples=6_000, n_features=20_000, nnz=30.0,
                        skew=1.1, spread=0.25, noise=0.04),
        step_size=0.05,
        epochs=18,
        description="Large sparse dataset with moderate psi.",
    ),
    "kdd_algebra": DatasetDescriptor(
        name="kdd_algebra",
        paper=PaperStats(
            dimension=20_216_830,
            instances=8_407_752,
            grad_sparsity=1e-7,
            psi=0.892,
            rho=1e-4,
            source="KDD",
        ),
        surrogate=_spec("kdd_algebra", n_samples=8_000, n_features=60_000, nnz=20.0,
                        skew=1.2, spread=0.7, noise=0.03),
        step_size=0.5,
        epochs=20,
        description="Extremely sparse and large; low psi so IS helps a lot.",
    ),
    "kdd_bridge": DatasetDescriptor(
        name="kdd_bridge",
        paper=PaperStats(
            dimension=29_890_095,
            instances=19_264_097,
            grad_sparsity=1e-7,
            psi=0.877,
            rho=2e-4,
            source="KDD",
        ),
        surrogate=_spec("kdd_bridge", n_samples=10_000, n_features=80_000, nnz=18.0,
                        skew=1.25, spread=0.85, noise=0.03),
        step_size=0.5,
        epochs=20,
        description="The largest and sparsest dataset; lowest psi, biggest IS gain.",
    ),
}

#: Smaller variants used by the test-suite and quick-running benchmarks.
#: The feature dimension is shrunk less aggressively than the sample count so
#: that the smoke datasets stay genuinely sparse (otherwise every update
#: conflicts and the parallel-scaling behaviour stops resembling the paper's).
SMOKE_DATASETS: Dict[str, DatasetDescriptor] = {
    key: DatasetDescriptor(
        name=f"{desc.name}_smoke",
        paper=desc.paper,
        surrogate=SyntheticSpec(
            n_samples=max(200, desc.surrogate.n_samples // 20),
            n_features=max(400, desc.surrogate.n_features // 8),
            nnz_per_sample=min(desc.surrogate.nnz_per_sample, 12.0),
            feature_skew=desc.surrogate.feature_skew,
            norm_spread=desc.surrogate.norm_spread,
            label_noise=desc.surrogate.label_noise,
            name=f"{desc.name}_smoke",
        ),
        step_size=desc.step_size,
        epochs=min(desc.epochs, 10),
        description=f"Smoke-test sized variant of {desc.name}.",
    )
    for key, desc in PAPER_DATASETS.items()
}


def list_datasets(include_smoke: bool = False) -> List[str]:
    """Names of the available surrogate datasets."""
    names = list(PAPER_DATASETS)
    if include_smoke:
        names += [f"{n}_smoke" for n in PAPER_DATASETS]
    return names


def get_descriptor(name: str) -> DatasetDescriptor:
    """Look up a dataset descriptor by name (smoke variants use the ``_smoke`` suffix)."""
    if name in PAPER_DATASETS:
        return PAPER_DATASETS[name]
    if name.endswith("_smoke"):
        base = name[: -len("_smoke")]
        if base in SMOKE_DATASETS:
            return SMOKE_DATASETS[base]
    raise KeyError(
        f"unknown dataset {name!r}; available: {', '.join(list_datasets(include_smoke=True))}"
    )


__all__ = [
    "PaperStats",
    "DatasetDescriptor",
    "PAPER_DATASETS",
    "SMOKE_DATASETS",
    "list_datasets",
    "get_descriptor",
]
