"""Synthetic sparse dataset generators.

The generators produce linearly-separable-with-noise classification (and
regression) problems with precise control over the three properties the
IS-ASGD algorithms are sensitive to:

* **per-sample sparsity** — how many features each sample touches, which
  determines the cost of an index-compressed update and the conflict-graph
  density Δ̄;
* **feature-popularity skew** — a Zipf-like column distribution so that a
  few "hot" features are shared by many samples (this is what creates
  update conflicts in asynchronous execution, like the frequent tokens of
  News20 or the hot URL features);
* **row-norm heterogeneity** — a log-normal spread of sample norms, which
  directly controls the spread of the Lipschitz constants and therefore ψ
  (Eq. 15) and ρ (Eq. 20): heavy-tailed norms mean low ψ and large IS gains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_in_range, check_positive


@dataclass
class SyntheticSpec:
    """Recipe for a synthetic sparse classification dataset.

    Parameters
    ----------
    n_samples, n_features:
        Size of the design matrix.
    nnz_per_sample:
        Average number of non-zero features per sample (the generator draws
        per-row counts around this mean, minimum 1).
    feature_skew:
        Zipf exponent for feature popularity; 0 gives uniform feature usage,
        values around 1–1.5 concentrate mass on a few hot features.
    norm_spread:
        Standard deviation of the log-normal row-norm multiplier.  0 makes
        every row the same norm (ψ → 1, no IS gain); larger values create a
        heavy tail (ψ ≪ 1, large IS gain).
    label_noise:
        Probability of flipping a label after the linear rule assigns it.
    bias_fraction:
        Fraction of samples whose label is decided by the dense "ground
        truth" weight vector restricted to their support; the rest are
        assigned random labels (models the non-separable part of real data).
    """

    n_samples: int
    n_features: int
    nnz_per_sample: float
    feature_skew: float = 1.1
    norm_spread: float = 0.8
    label_noise: float = 0.05
    bias_fraction: float = 1.0
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.n_samples <= 0 or self.n_features <= 0:
            raise ValueError("n_samples and n_features must be positive")
        check_positive(self.nnz_per_sample, "nnz_per_sample")
        check_in_range(self.feature_skew, "feature_skew", low=0.0, high=10.0)
        check_in_range(self.norm_spread, "norm_spread", low=0.0, high=10.0)
        check_in_range(self.label_noise, "label_noise", low=0.0, high=0.5)
        check_in_range(self.bias_fraction, "bias_fraction", low=0.0, high=1.0)

    @property
    def density(self) -> float:
        """Expected fraction of non-zeros per row."""
        return min(1.0, self.nnz_per_sample / self.n_features)


def _feature_probabilities(n_features: int, skew: float) -> np.ndarray:
    """Zipf-like feature popularity distribution (normalised)."""
    ranks = np.arange(1, n_features + 1, dtype=np.float64)
    if skew == 0.0:
        p = np.ones(n_features)
    else:
        p = ranks ** (-skew)
    return p / p.sum()


def _draw_row_support(
    rng: np.random.Generator,
    n_features: int,
    nnz: int,
    feature_probs: np.ndarray,
) -> np.ndarray:
    """Draw ``nnz`` distinct feature indices according to the popularity law."""
    nnz = min(max(1, nnz), n_features)
    if nnz >= n_features:
        return np.arange(n_features, dtype=np.int64)
    # Rejection-free draw: sample extra, de-duplicate, top up uniformly if short.
    draw = rng.choice(n_features, size=min(n_features, 2 * nnz + 8), replace=True, p=feature_probs)
    support = np.unique(draw)[:nnz]
    if support.size < nnz:
        remaining = np.setdiff1d(
            rng.choice(n_features, size=min(n_features, 4 * nnz + 16), replace=False),
            support,
            assume_unique=False,
        )
        support = np.concatenate([support, remaining[: nnz - support.size]])
    return np.sort(support[:nnz]).astype(np.int64)


def make_sparse_classification(
    spec: SyntheticSpec,
    seed: RandomState = None,
) -> Tuple[CSRMatrix, np.ndarray, np.ndarray]:
    """Generate ``(X, y, w_true)`` for a binary classification problem.

    Labels are in {-1, +1}.  ``w_true`` is the planted ground-truth weight
    vector; it is returned so tests can verify that solvers recover a model
    correlated with it.
    """
    rng = as_rng(seed)
    feature_probs = _feature_probabilities(spec.n_features, spec.feature_skew)
    w_true = rng.normal(0.0, 1.0, size=spec.n_features)

    rows = []
    labels = np.empty(spec.n_samples, dtype=np.float64)
    # Per-row nnz: Poisson around the target mean, at least 1.
    row_nnz = np.maximum(1, rng.poisson(lam=spec.nnz_per_sample, size=spec.n_samples))
    # Per-row norm multiplier: log-normal with median 1.
    norm_mult = np.exp(rng.normal(0.0, spec.norm_spread, size=spec.n_samples))

    for i in range(spec.n_samples):
        support = _draw_row_support(rng, spec.n_features, int(row_nnz[i]), feature_probs)
        values = rng.normal(0.0, 1.0, size=support.size)
        norm = np.linalg.norm(values)
        if norm > 0:
            values = values / norm * norm_mult[i]
        rows.append((support, values))

        margin = float(np.dot(values, w_true[support]))
        if rng.random() < spec.bias_fraction:
            label = 1.0 if margin >= 0 else -1.0
        else:
            label = 1.0 if rng.random() < 0.5 else -1.0
        if rng.random() < spec.label_noise:
            label = -label
        labels[i] = label

    X = CSRMatrix.from_rows(rows, n_cols=spec.n_features)
    return X, labels, w_true


def make_sparse_regression(
    spec: SyntheticSpec,
    seed: RandomState = None,
    noise_std: float = 0.1,
) -> Tuple[CSRMatrix, np.ndarray, np.ndarray]:
    """Generate ``(X, y, w_true)`` for a sparse linear-regression problem.

    ``y_i = <x_i, w_true> + noise`` with Gaussian noise of standard
    deviation ``noise_std``.
    """
    rng = as_rng(seed)
    X, _, w_true = make_sparse_classification(spec, seed=rng)
    y = X.dot(w_true) + rng.normal(0.0, noise_std, size=X.n_rows)
    return X, y, w_true


def heterogeneous_lipschitz_dataset(
    n_samples: int,
    n_features: int,
    *,
    nnz_per_sample: float = 10.0,
    heavy_tail: float = 1.5,
    seed: RandomState = None,
    name: str = "heavy_tail",
) -> Tuple[CSRMatrix, np.ndarray, np.ndarray]:
    """Convenience generator with a deliberately heavy-tailed norm distribution.

    Produces a dataset with ψ well below 1 so the importance-sampling gain
    (and the importance-balancing problem) is pronounced — the regime where
    the paper's Figure 2 story matters.
    """
    spec = SyntheticSpec(
        n_samples=n_samples,
        n_features=n_features,
        nnz_per_sample=nnz_per_sample,
        feature_skew=1.2,
        norm_spread=heavy_tail,
        label_noise=0.02,
        name=name,
    )
    return make_sparse_classification(spec, seed=seed)


__all__ = [
    "SyntheticSpec",
    "make_sparse_classification",
    "make_sparse_regression",
    "heterogeneous_lipschitz_dataset",
]
