"""Dataset loading facade.

:func:`load_dataset` is the single entry point the examples and the
experiment harness use: it accepts a catalog name (generating the synthetic
surrogate on the fly, with in-process caching) or a path to a LibSVM file
(loading the real data).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.datasets.catalog import DatasetDescriptor, get_descriptor
from repro.datasets.synthetic import make_sparse_classification
from repro.sparse.csr import CSRMatrix
from repro.sparse.io import load_libsvm
from repro.sparse.stats import DatasetStats, describe_dataset
from repro.utils.rng import RandomState, derive_seed


@dataclass
class Dataset:
    """A loaded dataset bundle.

    Attributes
    ----------
    name:
        Catalog name or file stem.
    X, y:
        Design matrix and labels.
    descriptor:
        The catalog descriptor when the dataset came from the catalog.
    w_true:
        Planted ground-truth weights for synthetic data (``None`` otherwise).
    """

    name: str
    X: CSRMatrix
    y: np.ndarray
    descriptor: Optional[DatasetDescriptor] = None
    w_true: Optional[np.ndarray] = None

    @property
    def n_samples(self) -> int:
        """Number of rows."""
        return self.X.n_rows

    @property
    def n_features(self) -> int:
        """Number of columns."""
        return self.X.n_cols

    def stats(self, lipschitz: np.ndarray, source: Optional[str] = None) -> DatasetStats:
        """Table-1 style statistics given per-sample Lipschitz constants."""
        src = source or (self.descriptor.paper.source if self.descriptor else "file")
        return describe_dataset(self.name, self.X, lipschitz, source=src)


_CACHE: Dict[Tuple[str, int], Dataset] = {}


def clear_cache() -> None:
    """Drop all cached synthetic datasets (mostly useful in tests)."""
    _CACHE.clear()


def load_dataset(
    name_or_path: str,
    *,
    seed: RandomState = 0,
    use_cache: bool = True,
) -> Dataset:
    """Load a dataset by catalog name or LibSVM file path.

    Parameters
    ----------
    name_or_path:
        Either a name known to :mod:`repro.datasets.catalog` (e.g.
        ``"news20"``, ``"kdd_bridge_smoke"``) or a path to a LibSVM file.
    seed:
        Seed for synthetic generation (catalog names only).  The same
        ``(name, seed)`` pair always returns the identical dataset.
    use_cache:
        Reuse an already generated synthetic dataset within the process.
    """
    path = Path(name_or_path)
    if path.suffix in {".txt", ".libsvm", ".svm", ".gz"} or path.exists():
        X, y = load_libsvm(path)
        return Dataset(name=path.stem, X=X, y=y)

    descriptor = get_descriptor(name_or_path)
    # zlib.crc32 gives a process-independent name digest (Python's builtin
    # hash() is salted per process, which would make the generated data
    # differ from run to run).
    name_digest = zlib.crc32(descriptor.name.encode("utf-8")) & 0x7FFFFFFF
    cache_seed = derive_seed(seed, name_digest)
    key = (descriptor.name, cache_seed)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    X, y, w_true = make_sparse_classification(descriptor.surrogate, seed=cache_seed)
    ds = Dataset(name=name_or_path, X=X, y=y, descriptor=descriptor, w_true=w_true)
    if use_cache:
        _CACHE[key] = ds
    return ds


__all__ = ["Dataset", "load_dataset", "clear_cache"]
