"""Micro-batching request queue over the kernel registry's batch primitives.

Single-row queries are cheap to *answer* but expensive to answer *one at a
time*: every request pays a full Python/kernel-call round trip for one
sparse dot product.  The :class:`MicroBatcher` coalesces concurrently
submitted queries into one flat gathered-rows batch and scores the whole
batch with a single
:meth:`~repro.kernels.base.KernelBackend.segment_margins` call — the same
primitive the training tiers batch with — amortising the per-call overhead
over up to ``max_batch`` requests (``BENCH_serving.json`` gates the
resulting throughput at ≥ 5x the one-query-at-a-time loop).

``lanes`` scoring threads drain the queue concurrently.  The native kernel
backend releases the GIL inside the C segment reduction, so multiple lanes
genuinely overlap there; under the pure-Python backends extra lanes still
overlap the queueing/bookkeeping with the numpy reductions.

Swap-consistency contract: each lane pins *one* model reference per batch
(:meth:`~repro.serving.swap.ModelRef.get`) and scores every request of the
batch against it, so a concurrent hot swap never produces a mixed-weight
response; each response names the model version that produced it.  The
optional LRU result cache is keyed by ``(model version, row hash)``, so a
swap implicitly invalidates every cached margin.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serving.model import ScoringModel, _normalise_query
from repro.serving.swap import ModelRef


class PendingResult:
    """A submitted query's future response (wait with :meth:`result`)."""

    __slots__ = ("_event", "_value", "_error", "submitted_at", "completed_at")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Optional[Dict[str, Any]] = None
        self._error: Optional[BaseException] = None
        self.submitted_at = time.perf_counter()
        self.completed_at: Optional[float] = None

    def _resolve(self, value: Optional[Dict[str, Any]], error: Optional[BaseException]) -> None:
        self._value = value
        self._error = error
        self.completed_at = time.perf_counter()
        self._event.set()

    def done(self) -> bool:
        """Whether the response is available."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the response arrives and return it (re-raising errors)."""
        if not self._event.wait(timeout):
            raise TimeoutError("query was not answered within the timeout")
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value

    @property
    def latency(self) -> Optional[float]:
        """Seconds from submit to completion (None while pending)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class _LRUCache:
    """Tiny thread-safe LRU mapping for cached margins."""

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._data: "OrderedDict[Tuple[int, bytes], float]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple[int, bytes]) -> Optional[float]:
        with self._lock:
            try:
                value = self._data.pop(key)
            except KeyError:
                self.misses += 1
                return None
            self._data[key] = value
            self.hits += 1
            return value

    def put(self, key: Tuple[int, bytes], value: float) -> None:
        with self._lock:
            self._data.pop(key, None)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class _Request:
    __slots__ = ("idx", "val", "pending", "cache_key")

    def __init__(
        self,
        idx: np.ndarray,
        val: np.ndarray,
        pending: PendingResult,
        cache_key: Optional[bytes],
    ) -> None:
        self.idx = idx
        self.val = val
        self.pending = pending
        self.cache_key = cache_key


class MicroBatcher:
    """Coalesce single-row queries into batched kernel calls.

    Parameters
    ----------
    model:
        A :class:`~repro.serving.swap.ModelRef` (hot-swappable) or a bare
        :class:`~repro.serving.model.ScoringModel` (wrapped into a private
        ref).
    lanes:
        Number of scoring threads draining the queue.
    max_batch:
        Largest number of queries scored per kernel call.
    max_delay_us:
        How long a lane waits for more queries to coalesce after picking up
        the first one (microseconds; 0 scores whatever is queued
        immediately).
    cache_size:
        LRU result-cache capacity in entries (0 disables caching; keys are
        ``(model version, blake2b(row))`` so hot-swaps invalidate).
    include_proba:
        Attach ``"proba"`` to responses when the objective defines
        probabilities.
    """

    def __init__(
        self,
        model: Union[ModelRef, ScoringModel],
        *,
        lanes: int = 1,
        max_batch: int = 64,
        max_delay_us: float = 200.0,
        cache_size: int = 0,
        include_proba: bool = False,
    ) -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.ref = model if isinstance(model, ModelRef) else ModelRef(model)
        self.lanes = int(lanes)
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay_us) * 1e-6
        self.include_proba = bool(include_proba)
        self.cache = _LRUCache(cache_size) if cache_size > 0 else None

        self._queue: Deque[_Request] = deque()
        self._cond = threading.Condition()
        self._closing = False
        self._stats_lock = threading.Lock()
        self._submitted = 0
        self._answered = 0
        self._batches = 0
        self._largest_batch = 0
        self._threads: List[threading.Thread] = []
        for lane in range(self.lanes):
            thread = threading.Thread(
                target=self._lane_loop, name=f"repro-serving-lane-{lane}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def submit(self, indices: Sequence[int], values: Sequence[float]) -> PendingResult:
        """Enqueue one sparse query row; returns its :class:`PendingResult`."""
        model = self.ref.get()  # validates against the *current* feature space
        idx, val = _normalise_query(indices, values, model.n_features)
        pending = PendingResult()
        cache_key: Optional[bytes] = None
        if self.cache is not None:
            cache_key = hashlib.blake2b(
                idx.tobytes() + val.tobytes(), digest_size=16
            ).digest()
        request = _Request(idx, val, pending, cache_key)
        with self._cond:
            if self._closing:
                raise RuntimeError("batcher is closed")
            self._queue.append(request)
            self._submitted += 1
            self._cond.notify()
        return pending

    def score(
        self, indices: Sequence[int], values: Sequence[float], timeout: Optional[float] = 30.0
    ) -> Dict[str, Any]:
        """Submit one query and block for its response."""
        return self.submit(indices, values).result(timeout)

    # ------------------------------------------------------------------ #
    # Lane side
    # ------------------------------------------------------------------ #
    def _take_batch(self) -> Optional[List[_Request]]:
        """Block for the next batch (None when closing and drained)."""
        with self._cond:
            while not self._queue:
                if self._closing:
                    return None
                self._cond.wait()
            batch = [self._queue.popleft()]
            while self._queue and len(batch) < self.max_batch:
                batch.append(self._queue.popleft())
            if len(batch) >= self.max_batch or self.max_delay <= 0.0 or self._closing:
                return batch
            # Coalescing window: wait (briefly) for more arrivals so bursty
            # single-row traffic still forms real batches.
            deadline = time.perf_counter() + self.max_delay
            while len(batch) < self.max_batch and not self._closing:
                remaining = deadline - time.perf_counter()
                if remaining <= 0.0:
                    break
                self._cond.wait(remaining)
                while self._queue and len(batch) < self.max_batch:
                    batch.append(self._queue.popleft())
            return batch

    def _lane_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            try:
                self._score_batch(batch)
            except BaseException as exc:  # never kill a lane: fail the batch
                for request in batch:
                    if not request.pending.done():
                        request.pending._resolve(None, exc)

    def _score_batch(self, batch: List[_Request]) -> None:
        # Pin exactly one model for the whole batch: the swap-atomicity
        # contract (no mixed-weight responses) lives on this line.
        model = self.ref.get()
        version = model.version

        fresh: List[_Request] = []
        for request in batch:
            if request.cache_key is not None and self.cache is not None:
                hit = self.cache.get((version, request.cache_key))
                if hit is not None:
                    self._respond(request, model, hit, cached=True)
                    continue
            fresh.append(request)

        if fresh:
            idx = np.concatenate([r.idx for r in fresh])
            val = np.concatenate([r.val for r in fresh])
            lengths = np.fromiter(
                (r.idx.size for r in fresh), dtype=np.int64, count=len(fresh)
            )
            margins = model.decision_function_gathered(idx, val, lengths)
            for position, request in enumerate(fresh):
                margin = float(margins[position])
                if request.cache_key is not None and self.cache is not None:
                    self.cache.put((version, request.cache_key), margin)
                self._respond(request, model, margin, cached=False)

        with self._stats_lock:
            self._batches += 1
            self._largest_batch = max(self._largest_batch, len(batch))
            self._answered += len(batch)

    def _respond(
        self, request: _Request, model: ScoringModel, margin: float, *, cached: bool
    ) -> None:
        margins = np.array([margin], dtype=np.float64)
        response: Dict[str, Any] = {
            "margin": margin,
            "prediction": float(model.objective.predict_from_margins(margins)[0]),
            "model_version": model.version,
            "cached": cached,
        }
        if self.include_proba and model.supports_proba:
            response["proba"] = float(model.objective.proba_from_margins(margins)[0])
        request.pending._resolve(response, None)

    # ------------------------------------------------------------------ #
    # Lifecycle + stats
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop accepting queries, drain the queue, join every lane."""
        with self._cond:
            self._closing = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads = []

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def stats(self) -> Dict[str, Any]:
        """Counters since construction (submitted/answered/batches/cache)."""
        with self._stats_lock:
            out: Dict[str, Any] = {
                "lanes": self.lanes,
                "max_batch": self.max_batch,
                "submitted": self._submitted,
                "answered": self._answered,
                "batches": self._batches,
                "largest_batch": self._largest_batch,
                "mean_batch": (self._answered / self._batches) if self._batches else 0.0,
                "model_swaps": self.ref.swaps,
            }
        if self.cache is not None:
            out["cache"] = {
                "size": len(self.cache),
                "capacity": self.cache.capacity,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            }
        return out


__all__ = ["MicroBatcher", "PendingResult"]
