"""Immutable scoring models loaded from stored run artifacts.

A :class:`ScoringModel` is the inference-side view of one trained
:class:`~repro.metrics.tracing.RunRecord`: the frozen weight vector, the
objective the run was trained under (rebuilt from the artifact identity),
and a pinned kernel backend.  All scoring routes through the kernel
registry's batch primitives (:meth:`~repro.objectives.base.Objective.batch_margins`
for resident matrices, :meth:`~repro.kernels.base.KernelBackend.segment_margins`
for gathered rows), so ``REPRO_KERNEL_BACKEND=native`` transparently
accelerates serving exactly like training.

Models are immutable: the weight array is marked read-only at construction
and nothing on the object is mutated after :meth:`ModelRef.swap
<repro.serving.swap.ModelRef.swap>` publishes it, which is what makes the
hot-swap protocol race-free — a reader that pinned a model reference can
keep scoring against it while a newer model is swapped in next to it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.kernels.base import KernelBackend
from repro.kernels.registry import resolve_backend
from repro.metrics.tracing import RunRecord
from repro.objectives.base import Objective
from repro.objectives.registry import make_objective
from repro.sparse.csr import CSRMatrix


class ScoringModel:
    """Frozen weights + objective + kernel backend = a servable model.

    Parameters
    ----------
    weights:
        The trained iterate (copied, cast to contiguous float64 and marked
        read-only).
    objective:
        The objective the run was trained under; its ``predict_from_margins``
        / ``proba_from_margins`` hooks make prediction objective-aware.
    kernel:
        Kernel backend instance, registry name, or ``None`` for the
        process default.
    meta:
        Free-form provenance (dataset, solver, artifact key, ...).
    version:
        Monotonic identity assigned by :class:`~repro.serving.swap.ModelRef`
        when the model is published; responses carry it so clients (and the
        hot-swap atomicity tests) can tell which weights scored them.
    """

    def __init__(
        self,
        weights: np.ndarray,
        objective: Objective,
        *,
        kernel: Union[KernelBackend, str, None] = None,
        meta: Optional[Dict[str, Any]] = None,
        version: int = 0,
    ) -> None:
        w = np.ascontiguousarray(np.asarray(weights, dtype=np.float64)).copy()
        if w.ndim != 1:
            raise ValueError(f"weights must be a 1-D vector, got shape {w.shape}")
        w.setflags(write=False)
        self.weights = w
        self.objective = objective
        self.kernel = resolve_backend(kernel)
        self.meta: Dict[str, Any] = dict(meta or {})
        self.version = int(version)

    # ------------------------------------------------------------------ #
    # Construction from stored artifacts
    # ------------------------------------------------------------------ #
    @classmethod
    def from_record(
        cls,
        record: RunRecord,
        *,
        identity: Optional[Dict[str, Any]] = None,
        key: Optional[str] = None,
        kernel: Union[KernelBackend, str, None] = None,
    ) -> "ScoringModel":
        """Build a model from a re-hydrated record (+ its artifact identity)."""
        identity = identity or {}
        weights = record.info.get("weights")
        if weights is None:
            raise ValueError(
                f"artifact for {record.label} holds no trained weights "
                "(it predates the serving layer); re-train it, e.g. "
                "`python -m repro run ... --force`"
            )
        objective = make_objective(
            identity.get("objective", "logistic_l1"),
            eta=float(identity.get("regularization", 1e-4)),
        )
        meta = {
            "dataset": record.dataset,
            "solver": record.solver,
            "num_workers": record.num_workers,
            "epochs": identity.get("epochs", len(record.curve)),
            "seed": identity.get("seed"),
            "objective": identity.get("objective", "logistic_l1"),
            "regularization": float(identity.get("regularization", 1e-4)),
            "key": key,
        }
        return cls(np.asarray(weights, dtype=np.float64), objective, kernel=kernel, meta=meta)

    @classmethod
    def from_artifact(
        cls,
        store: "ArtifactStore",
        key: str,
        *,
        kernel: Union[KernelBackend, str, None] = None,
    ) -> "ScoringModel":
        """Load the artifact stored under ``key`` into a scoring model."""
        entry = store.load_entry(key)
        record = RunRecord.from_dict(entry["record"])
        return cls.from_record(
            record, identity=entry.get("identity") or {}, key=key, kernel=kernel
        )

    # ------------------------------------------------------------------ #
    # Scoring (every path dispatches through the kernel backend)
    # ------------------------------------------------------------------ #
    @property
    def n_features(self) -> int:
        """Dimensionality of the weight vector."""
        return int(self.weights.shape[0])

    @property
    def supports_proba(self) -> bool:
        """Whether :meth:`predict_proba` is meaningful for this objective."""
        return bool(self.objective.has_probabilities)

    def decision_function(
        self, X: CSRMatrix, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Margins ``<x_i, w>`` for ``rows`` of ``X`` (all rows when ``None``)."""
        return self.objective.batch_margins(self.weights, X, rows, kernel=self.kernel)

    def decision_function_gathered(
        self, idx: np.ndarray, val: np.ndarray, lengths: np.ndarray
    ) -> np.ndarray:
        """Margins of already-gathered rows (the micro-batcher's hot path).

        ``(idx, val, lengths)`` is the flat layout of
        :meth:`~repro.sparse.csr.CSRMatrix.gather_rows`; one call scores a
        whole coalesced batch through the kernel's segment reduction.
        """
        return self.kernel.segment_margins(idx, val, lengths, self.weights)

    def predict(self, X: CSRMatrix, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Class predictions in {-1, +1} (classification) or raw scores."""
        return self.objective.predict_from_margins(self.decision_function(X, rows))

    def predict_proba(self, X: CSRMatrix, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Positive-class probabilities (objectives with a probabilistic loss)."""
        return self.objective.proba_from_margins(self.decision_function(X, rows))

    def score_row(self, indices: np.ndarray, values: np.ndarray) -> float:
        """Margin of one sparse row (the unbatched single-query path)."""
        idx = np.ascontiguousarray(indices, dtype=np.int32)
        val = np.ascontiguousarray(values, dtype=np.float64)
        lengths = np.array([idx.size], dtype=np.int64)
        return float(self.kernel.segment_margins(idx, val, lengths, self.weights)[0])

    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, Any]:
        """Flat provenance row (CLI output, response headers)."""
        return {
            "version": self.version,
            "n_features": self.n_features,
            "objective": self.objective.name,
            "kernel_backend": self.kernel.name,
            "supports_proba": self.supports_proba,
            **{k: v for k, v in self.meta.items() if v is not None},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScoringModel(v{self.version}, d={self.n_features}, "
            f"objective={self.objective.name!r}, kernel={self.kernel.name!r})"
        )


def _normalise_query(
    indices: Any, values: Any, n_features: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate one sparse query row into canonical ``(int32, float64)`` arrays."""
    idx = np.ascontiguousarray(np.asarray(indices, dtype=np.int64))
    val = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
    if idx.ndim != 1 or val.ndim != 1 or idx.size != val.size:
        raise ValueError(
            f"query must be parallel 1-D indices/values arrays, "
            f"got shapes {idx.shape} and {val.shape}"
        )
    if idx.size and (idx.min() < 0 or idx.max() >= n_features):
        raise ValueError(
            f"query indices out of range for a {n_features}-feature model"
        )
    return idx.astype(np.int32), val


__all__ = ["ScoringModel"]
