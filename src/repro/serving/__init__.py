"""Online serving layer: batched scoring over stored run artifacts.

Training (PRs 1–9) produces content-addressed
:class:`~repro.metrics.tracing.RunRecord` artifacts; this package is what
consumes them under query traffic:

* :class:`~repro.serving.model.ScoringModel` — a stored artifact loaded
  into an immutable model (frozen weights, objective-aware
  ``predict`` / ``decision_function`` / ``predict_proba``), every scoring
  path dispatching through the kernel registry so
  ``REPRO_KERNEL_BACKEND=native`` accelerates serving like training;
* :class:`~repro.serving.batcher.MicroBatcher` — a micro-batching request
  queue coalescing single-row queries into one ``segment_margins`` kernel
  call per tick, with N parallel scoring lanes and a per-model-version LRU
  result cache;
* :class:`~repro.serving.swap.ModelRef` /
  :class:`~repro.serving.swap.ArtifactWatcher` — atomic hot-swap when a
  newer artifact of the served identity appears (readers pin one model per
  batch, so a swap never yields mixed-weight responses).

``python -m repro serve`` wraps all three (stdin/JSONL and ``--smoke``
modes); ``benchmarks/test_bench_serving.py`` writes ``BENCH_serving.json``
with p50/p99 latency and queries/sec at 1/4/8 lanes and gates micro-batched
throughput at ≥ 5x the one-query-at-a-time loop.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.serving.batcher import MicroBatcher, PendingResult
from repro.serving.model import ScoringModel
from repro.serving.swap import ArtifactWatcher, ModelRef

#: Default knobs of the serving layer (shared by the CLI and the docs).
SERVE_DEFAULTS: Dict[str, Any] = {
    "lanes": 1,
    "max_batch": 64,
    "max_delay_us": 200.0,
    "cache_size": 1024,
    "poll_interval": 0.5,
}


def serving_capabilities() -> List[Dict[str, Any]]:
    """Per-objective loaded-model capability rows (for ``list`` and docs).

    Every registered objective supports ``predict`` and
    ``decision_function``; ``predict_proba`` exists only for losses with a
    probabilistic interpretation (:attr:`Objective.has_probabilities`).
    """
    from repro.objectives.registry import available_objectives, make_objective

    rows: List[Dict[str, Any]] = []
    for name in available_objectives():
        obj = make_objective(name)
        rows.append(
            {
                "objective": name,
                "predict": True,
                "decision_function": True,
                "predict_proba": bool(obj.has_probabilities),
                "classification": bool(obj.is_classification),
            }
        )
    return rows


__all__ = [
    "ArtifactWatcher",
    "MicroBatcher",
    "ModelRef",
    "PendingResult",
    "SERVE_DEFAULTS",
    "ScoringModel",
    "serving_capabilities",
]
