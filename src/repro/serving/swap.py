"""Atomic hot-swap of scoring models.

Two pieces:

* :class:`ModelRef` — a thread-safe publication point.  Readers call
  :meth:`ModelRef.get` once per *batch* and score the whole batch against
  that pinned model, so a concurrent :meth:`ModelRef.swap` can never yield
  a mixed-weight response: every response is produced by exactly one
  published model version (models themselves are immutable, see
  :mod:`repro.serving.model`).

* :class:`ArtifactWatcher` — a polling thread that watches an
  :class:`~repro.experiments.store.ArtifactStore` for a newer artifact of
  the served run identity and swaps it in.  Polling is cheap because it
  rides the store's mtime-keyed :meth:`~repro.experiments.store.ArtifactStore.index`
  cache — an unchanged store costs one ``stat`` per poll, not one JSON
  parse per artifact.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.experiments.store import ArtifactStore
from repro.serving.model import ScoringModel
from repro.utils.logging import get_logger

LOGGER = get_logger("serving.swap")


class ModelRef:
    """Thread-safe, atomically swappable reference to the current model.

    Swapping assigns a strictly increasing version number to the incoming
    model; readers pin one model per batch via :meth:`get` and report that
    version with every response.
    """

    def __init__(self, model: Optional[ScoringModel] = None) -> None:
        self._lock = threading.Lock()
        self._model: Optional[ScoringModel] = None
        self._version = 0
        self.swaps = 0
        if model is not None:
            self.swap(model)
            self.swaps = 0  # the initial publication is not a "swap"

    def get(self) -> ScoringModel:
        """The currently published model (raises before the first swap)."""
        with self._lock:
            model = self._model
        if model is None:
            raise LookupError("no model has been published to this ModelRef yet")
        return model

    @property
    def version(self) -> int:
        """Version of the currently published model (0 = none yet)."""
        with self._lock:
            return self._version

    def swap(self, model: ScoringModel) -> int:
        """Atomically publish ``model``; returns its assigned version.

        The model's ``version`` attribute is set *before* the reference is
        flipped, so no reader can ever observe the new model under the old
        version number.
        """
        with self._lock:
            self._version += 1
            model.version = self._version
            self._model = model
            self.swaps += 1
            return self._version


class ArtifactWatcher:
    """Poll a store for newer artifacts of the served identity and hot-swap.

    Parameters
    ----------
    store:
        The artifact store to watch.
    ref:
        Where newly loaded models are published.
    key:
        Watch exactly this artifact key (a re-trained run rewrites the same
        content-addressed file; the watcher reloads on mtime change).
    dataset / solver:
        Alternatively, watch every artifact whose identity matches these
        filters and serve the newest one (by file mtime) — "a newer
        artifact for the same run identity appears" covers both a rewrite
        of the same key and a fresh run (more epochs, new seed) landing
        next to it.
    kernel:
        Kernel backend for loaded models (name/instance/None).
    poll_interval:
        Seconds between polls of the background thread.
    on_swap:
        Optional callback ``(model) -> None`` invoked after each swap.
    """

    def __init__(
        self,
        store: Union[ArtifactStore, str],
        ref: ModelRef,
        *,
        key: Optional[str] = None,
        dataset: Optional[str] = None,
        solver: Optional[str] = None,
        kernel=None,
        poll_interval: float = 0.5,
        on_swap: Optional[Callable[[ScoringModel], None]] = None,
    ) -> None:
        if key is None and dataset is None and solver is None:
            raise ValueError("watch needs a key, or dataset/solver identity filters")
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.ref = ref
        self.key = key
        self.dataset = dataset
        self.solver = solver
        self.kernel = kernel
        self.poll_interval = float(poll_interval)
        self.on_swap = on_swap
        self._current: Optional[Tuple[str, int]] = None  # (key, mtime_ns) served
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    def _matches(self, key: str) -> bool:
        if self.key is not None:
            return key == self.key
        try:
            identity = self.store.load_entry(key).get("identity") or {}
        except ValueError:
            return False  # half-written/corrupt artifacts never match
        if self.dataset is not None and identity.get("dataset") != self.dataset:
            return False
        if self.solver is not None and identity.get("solver") != self.solver:
            return False
        return True

    def _candidate(self) -> Optional[Tuple[str, int]]:
        """Newest matching ``(key, mtime_ns)``, or None when nothing matches."""
        index = self.store.index()
        matching = [(mtime, key) for key, mtime in index.items() if self._matches(key)]
        if not matching:
            return None
        mtime, key = max(matching)
        return key, mtime

    def poll_once(self) -> Optional[ScoringModel]:
        """One poll: swap and return the new model if a newer artifact exists."""
        candidate = self._candidate()
        if candidate is None or candidate == self._current:
            return None
        key, mtime = candidate
        try:
            model = ScoringModel.from_artifact(self.store, key, kernel=self.kernel)
        except ValueError as exc:
            # Unservable artifact (no weights / corrupt): remember it so the
            # poll loop does not retry-log forever, keep serving the old one.
            LOGGER.warning("ignoring unservable artifact %s: %s", key[:12], exc)
            self._current = candidate
            return None
        version = self.ref.swap(model)
        self._current = candidate
        LOGGER.info("hot-swapped artifact %s as model version %d", key[:12], version)
        if self.on_swap is not None:
            self.on_swap(model)
        return model

    def load_initial(self) -> ScoringModel:
        """Blocking first load (raises when no matching artifact exists)."""
        model = self.poll_once()
        if model is None and self._current is None:
            raise LookupError(
                f"no artifact matching key={self.key!r} dataset={self.dataset!r} "
                f"solver={self.solver!r} in {self.store.root}"
            )
        if model is None:
            return self.ref.get()
        return model

    # ------------------------------------------------------------------ #
    def start(self) -> "ArtifactWatcher":
        """Start the background polling thread (daemon)."""
        if self._thread is not None:
            raise RuntimeError("watcher already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-artifact-watcher", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.poll_once()
            except Exception:  # pragma: no cover - keep serving on poll errors
                LOGGER.exception("artifact watcher poll failed")

    def stop(self) -> None:
        """Stop and join the polling thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "ArtifactWatcher":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()


__all__ = ["ArtifactWatcher", "ModelRef"]
