"""Argument parsing and subcommand implementations for ``python -m repro``.

Every subcommand is a thin shell over the library: configurations come
from :mod:`repro.experiments.configs`, execution and artifact reuse from
:mod:`repro.experiments.runner` / :mod:`repro.experiments.store`, and the
rendered output from :mod:`repro.experiments.report`.  The CLI adds no
behaviour of its own, so everything it can do is scriptable from Python.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.configs import (
    ExperimentConfig,
    RunSpec,
    available_configs,
    config_description,
    make_config,
)
from repro.experiments.report import format_table, write_report_files
from repro.experiments.runner import ExperimentRunner, RecordSet, resolve_jobs
from repro.experiments.store import ASYNC_SOLVERS, ArtifactStore, run_identity, identity_key

#: Default artifact-store directory (relative to the invocation cwd).
DEFAULT_STORE = "runs"


# --------------------------------------------------------------------- #
# Shared option groups
# --------------------------------------------------------------------- #
def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--async-mode",
        default=None,
        help="execution engine for the async solvers "
        "(per_sample, batched, threads, process; default: engine registry default)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="compute-kernel backend for all solvers "
        "(reference, vectorized, native; default: kernel registry default)",
    )
    parser.add_argument("--seed", type=int, default=None, help="master seed (default 0)")


def _add_store_flag(parser: argparse.ArgumentParser, *, default: Optional[str] = DEFAULT_STORE) -> None:
    parser.add_argument(
        "--store",
        default=default,
        help=f"artifact-store directory (default: {default!r})",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Experiment orchestration for the IS-ASGD reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # ---------------------------------------------------------------- run
    p_run = sub.add_parser("run", help="execute (or reuse) one training run")
    p_run.add_argument("--dataset", required=True, help="dataset name (see `list`)")
    p_run.add_argument("--solver", required=True, help="solver name (see `list`)")
    p_run.add_argument("--workers", type=int, default=1, help="concurrency (default 1)")
    p_run.add_argument("--epochs", type=int, default=None,
                       help="epoch count (default: the dataset descriptor's)")
    p_run.add_argument("--step-size", type=float, default=None,
                       help="step size λ (default: the dataset descriptor's)")
    p_run.add_argument("--objective", default="logistic_l1", help="objective registry name")
    p_run.add_argument("--regularization", type=float, default=1e-4, help="regulariser strength η")
    p_run.add_argument("--force", action="store_true", help="re-train even when cached")
    p_run.add_argument("--json", action="store_true", help="print the full record as JSON")
    _add_execution_flags(p_run)
    _add_store_flag(p_run)
    p_run.set_defaults(func=cmd_run)

    # -------------------------------------------------------------- sweep
    p_sweep = sub.add_parser(
        "sweep", help="execute a named experiment configuration (resumable, parallel)"
    )
    p_sweep.add_argument(
        "--config", default="figures", choices=available_configs(),
        help="named configuration (default: figures — the Figure 3/4/5 sweep)",
    )
    p_sweep.add_argument("--smoke", action="store_true",
                         help="use the *_smoke surrogate datasets (fast)")
    p_sweep.add_argument("--datasets", nargs="+", default=None,
                         help="restrict to these datasets (figures/cluster configs)")
    p_sweep.add_argument("--threads", type=int, nargs="+", default=None,
                         help="concurrency levels (figures: thread counts; cluster: worker counts)")
    p_sweep.add_argument("--epochs", type=int, default=None, help="override the epoch count")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="parallel spec executions (0 = one per usable core; default 1)")
    p_sweep.add_argument("--dry-run", action="store_true",
                         help="print the execution plan (cached/pending per run) and exit")
    p_sweep.add_argument("--force", action="store_true", help="re-train cached runs")
    _add_execution_flags(p_sweep)
    _add_store_flag(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    # ------------------------------------------------------------- report
    p_report = sub.add_parser(
        "report", help="rebuild figure/table summaries from stored artifacts (no training)"
    )
    p_report.add_argument("--out", default=None, help="directory to write rendered artefacts into")
    p_report.add_argument("--dataset", default=None, help="restrict to one dataset")
    p_report.add_argument("--solver", default=None, help="restrict to one solver")
    p_report.add_argument("--async-mode", default=None,
                          help="restrict to runs executed under this async mode "
                          "(a store can hold the same sweep under several modes)")
    p_report.add_argument("--table1", action="store_true",
                          help="also recompute the Table 1 dataset statistics (loads datasets)")
    p_report.add_argument("--smoke", action="store_true",
                          help="with --table1: use the *_smoke surrogates")
    p_report.add_argument("--json", action="store_true", help="print the headline numbers as JSON")
    _add_store_flag(p_report)
    p_report.set_defaults(func=cmd_report)

    # --------------------------------------------------------------- bench
    p_bench = sub.add_parser(
        "bench", help="time a sweep cold vs warm (artifact reuse) and record the result"
    )
    p_bench.add_argument("--config", default="figures", choices=available_configs())
    p_bench.add_argument("--smoke", action=argparse.BooleanOptionalAction, default=True,
                         help="smoke-scale surrogates (--no-smoke for full scale)")
    p_bench.add_argument("--datasets", nargs="+", default=None)
    p_bench.add_argument("--threads", type=int, nargs="+", default=None)
    p_bench.add_argument("--epochs", type=int, default=None)
    p_bench.add_argument("--jobs", type=int, default=1)
    p_bench.add_argument("--output", default="BENCH_cli.json",
                         help="where to write the benchmark record (default BENCH_cli.json)")
    _add_execution_flags(p_bench)
    _add_store_flag(p_bench, default=None)
    p_bench.set_defaults(func=cmd_bench)

    # --------------------------------------------------------------- serve
    p_serve = sub.add_parser(
        "serve", help="serve a stored model: micro-batched scoring with hot-swap"
    )
    from repro.cli.serve import add_serve_arguments, cmd_serve

    add_serve_arguments(p_serve)
    _add_store_flag(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    # ---------------------------------------------------------------- list
    p_list = sub.add_parser("list", help="show registries, or a store's artifacts")
    p_list.add_argument("--json", action="store_true", help="machine-readable output")
    _add_store_flag(p_list, default=None)
    p_list.set_defaults(func=cmd_list)

    return parser


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #
def _record_rows(records) -> List[Dict[str, Any]]:
    columns = ("solver", "dataset", "num_workers", "epochs",
               "final_rmse", "best_error_rate", "total_time")
    rows = []
    for record in records:
        summary = record.summary()
        row = {c: summary.get(c, "") for c in columns}
        row["async_mode"] = record.info.get("async_mode", "-")
        rows.append(row)
    return rows


def _print_records(records) -> None:
    if records:
        print(format_table(_record_rows(records)))


def _build_sweep_config(args: argparse.Namespace) -> ExperimentConfig:
    """Translate sweep/bench CLI flags into a configuration."""
    overrides: Dict[str, Any] = {
        "smoke": args.smoke or None,
        "datasets": args.datasets,
        "thread_counts": tuple(args.threads) if args.threads else None,
        "worker_counts": tuple(args.threads) if args.threads else None,
        "epochs_override": args.epochs,
        "epochs": args.epochs,
        "seed": args.seed,
    }
    # make_config maps the uniform namespace onto each builder's keywords
    # and raises on overrides the configuration cannot honour.
    config = make_config(args.config, **overrides)
    return config.with_overrides(async_mode=args.async_mode, kernel=args.backend)


def _sweep_runner(args: argparse.Namespace) -> ExperimentRunner:
    config = _build_sweep_config(args)
    return ExperimentRunner(config, store=ArtifactStore(args.store) if args.store else None)


# --------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------- #
def cmd_run(args: argparse.Namespace) -> int:
    from repro.datasets.catalog import get_descriptor

    desc = get_descriptor(args.dataset)
    solver_kwargs = []
    if args.async_mode is not None:
        if args.solver not in ASYNC_SOLVERS:
            raise ValueError(
                f"--async-mode applies to the async solvers "
                f"({', '.join(sorted(ASYNC_SOLVERS))}); {args.solver!r} is serial"
            )
        solver_kwargs.append(("async_mode", args.async_mode))
    if args.backend is not None:
        solver_kwargs.append(("kernel", args.backend))
    spec = RunSpec(
        dataset=args.dataset,
        solver=args.solver,
        num_workers=args.workers,
        step_size=args.step_size if args.step_size is not None else desc.step_size,
        epochs=args.epochs if args.epochs is not None else desc.epochs,
        seed=args.seed if args.seed is not None else 0,
        solver_kwargs=tuple(solver_kwargs),
    )
    config = ExperimentConfig(
        name="cli_run", runs=[spec], objective=args.objective,
        regularization=args.regularization, seed=spec.seed,
    )
    runner = ExperimentRunner(config, store=ArtifactStore(args.store) if args.store else None)
    records = runner.run(force=args.force)
    record = records[0]
    stats = runner.stats
    status = "re-trained" if args.force else ("reused from store" if stats.reused else "trained")
    print(f"{record.label}: {status}")
    _print_records(records)
    if args.store:
        identity = run_identity(
            spec,
            objective=args.objective,
            regularization=args.regularization,
            cost_model=runner.cost_model,
            dataset_seed=config.seed,
        )
        print(f"artifact: {ArtifactStore(args.store).path_for(identity_key(identity))}")
    if args.json:
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    runner = _sweep_runner(args)
    plan = runner.plan()
    cached = sum(1 for _, _, _, status in plan if status == "cached")
    print(
        f"config {runner.config.name!r}: {len(plan)} runs "
        f"({cached} cached, {len(plan) - cached} pending), "
        f"jobs={resolve_jobs(args.jobs)}, store={args.store or '(none)'}"
    )
    if args.dry_run:
        rows = [
            {
                "dataset": spec.dataset,
                "solver": spec.solver,
                "workers": spec.num_workers,
                "epochs": spec.epochs,
                "async_mode": identity.get("async_mode") or "-",
                "key": key[:12],
                "status": status,
            }
            for spec, key, identity, status in plan
        ]
        print(format_table(rows))
        print("dry run: nothing executed.")
        return 0
    started = time.perf_counter()
    records = runner.run(jobs=args.jobs, force=args.force)
    elapsed = time.perf_counter() - started
    stats = runner.stats
    print(f"sweep finished in {elapsed:.2f}s: "
          f"{stats.trained} trained, {stats.reused} reused, {stats.skipped} skipped")
    _print_records(records)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.async_mode is not None:
        from repro.async_engine.modes import resolve_async_mode

        resolve_async_mode(args.async_mode)  # a typo must not silently filter everything out
    records = RecordSet.from_store(
        args.store, dataset=args.dataset, solver=args.solver, async_mode=args.async_mode
    )
    wrote: List[Path] = []
    if args.table1:
        from repro.experiments.tables import table1_rows
        from repro.datasets.catalog import list_datasets

        names = [f"{n}_smoke" for n in list_datasets()] if args.smoke else None
        rows = table1_rows(names)
        print(format_table(rows, title="Table 1"))
        if args.out:
            out = Path(args.out)
            out.mkdir(parents=True, exist_ok=True)
            from repro.experiments.report import rows_to_csv

            (out / "table1.txt").write_text(format_table(rows, title="Table 1") + "\n")
            (out / "table1.csv").write_text(rows_to_csv(rows))
            wrote += [out / "table1.txt", out / "table1.csv"]
    if not records.records:
        if args.table1:
            return 0
        print(
            f"no artifacts found under {args.store!r}; run "
            "`python -m repro sweep --store ...` first",
            file=sys.stderr,
        )
        return 1
    from repro.experiments.figures import figure4_data, figure5_data, headline_numbers
    from repro.experiments.report import render_figure_summary, render_speedup_slices

    print(f"{len(records.records)} stored runs")
    deduped = records.deduplicated(prefer_async_mode=args.async_mode)
    if len(deduped) < len(records):
        print(
            f"note: collapsed {len(records) - len(deduped)} duplicate "
            "(dataset, solver, workers) runs from overlapping sweeps "
            "(simulated/default-mode records win); narrow with "
            "--dataset/--solver/--async-mode",
            file=sys.stderr,
        )
    panels4 = figure4_data(deduped)
    slices = figure5_data(deduped)
    print(render_figure_summary(panels4))
    print(render_speedup_slices(slices))
    headline = headline_numbers(deduped, panels4=panels4, slices=slices)
    if args.json:
        print(json.dumps(headline, indent=2, default=float))
    if args.out:
        wrote += write_report_files(
            deduped, args.out, panels4=panels4, slices=slices, headline=headline
        )
        print("wrote: " + ", ".join(str(p) for p in wrote))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import shutil
    import tempfile

    if args.store and ArtifactStore(args.store).keys():
        raise ValueError(
            f"bench times a cold sweep, but store {args.store!r} already holds "
            f"{len(ArtifactStore(args.store))} artifacts — pass an empty "
            "directory or omit --store for a temporary one"
        )
    store_dir = args.store or tempfile.mkdtemp(prefix="repro-bench-store-")
    cleanup = args.store is None
    try:
        args.store = store_dir
        runner = _sweep_runner(args)
        plan = runner.plan()
        started = time.perf_counter()
        runner.run(jobs=args.jobs)
        cold = time.perf_counter() - started
        cold_stats = runner.stats.as_dict()

        warm_runner = ExperimentRunner(runner.config, store=ArtifactStore(store_dir))
        started = time.perf_counter()
        warm_runner.run(jobs=args.jobs)
        warm = time.perf_counter() - started

        started = time.perf_counter()
        records = RecordSet.from_store(store_dir)
        from repro.experiments.figures import headline_numbers

        headline_numbers(records)
        report_seconds = time.perf_counter() - started

        result = {
            "config": args.config,
            "runs": len(plan),
            "jobs": resolve_jobs(args.jobs),
            "cold_seconds": cold,
            "cold_stats": cold_stats,
            "warm_seconds": warm,
            "warm_stats": warm_runner.stats.as_dict(),
            "warm_speedup": (cold / warm) if warm > 0 else None,
            "report_seconds": report_seconds,
        }
        Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
        print(json.dumps(result, indent=2))
        print(f"benchmark written to {args.output}")
        return 0
    finally:
        if cleanup:
            shutil.rmtree(store_dir, ignore_errors=True)


def cmd_list(args: argparse.Namespace) -> int:
    if args.store:
        store = ArtifactStore(args.store)
        rows = store.summary_rows()
        if args.json:
            print(json.dumps(rows, indent=2))
        elif rows:
            print(format_table(rows, title=f"artifacts in {args.store} ({len(rows)})"))
        else:
            print(f"no artifacts under {args.store!r}")
        return 0

    from repro.async_engine.modes import available_async_modes, default_async_mode
    from repro.datasets.catalog import list_datasets
    from repro.kernels.registry import (
        available_backends,
        backend_availability,
        default_backend_name,
    )
    from repro.objectives.registry import available_objectives
    from repro.rules import available_rules, rule_description
    from repro.runtime import capability_matrix
    from repro.serving import SERVE_DEFAULTS, serving_capabilities
    from repro.solvers.registry import available_solvers

    registries = {
        "solvers": available_solvers(),
        "objectives": available_objectives(),
        "kernel_backends": available_backends(),
        "async_modes": available_async_modes(),
        "rules": available_rules(),
        "datasets": list_datasets(include_smoke=True),
        "configs": available_configs(),
    }
    matrix = capability_matrix()
    kernel_status = backend_availability()
    serving_rows = serving_capabilities()
    if args.json:
        payload = dict(registries)
        payload["kernel_backend_status"] = kernel_status
        payload["backends"] = matrix
        payload["serving"] = {
            "defaults": SERVE_DEFAULTS,
            "objectives": serving_rows,
        }
        print(json.dumps(payload, indent=2))
        return 0
    for name, values in registries.items():
        print(f"{name}:")
        for value in values:
            suffix = ""
            if name == "async_modes" and value == default_async_mode():
                suffix = "  (default)"
            elif name == "kernel_backends":
                status = kernel_status.get(value)
                if status and status != "available":
                    suffix = f"  [{status}]"
                if value == default_backend_name():
                    suffix += "  (default)"
            elif name == "rules":
                suffix = f"  — {rule_description(value)}"
            elif name == "configs":
                suffix = f"  — {config_description(value)}"
            print(f"  {value}{suffix}")
    print("backends:")
    rows = [
        {
            "backend": row["backend"],
            "batching": "yes" if row["supports_batching"] else "-",
            "parallel": "yes" if row["true_parallelism"] else "-",
            "measured_time": "yes" if row["measured_wall_clock"] else "-",
            "deterministic": "yes" if row["deterministic"] else "-",
            "fused_loop": "yes" if row.get("fused_kernel_loop") else "-",
            "fault_tol": "yes" if row.get("fault_tolerant") else "-",
            "rules": " ".join(row["rules"]),
        }
        for row in matrix
    ]
    print(format_table(rows, title="execution backends (async_mode capability matrix)"))
    print("serving:")
    serving_table = [
        {
            "objective": row["objective"],
            "predict": "yes" if row["predict"] else "-",
            "decision_function": "yes" if row["decision_function"] else "-",
            "predict_proba": "yes" if row["predict_proba"] else "-",
            "kind": "classification" if row["classification"] else "regression",
        }
        for row in serving_rows
    ]
    print(format_table(
        serving_table, title="loaded-model capabilities (`python -m repro serve`)"
    ))
    print("\nsee docs/reference.md for kwargs, docs/cli.md for invocations "
          "and docs/serving.md for the serving walkthrough")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, LookupError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


__all__ = ["build_parser", "main"]
