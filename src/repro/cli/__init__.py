"""Command-line interface for the reproduction (``python -m repro``).

Subcommands:

* ``run``    — execute (or re-load) one training run
* ``sweep``  — execute a named experiment configuration, in parallel,
  resuming from the artifact store
* ``report`` — rebuild the paper's figure/table summaries from stored
  artifacts without re-training
* ``bench``  — time a sweep cold vs warm and write ``BENCH_cli.json``
* ``list``   — show the registries (solvers, objectives, backends, async
  modes, datasets, configs) or the contents of a store
"""

from repro.cli.main import main

__all__ = ["main"]
