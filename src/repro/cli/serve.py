"""``python -m repro serve`` — the online serving front end.

Two modes:

* **stdin/JSONL** (default): one JSON object per input line, either an
  explicit sparse row ``{"indices": [...], "values": [...]}`` or a row of a
  resident dataset ``{"row": 3}`` (requires ``--query-dataset``).  One JSON
  response per line, in input order:
  ``{"margin": ..., "prediction": ..., "proba": ..., "model_version": ...,
  "cached": ...}`` (an ``"id"`` field is echoed back when present).  Model
  provenance and final queue statistics go to stderr.

* ``--smoke``: self-driving end-to-end exercise — train a tiny model into a
  temporary store, serve a few hundred queries through the micro-batcher,
  hot-swap the artifact mid-load, and print a JSON summary.  Used by the
  docs CI job as the serving smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from collections import deque
from typing import Any, Dict, List, Optional

import numpy as np

from repro.experiments.store import ArtifactStore
from repro.serving import SERVE_DEFAULTS, ArtifactWatcher, MicroBatcher, ModelRef


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the serve options (shared with the reference generator)."""
    parser.add_argument("--key", default=None,
                        help="serve exactly this artifact key (see `list --store`)")
    parser.add_argument("--dataset", default=None,
                        help="serve the newest artifact trained on this dataset")
    parser.add_argument("--solver", default=None,
                        help="with --dataset: restrict to this solver's artifacts")
    parser.add_argument("--backend", default=None,
                        help="kernel backend for scoring (reference, vectorized, native; "
                        "default: kernel registry default)")
    parser.add_argument("--lanes", type=int, default=SERVE_DEFAULTS["lanes"],
                        help=f"parallel scoring threads (default {SERVE_DEFAULTS['lanes']})")
    parser.add_argument("--max-batch", type=int, default=SERVE_DEFAULTS["max_batch"],
                        help="largest micro-batch per kernel call "
                        f"(default {SERVE_DEFAULTS['max_batch']})")
    parser.add_argument("--max-delay-us", type=float, default=SERVE_DEFAULTS["max_delay_us"],
                        help="coalescing window in microseconds "
                        f"(default {SERVE_DEFAULTS['max_delay_us']})")
    parser.add_argument("--cache-size", type=int, default=SERVE_DEFAULTS["cache_size"],
                        help="LRU result-cache entries, keyed per model version "
                        f"(0 disables; default {SERVE_DEFAULTS['cache_size']})")
    parser.add_argument("--proba", action="store_true",
                        help="attach positive-class probabilities when the objective has them")
    parser.add_argument("--watch", action=argparse.BooleanOptionalAction, default=True,
                        help="hot-swap when a newer artifact appears (--no-watch disables)")
    parser.add_argument("--poll-interval", type=float, default=SERVE_DEFAULTS["poll_interval"],
                        help="artifact-watch poll interval in seconds "
                        f"(default {SERVE_DEFAULTS['poll_interval']})")
    parser.add_argument("--query-dataset", default=None,
                        help="dataset whose rows `{\"row\": i}` queries refer to")
    parser.add_argument("--limit", type=int, default=None,
                        help="stop after this many input lines")
    parser.add_argument("--smoke", action="store_true",
                        help="self-driving end-to-end smoke (train + serve + hot-swap)")
    parser.add_argument("--smoke-queries", type=int, default=400,
                        help="queries driven in --smoke mode (default 400)")


def _latency_summary(latencies: List[float]) -> Dict[str, float]:
    arr = np.asarray(latencies, dtype=np.float64)
    if arr.size == 0:
        return {"p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}
    return {
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
        "mean_ms": float(arr.mean() * 1e3),
    }


def _parse_query(line: str, query_X) -> Dict[str, Any]:
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("each input line must be a JSON object")
    if "row" in payload:
        if query_X is None:
            raise ValueError('{"row": i} queries need --query-dataset')
        row = int(payload["row"])
        idx, val = query_X.row(row)
        return {"indices": idx, "values": val, "id": payload.get("id")}
    if "indices" in payload and "values" in payload:
        return {
            "indices": payload["indices"],
            "values": payload["values"],
            "id": payload.get("id"),
        }
    raise ValueError('query must contain "indices"+"values" or "row"')


def cmd_serve(args: argparse.Namespace) -> int:
    if args.backend is not None:
        # Resolve eagerly through the kernel registry so an unknown name
        # fails up front with the availability-annotated error message.
        from repro.kernels.registry import make_backend

        make_backend(args.backend)
    if args.smoke:
        return _cmd_serve_smoke(args)
    if args.key is None and args.dataset is None and args.solver is None:
        raise ValueError(
            "serve needs --key, or --dataset/--solver identity filters, or --smoke"
        )

    store = ArtifactStore(args.store)
    ref = ModelRef()
    watcher = ArtifactWatcher(
        store,
        ref,
        key=args.key,
        dataset=args.dataset,
        solver=args.solver,
        kernel=args.backend,
        poll_interval=args.poll_interval,
    )
    model = watcher.load_initial()
    print(json.dumps({"model": model.describe()}), file=sys.stderr)

    query_X = None
    if args.query_dataset is not None:
        from repro.datasets.loader import load_dataset

        query_X = load_dataset(args.query_dataset).X

    if args.watch:
        watcher.start()
    batcher = MicroBatcher(
        ref,
        lanes=args.lanes,
        max_batch=args.max_batch,
        max_delay_us=args.max_delay_us,
        cache_size=args.cache_size,
        include_proba=args.proba,
    )
    outstanding: deque = deque()  # (pending, echo_id) in input order

    def _flush(block: bool) -> None:
        while outstanding and (block or outstanding[0][0].done()):
            pending, echo_id = outstanding.popleft()
            response = pending.result(timeout=60.0)
            if echo_id is not None:
                response = {"id": echo_id, **response}
            print(json.dumps(response))

    try:
        for lineno, line in enumerate(sys.stdin):
            if args.limit is not None and lineno >= args.limit:
                break
            line = line.strip()
            if not line:
                continue
            try:
                query = _parse_query(line, query_X)
            except (ValueError, KeyError, IndexError, json.JSONDecodeError) as exc:
                _flush(block=True)  # keep responses aligned with inputs
                print(json.dumps({"error": str(exc)}))
                continue
            outstanding.append((batcher.submit(query["indices"], query["values"]),
                                query["id"]))
            _flush(block=False)
        _flush(block=True)
    finally:
        batcher.close()
        if args.watch:
            watcher.stop()
    print(json.dumps({"stats": batcher.stats()}), file=sys.stderr)
    return 0


# --------------------------------------------------------------------- #
# --smoke: train → serve → query → hot-swap, self-contained
# --------------------------------------------------------------------- #
def _cmd_serve_smoke(args: argparse.Namespace) -> int:
    import shutil
    import time

    from repro.experiments.configs import ExperimentConfig, RunSpec
    from repro.experiments.runner import ExperimentRunner

    store_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    try:
        spec = RunSpec(
            dataset="news20_smoke", solver="sgd", num_workers=1,
            step_size=0.1, epochs=2, seed=0,
        )
        config = ExperimentConfig(name="serve_smoke", runs=[spec], seed=0)
        runner = ExperimentRunner(config, store=ArtifactStore(store_dir))
        runner.run()
        key = runner.plan()[0][1]

        store = ArtifactStore(store_dir)
        ref = ModelRef()
        watcher = ArtifactWatcher(
            store, ref, key=key, kernel=args.backend, poll_interval=0.02
        )
        model = watcher.load_initial()
        problem = runner.problem_for(spec.dataset)
        X = problem.X

        lanes = max(2, args.lanes)
        n_queries = max(1, args.smoke_queries)
        watcher.start()
        started = time.perf_counter()
        with MicroBatcher(
            ref,
            lanes=lanes,
            max_batch=args.max_batch,
            max_delay_us=args.max_delay_us,
            cache_size=args.cache_size,
            include_proba=args.proba,
        ) as batcher:
            pending = []
            swap_at = n_queries // 2
            for t in range(n_queries):
                if t == swap_at:
                    # Rewrite the artifact under the same key: the watcher
                    # must pick it up and hot-swap without dropping queries.
                    from repro.metrics.tracing import RunRecord

                    entry = store.load_entry(key)
                    store.save(key, RunRecord.from_dict(entry["record"]),
                               entry.get("identity"))
                idx, val = X.row(t % X.n_rows)
                pending.append(batcher.submit(idx, val))
            responses = [p.result(timeout=60.0) for p in pending]
            elapsed = time.perf_counter() - started
            # Give the watcher a beat to observe the rewrite, then verify.
            deadline = time.perf_counter() + 2.0
            while ref.swaps < 1 and time.perf_counter() < deadline:
                time.sleep(0.01)
            stats = batcher.stats()
        watcher.stop()

        if len(responses) != n_queries:
            raise ValueError(f"dropped queries: {len(responses)}/{n_queries} answered")
        versions = sorted({r["model_version"] for r in responses})
        summary = {
            "model": model.describe(),
            "queries": n_queries,
            "elapsed_seconds": elapsed,
            "queries_per_second": n_queries / elapsed if elapsed > 0 else None,
            "latency": _latency_summary([p.latency for p in pending]),
            "response_model_versions": versions,
            "hot_swaps_observed": ref.swaps,
            "stats": stats,
        }
        print(json.dumps(summary, indent=2, default=float))
        if ref.swaps < 1:
            print("error: hot swap was not observed", file=sys.stderr)
            return 1
        print("serve --smoke OK", file=sys.stderr)
        return 0
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)


__all__ = ["add_serve_arguments", "cmd_serve"]
