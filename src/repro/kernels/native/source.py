"""C source of the native kernel extension.

The extension is deliberately a thin, allocation-free layer: every function
operates on caller-provided NumPy buffers with the dtypes
:class:`~repro.sparse.csr.CSRMatrix` guarantees at construction —
``float64`` data, ``int32`` indices/indptr — plus ``int64`` row-selection
and segment-length arrays (``gather_rows`` returns ``int64`` lengths so
cumulative sums cannot overflow).

Objectives are dispatched by integer id (see ``OBJECTIVE_IDS``); the scalar
loss derivatives mirror the Python implementations branch for branch,
including the numerically stable logistic sigmoid/log1pexp forms.  The
separable regulariser is passed as ``(has_reg, r1, r2)`` covering none /
L1 / L2 / elastic-net uniformly: ``grad_j = r1 * sign(w_j) + r2 * w_j``.

The two fused primitives encode the engine semantics exactly:

* ``repro_run_sample_block`` — strictly sequential SGD steps; step ``t``
  reads every earlier step's writes (the per-sample tier).
* ``repro_run_frozen_block`` — a frozen-margin macro-step; all margins and
  regulariser gradients are evaluated at the block-start iterate, then the
  per-entry deltas are scattered in gather order (the batched tier).
"""

from __future__ import annotations

#: Integer dispatch ids for the objectives the extension understands.
OBJECTIVE_IDS = {
    "logistic": 1,
    "hinge": 2,
    "squared_hinge": 3,
    "least_squares": 4,
}

CDEF = """
void repro_matvec(int64_t n_rows, const int32_t *indptr, const int32_t *indices,
                  const double *data, const double *w, double *out);
void repro_rmatvec(int64_t n_rows, const int32_t *indptr, const int32_t *indices,
                   const double *data, const double *v, double *out);
void repro_margins_rows(int64_t n_sel, const int64_t *rows, const int32_t *indptr,
                        const int32_t *indices, const double *data,
                        const double *w, double *out);
void repro_accumulate_rows(int64_t n_sel, const int64_t *rows, const int32_t *indptr,
                           const int32_t *indices, const double *data,
                           const double *coeffs, double *out);
void repro_segment_margins(int64_t n_seg, const int64_t *lengths, const int32_t *idx,
                           const double *val, const double *w, double *out);
void repro_scatter_add(int64_t nnz, const int32_t *idx, const double *weights,
                       double *w);
void repro_losses(int obj_id, int64_t n, const double *margins, const double *y,
                  double *out);
void repro_grad_coeffs(int obj_id, int64_t n, const double *margins, const double *y,
                       double *out);
int64_t repro_sample_update(int obj_id, int has_reg, double r1, double r2,
                            const int32_t *indptr, const int32_t *indices,
                            const double *data, int64_t i, double y_i,
                            double scale, double *w);
int64_t repro_run_sample_block(int obj_id, int has_reg, double r1, double r2,
                               const int32_t *indptr, const int32_t *indices,
                               const double *data, const double *y,
                               int64_t n_steps, const int64_t *rows,
                               const double *scales, double *w);
int64_t repro_run_frozen_block(int obj_id, int has_reg, double r1, double r2,
                               int64_t n_seg, const int64_t *lengths,
                               const int32_t *idx, const double *val,
                               const double *y_rows, const double *scales,
                               double *margins_buf, double *entry_buf, double *w);
"""

SOURCE = """
#include <stdint.h>
#include <math.h>

/* Scalar loss derivative w.r.t. the margin; ids: 1=logistic, 2=hinge,
   3=squared_hinge, 4=least_squares.  Branches mirror the Python
   objectives exactly (stable sigmoid split at z = 0). */
static double repro_loss_deriv(int obj_id, double m, double y)
{
    switch (obj_id) {
    case 1: { /* -y * sigmoid(-y * m) */
        double z = -y * m;
        double s;
        if (z >= 0.0) {
            s = 1.0 / (1.0 + exp(-z));
        } else {
            double e = exp(z);
            s = e / (1.0 + e);
        }
        return -y * s;
    }
    case 2:
        return (1.0 - y * m > 0.0) ? -y : 0.0;
    case 3: {
        double slack = 1.0 - y * m;
        return (slack <= 0.0) ? 0.0 : -2.0 * y * slack;
    }
    case 4:
        return m - y;
    }
    return 0.0;
}

static double repro_loss_value(int obj_id, double m, double y)
{
    switch (obj_id) {
    case 1: { /* log1pexp(-y * m) = max(z, 0) + log1p(exp(-|z|)) */
        double z = -y * m;
        return fmax(z, 0.0) + log1p(exp(-fabs(z)));
    }
    case 2: {
        double slack = 1.0 - y * m;
        return slack > 0.0 ? slack : 0.0;
    }
    case 3: {
        double slack = 1.0 - y * m;
        slack = slack > 0.0 ? slack : 0.0;
        return slack * slack;
    }
    case 4: {
        double r = m - y;
        return 0.5 * r * r;
    }
    }
    return 0.0;
}

/* Separable regulariser gradient at one coordinate:
   r1 * sign(w_j) + r2 * w_j, with sign(0) = 0 (the L1 subgradient
   convention of the Python regularisers). */
static double repro_reg_grad(int has_reg, double r1, double r2, double wj)
{
    if (!has_reg) return 0.0;
    double s = (double)((wj > 0.0) - (wj < 0.0));
    return r1 * s + r2 * wj;
}

void repro_matvec(int64_t n_rows, const int32_t *indptr, const int32_t *indices,
                  const double *data, const double *w, double *out)
{
    for (int64_t i = 0; i < n_rows; ++i) {
        double acc = 0.0;
        for (int32_t k = indptr[i]; k < indptr[i + 1]; ++k)
            acc += data[k] * w[indices[k]];
        out[i] = acc;
    }
}

/* out must be zero-initialised by the caller. */
void repro_rmatvec(int64_t n_rows, const int32_t *indptr, const int32_t *indices,
                   const double *data, const double *v, double *out)
{
    for (int64_t i = 0; i < n_rows; ++i) {
        double vi = v[i];
        for (int32_t k = indptr[i]; k < indptr[i + 1]; ++k)
            out[indices[k]] += data[k] * vi;
    }
}

void repro_margins_rows(int64_t n_sel, const int64_t *rows, const int32_t *indptr,
                        const int32_t *indices, const double *data,
                        const double *w, double *out)
{
    for (int64_t t = 0; t < n_sel; ++t) {
        int64_t i = rows[t];
        double acc = 0.0;
        for (int32_t k = indptr[i]; k < indptr[i + 1]; ++k)
            acc += data[k] * w[indices[k]];
        out[t] = acc;
    }
}

void repro_accumulate_rows(int64_t n_sel, const int64_t *rows, const int32_t *indptr,
                           const int32_t *indices, const double *data,
                           const double *coeffs, double *out)
{
    for (int64_t t = 0; t < n_sel; ++t) {
        int64_t i = rows[t];
        double c = coeffs[t];
        for (int32_t k = indptr[i]; k < indptr[i + 1]; ++k)
            out[indices[k]] += c * data[k];
    }
}

void repro_segment_margins(int64_t n_seg, const int64_t *lengths, const int32_t *idx,
                           const double *val, const double *w, double *out)
{
    int64_t pos = 0;
    for (int64_t t = 0; t < n_seg; ++t) {
        double acc = 0.0;
        int64_t len = lengths[t];
        for (int64_t k = 0; k < len; ++k)
            acc += val[pos + k] * w[idx[pos + k]];
        out[t] = acc;
        pos += len;
    }
}

void repro_scatter_add(int64_t nnz, const int32_t *idx, const double *weights,
                       double *w)
{
    for (int64_t p = 0; p < nnz; ++p)
        w[idx[p]] += weights[p];
}

void repro_losses(int obj_id, int64_t n, const double *margins, const double *y,
                  double *out)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = repro_loss_value(obj_id, margins[i], y[i]);
}

void repro_grad_coeffs(int obj_id, int64_t n, const double *margins, const double *y,
                       double *out)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = repro_loss_deriv(obj_id, margins[i], y[i]);
}

/* One fused SGD step: w += scale * (phi'(<x_i, w>) * x_i + nabla r(w)|_supp).
   Canonical CSR rows are duplicate-free, so the in-place read-modify-write
   per coordinate is exact; the regulariser reads w_j before the write. */
int64_t repro_sample_update(int obj_id, int has_reg, double r1, double r2,
                            const int32_t *indptr, const int32_t *indices,
                            const double *data, int64_t i, double y_i,
                            double scale, double *w)
{
    int32_t lo = indptr[i], hi = indptr[i + 1];
    if (lo == hi) return 0;
    double acc = 0.0;
    for (int32_t k = lo; k < hi; ++k)
        acc += data[k] * w[indices[k]];
    double coef = repro_loss_deriv(obj_id, acc, y_i);
    for (int32_t k = lo; k < hi; ++k) {
        int32_t j = indices[k];
        w[j] += scale * (coef * data[k] + repro_reg_grad(has_reg, r1, r2, w[j]));
    }
    return (int64_t)(hi - lo);
}

/* A whole schedule block of sequential per-sample steps in one call; step t
   observes every earlier step's writes.  Returns the total nnz touched. */
int64_t repro_run_sample_block(int obj_id, int has_reg, double r1, double r2,
                               const int32_t *indptr, const int32_t *indices,
                               const double *data, const double *y,
                               int64_t n_steps, const int64_t *rows,
                               const double *scales, double *w)
{
    int64_t total = 0;
    for (int64_t t = 0; t < n_steps; ++t) {
        int64_t i = rows[t];
        total += repro_sample_update(obj_id, has_reg, r1, r2, indptr, indices,
                                     data, i, y[i], scales[t], w);
    }
    return total;
}

/* Frozen-margin macro-step over already-gathered rows: phase 1 evaluates
   every margin at the block-start iterate, phase 2 computes all per-entry
   deltas (regulariser also at the block-start iterate) into the scratch
   buffer, phase 3 scatters them in gather order.  The phases must not be
   interleaved — entries may alias coordinates across segments. */
int64_t repro_run_frozen_block(int obj_id, int has_reg, double r1, double r2,
                               int64_t n_seg, const int64_t *lengths,
                               const int32_t *idx, const double *val,
                               const double *y_rows, const double *scales,
                               double *margins_buf, double *entry_buf, double *w)
{
    int64_t pos = 0;
    for (int64_t t = 0; t < n_seg; ++t) {
        double acc = 0.0;
        int64_t len = lengths[t];
        for (int64_t k = 0; k < len; ++k)
            acc += val[pos + k] * w[idx[pos + k]];
        margins_buf[t] = acc;
        pos += len;
    }
    int64_t nnz = pos;
    pos = 0;
    for (int64_t t = 0; t < n_seg; ++t) {
        double coef = repro_loss_deriv(obj_id, margins_buf[t], y_rows[t]);
        double scale = scales[t];
        int64_t len = lengths[t];
        for (int64_t k = 0; k < len; ++k) {
            int64_t p = pos + k;
            entry_buf[p] = scale * (coef * val[p]
                                    + repro_reg_grad(has_reg, r1, r2, w[idx[p]]));
        }
        pos += len;
    }
    for (int64_t p = 0; p < nnz; ++p)
        w[idx[p]] += entry_buf[p];
    return nnz;
}
"""

__all__ = ["CDEF", "SOURCE", "OBJECTIVE_IDS"]
