"""Native (cffi-compiled C) kernel backend with a warn-once fallback.

Importing this package is always safe: nothing is compiled at import time.
The registry factory :func:`make_native_backend` builds (or loads the cached)
extension on first use and — when no compiler or cached build is available —
emits a single :class:`RuntimeWarning` and returns the shared ``vectorized``
backend instance instead, so ``REPRO_KERNEL_BACKEND=native`` never
hard-fails (see docs/kernels.md).
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.kernels.native import builder
from repro.kernels.native.builder import NativeBuildError

_fallback_warned = False
_build_error: Optional[str] = None


def make_native_backend():
    """Registry factory for ``native``: a :class:`NativeKernel`, or the shared
    ``vectorized`` instance (after a single warning) when the extension cannot
    be built."""
    global _fallback_warned, _build_error
    try:
        from repro.kernels.native.backend import NativeKernel

        backend = NativeKernel()
        _build_error = None
        return backend
    except NativeBuildError as exc:
        _build_error = str(exc)
        if not _fallback_warned:
            _fallback_warned = True
            warnings.warn(
                f"native kernel backend unavailable ({exc}); "
                "falling back to the 'vectorized' backend",
                RuntimeWarning,
                stacklevel=2,
            )
        from repro.kernels.registry import make_backend

        return make_backend("vectorized")


def native_build_error() -> Optional[str]:
    """The last build failure message, or None if no failure was recorded."""
    return _build_error


def native_status() -> str:
    """Cheap human-readable availability status (never triggers a build)."""
    from repro.kernels import registry

    instance = registry._INSTANCES.get("native")
    if instance is not None:
        if instance.name == "native":
            return "compiled"
        return f"fallback to vectorized ({_build_error or 'build failed'})"
    if _build_error is not None:
        return f"fallback to vectorized ({_build_error})"
    if builder.cached_lib_path() is not None:
        return "compiled (cached build)"
    return "builds on first use"


def _reset_fallback_state() -> None:
    """Clear the warn-once/build-error state (test isolation only)."""
    global _fallback_warned, _build_error
    _fallback_warned = False
    _build_error = None


__all__ = [
    "NativeBuildError",
    "make_native_backend",
    "native_build_error",
    "native_status",
]
