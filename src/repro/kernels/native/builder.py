"""Build-on-first-use compilation and caching of the native extension.

The shared object is compiled with cffi (out-of-line API mode) the first
time the ``native`` backend is instantiated, and cached on disk so later
processes load it without a compiler.  The module name embeds a hash of
the C source, so editing :mod:`repro.kernels.native.source` transparently
invalidates stale cached builds.

Cache directory resolution, in order:

1. ``REPRO_NATIVE_BUILD_DIR`` (if set);
2. ``src/repro/kernels/native/_build`` inside the installed package;
3. a per-user directory under the system temp dir.

Compilation happens in a private staging directory and the finished shared
object is promoted into the cache with an atomic rename, so concurrent
first-use builds (e.g. cluster workers) cannot observe a half-written file.

Every failure mode — cffi missing, no compiler (``CC=/bin/false``), an
unwritable cache — is normalised to :class:`NativeBuildError` so the
registry factory can fall back to the vectorized backend cleanly.
"""

from __future__ import annotations

import glob
import hashlib
import importlib.util
import os
import shutil
import sys
import sysconfig
import tempfile
import threading
from typing import Any, List, Optional, Tuple

from repro.kernels.native.source import CDEF, SOURCE

#: Environment variable overriding the build/cache directory.
BUILD_DIR_ENV_VAR = "REPRO_NATIVE_BUILD_DIR"

_lock = threading.Lock()
_loaded: Optional[Tuple[Any, Any]] = None


class NativeBuildError(RuntimeError):
    """Raised when the native extension cannot be built or loaded."""


def module_name() -> str:
    """Extension module name, keyed by a hash of the C source."""
    digest = hashlib.sha256((CDEF + SOURCE).encode("utf-8")).hexdigest()[:12]
    return f"_repro_native_{digest}"


def _candidate_dirs() -> List[str]:
    env = os.environ.get(BUILD_DIR_ENV_VAR, "").strip()
    if env:
        # An explicit override is exclusive: it must fully control where the
        # build is cached *and* looked up (tests rely on this to simulate a
        # machine without a cached extension).
        return [env]
    dirs = [os.path.join(os.path.dirname(os.path.abspath(__file__)), "_build")]
    dirs.append(
        os.path.join(tempfile.gettempdir(), f"repro-native-{os.getuid()}")
        if hasattr(os, "getuid")
        else os.path.join(tempfile.gettempdir(), "repro-native")
    )
    return dirs


def cached_lib_path() -> Optional[str]:
    """Path of an already-compiled shared object, or None (never compiles)."""
    name = module_name()
    for d in _candidate_dirs():
        for path in sorted(glob.glob(os.path.join(glob.escape(d), name + ".*"))):
            if path.endswith((".so", ".pyd", ".dylib")) or path.endswith(
                sysconfig.get_config_var("EXT_SUFFIX") or ".so"
            ):
                return path
    return None


def _compile() -> str:
    try:
        from cffi import FFI
    except Exception as exc:  # pragma: no cover - cffi is in the dev image
        raise NativeBuildError(f"cffi is not importable: {exc}") from exc

    ffi = FFI()
    ffi.cdef(CDEF)
    name = module_name()
    ffi.set_source(name, SOURCE, extra_compile_args=["-O2"])
    stage = tempfile.mkdtemp(prefix="repro-native-build-")
    try:
        try:
            so_path = ffi.compile(tmpdir=stage)
        except Exception as exc:
            raise NativeBuildError(f"C compilation failed: {exc}") from exc
        # Promote the shared object into the first writable cache directory
        # via copy + atomic rename; fall back to loading from the staging
        # directory (works for this process, just not cached).
        for d in _candidate_dirs():
            dest = os.path.join(d, os.path.basename(so_path))
            tmp_dest = f"{dest}.tmp-{os.getpid()}"
            try:
                os.makedirs(d, exist_ok=True)
                shutil.copyfile(so_path, tmp_dest)
                os.replace(tmp_dest, dest)
                return dest
            except OSError:
                try:
                    os.unlink(tmp_dest)
                except OSError:
                    pass
                continue
        persistent = tempfile.mkdtemp(prefix="repro-native-")
        final = os.path.join(persistent, os.path.basename(so_path))
        shutil.copyfile(so_path, final)
        return final
    finally:
        shutil.rmtree(stage, ignore_errors=True)


def _load_so(path: str) -> Tuple[Any, Any]:
    name = module_name()
    try:
        spec = importlib.util.spec_from_file_location(name, path)
        if spec is None or spec.loader is None:
            raise ImportError(f"cannot create import spec for {path}")
        mod = importlib.util.module_from_spec(spec)
        sys.modules.setdefault(name, mod)
        spec.loader.exec_module(mod)
        return mod.ffi, mod.lib
    except Exception as exc:
        raise NativeBuildError(f"cannot load native extension {path}: {exc}") from exc


def load_native_lib() -> Tuple[Any, Any]:
    """Return ``(ffi, lib)`` for the compiled extension, building if needed.

    Raises :class:`NativeBuildError` on any failure; never returns a
    half-initialised library.  Thread-safe and idempotent — the extension
    is loaded at most once per process.
    """
    global _loaded
    with _lock:
        if _loaded is not None:
            return _loaded
        cached = cached_lib_path()
        path = cached if cached is not None else _compile()
        _loaded = _load_so(path)
        return _loaded


def _reset_for_tests() -> None:
    """Drop the in-process library handle (test isolation only)."""
    global _loaded
    with _lock:
        _loaded = None


__all__ = [
    "BUILD_DIR_ENV_VAR",
    "NativeBuildError",
    "cached_lib_path",
    "load_native_lib",
    "module_name",
]
