"""Native kernel backend: C implementations of the hot-path primitives.

:class:`NativeKernel` subclasses :class:`~repro.kernels.vectorized.VectorizedKernel`
and replaces the CSR linear algebra, the gathered-row batch primitives and —
above all — the per-sample hot path with compiled C loops
(:mod:`repro.kernels.native.source`).  The fused block primitives
``run_sample_block`` / ``run_frozen_block`` execute an entire schedule block
per C call, eliminating the per-step interpreter overhead that dominates the
per-sample tier.

Dispatch is by exact objective/regulariser type: the four built-in losses
(logistic, hinge, squared hinge, least squares) combined with the built-in
separable regularisers map onto compiled scalar callbacks; any other
objective (including subclasses, whose overridden ``_loss_derivative`` the C
code cannot see) transparently falls through to the inherited vectorized
implementation, so custom objectives keep working unchanged.

The backend relies on the :class:`~repro.sparse.csr.CSRMatrix` dtype
invariants (float64 data, int32 indices/indptr, C-contiguous) — buffers are
passed to C zero-copy via ``ffi.from_buffer``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels.base import MetricsEval
from repro.kernels.native import builder
from repro.kernels.native.source import OBJECTIVE_IDS
from repro.kernels.vectorized import VectorizedKernel
from repro.objectives.hinge import HingeObjective
from repro.objectives.least_squares import LeastSquaresObjective
from repro.objectives.logistic import LogisticObjective
from repro.objectives.regularizers import (
    ElasticNetRegularizer,
    L1Regularizer,
    L2Regularizer,
    NoRegularizer,
)
from repro.objectives.squared_hinge import SquaredHingeObjective
from repro.sparse.csr import CSRMatrix

_OBJECTIVE_TYPES = {
    LogisticObjective: OBJECTIVE_IDS["logistic"],
    HingeObjective: OBJECTIVE_IDS["hinge"],
    SquaredHingeObjective: OBJECTIVE_IDS["squared_hinge"],
    LeastSquaresObjective: OBJECTIVE_IDS["least_squares"],
}


class NativeKernel(VectorizedKernel):
    """cffi-compiled C kernels with fused per-sample and frozen-block loops."""

    name = "native"
    fused_sample_block = True

    def __init__(self) -> None:
        # Raises NativeBuildError when no compiler/cached build is available;
        # the registry factory catches it and falls back to vectorized.
        self._ffi, self._lib = builder.load_native_lib()

    # ------------------------------------------------------------------ #
    # Dispatch plumbing
    # ------------------------------------------------------------------ #
    def _dispatch(self, obj) -> Optional[Tuple[int, int, float, float]]:
        """``(obj_id, has_reg, r1, r2)`` for natively supported objectives.

        Exact type matches only: a subclass may override the scalar loss or
        regulariser math, which the compiled callbacks cannot reflect.
        """
        obj_id = _OBJECTIVE_TYPES.get(type(obj))
        if obj_id is None:
            return None
        reg = obj.regularizer
        reg_type = type(reg)
        if reg_type is NoRegularizer:
            return obj_id, 0, 0.0, 0.0
        if reg_type is L1Regularizer:
            return obj_id, 1, reg.eta, 0.0
        if reg_type is L2Regularizer:
            return obj_id, 1, 0.0, reg.eta
        if reg_type is ElasticNetRegularizer:
            return obj_id, 1, reg.eta_l1, reg.eta_l2
        return None

    def supports_objective(self, obj) -> bool:
        return self._dispatch(obj) is not None

    # -- zero-copy buffer views (arrays must outlive the C call) -------- #
    def _f64(self, arr: np.ndarray):
        arr = np.ascontiguousarray(arr, dtype=np.float64)
        return arr, self._ffi.from_buffer("double[]", arr)

    def _i32(self, arr: np.ndarray):
        arr = np.ascontiguousarray(arr, dtype=np.int32)
        return arr, self._ffi.from_buffer("int32_t[]", arr)

    def _i64(self, arr: np.ndarray):
        arr = np.ascontiguousarray(arr, dtype=np.int64)
        return arr, self._ffi.from_buffer("int64_t[]", arr)

    def _wptr(self, w: np.ndarray):
        """Writable pointer to the iterate, or None when a zero-copy view
        is impossible (non-contiguous / non-float64 w must not be silently
        copied — updates would be lost)."""
        if w.dtype == np.float64 and w.flags.c_contiguous:
            return self._ffi.from_buffer("double[]", w)
        return None

    # ------------------------------------------------------------------ #
    # CSR linear algebra
    # ------------------------------------------------------------------ #
    def matvec(self, X: CSRMatrix, w: np.ndarray) -> np.ndarray:
        n = X.n_rows
        out = np.empty(n, dtype=np.float64)
        if n == 0:
            return out
        w_arr, w_ptr = self._f64(w)
        _, indptr = self._i32(X.indptr)
        _, indices = self._i32(X.indices)
        _, data = self._f64(X.data)
        self._lib.repro_matvec(
            n, indptr, indices, data, w_ptr, self._ffi.from_buffer("double[]", out)
        )
        return out

    def rmatvec(self, X: CSRMatrix, v: np.ndarray) -> np.ndarray:
        out = np.zeros(X.n_cols, dtype=np.float64)
        if X.n_rows == 0 or X.nnz == 0:
            return out
        v_arr, v_ptr = self._f64(v)
        _, indptr = self._i32(X.indptr)
        _, indices = self._i32(X.indices)
        _, data = self._f64(X.data)
        self._lib.repro_rmatvec(
            X.n_rows, indptr, indices, data, v_ptr, self._ffi.from_buffer("double[]", out)
        )
        return out

    def margins(
        self, X: CSRMatrix, w: np.ndarray, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if rows is None:
            return self.matvec(X, w)
        rows_arr, rows_ptr = self._i64(rows)
        out = np.empty(rows_arr.size, dtype=np.float64)
        if rows_arr.size == 0:
            return out
        w_arr, w_ptr = self._f64(w)
        _, indptr = self._i32(X.indptr)
        _, indices = self._i32(X.indices)
        _, data = self._f64(X.data)
        self._lib.repro_margins_rows(
            rows_arr.size, rows_ptr, indptr, indices, data, w_ptr,
            self._ffi.from_buffer("double[]", out),
        )
        return out

    def accumulate_rows(
        self, X: CSRMatrix, rows: np.ndarray, coeffs: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        rows_arr, rows_ptr = self._i64(rows)
        out_ptr = self._wptr(out)
        if rows_arr.size == 0:
            return out
        if out_ptr is None:
            return super().accumulate_rows(X, rows_arr, coeffs, out)
        coeffs_arr, coeffs_ptr = self._f64(coeffs)
        _, indptr = self._i32(X.indptr)
        _, indices = self._i32(X.indices)
        _, data = self._f64(X.data)
        self._lib.repro_accumulate_rows(
            rows_arr.size, rows_ptr, indptr, indices, data, coeffs_ptr, out_ptr
        )
        return out

    # ------------------------------------------------------------------ #
    # Gathered-row batch primitives
    # ------------------------------------------------------------------ #
    def segment_margins(
        self, idx: np.ndarray, val: np.ndarray, lengths: np.ndarray, w: np.ndarray
    ) -> np.ndarray:
        lengths_arr, lengths_ptr = self._i64(lengths)
        out = np.empty(lengths_arr.size, dtype=np.float64)
        if lengths_arr.size == 0:
            return out
        idx_arr, idx_ptr = self._i32(idx)
        val_arr, val_ptr = self._f64(val)
        w_arr, w_ptr = self._f64(w)
        self._lib.repro_segment_margins(
            lengths_arr.size, lengths_ptr, idx_ptr, val_ptr, w_ptr,
            self._ffi.from_buffer("double[]", out),
        )
        return out

    def scatter_add(self, w: np.ndarray, idx: np.ndarray, weights: np.ndarray) -> None:
        if idx.size == 0:
            return
        w_ptr = self._wptr(w)
        if w_ptr is None:
            super().scatter_add(w, idx, weights)
            return
        idx_arr, idx_ptr = self._i32(idx)
        weights_arr, weights_ptr = self._f64(weights)
        self._lib.repro_scatter_add(idx_arr.size, idx_ptr, weights_ptr, w_ptr)

    # ------------------------------------------------------------------ #
    # Per-sample hot path
    # ------------------------------------------------------------------ #
    def sample_update(
        self, w: np.ndarray, obj, X: CSRMatrix, i: int, y_i: float, scale: float
    ) -> int:
        disp = self._dispatch(obj)
        w_ptr = self._wptr(w) if disp is not None else None
        if disp is None or w_ptr is None:
            return super().sample_update(w, obj, X, i, y_i, scale)
        obj_id, has_reg, r1, r2 = disp
        _, indptr = self._i32(X.indptr)
        _, indices = self._i32(X.indices)
        _, data = self._f64(X.data)
        return int(
            self._lib.repro_sample_update(
                obj_id, has_reg, r1, r2, indptr, indices, data,
                int(i), float(y_i), float(scale), w_ptr,
            )
        )

    def run_sample_block(
        self,
        w: np.ndarray,
        obj,
        X: CSRMatrix,
        y: np.ndarray,
        rows: np.ndarray,
        scales: np.ndarray,
    ) -> int:
        disp = self._dispatch(obj)
        w_ptr = self._wptr(w) if disp is not None else None
        if disp is None or w_ptr is None:
            return super().run_sample_block(w, obj, X, y, rows, scales)
        rows_arr, rows_ptr = self._i64(rows)
        if rows_arr.size == 0:
            return 0
        obj_id, has_reg, r1, r2 = disp
        scales_arr, scales_ptr = self._f64(scales)
        y_arr, y_ptr = self._f64(y)
        _, indptr = self._i32(X.indptr)
        _, indices = self._i32(X.indices)
        _, data = self._f64(X.data)
        return int(
            self._lib.repro_run_sample_block(
                obj_id, has_reg, r1, r2, indptr, indices, data, y_ptr,
                rows_arr.size, rows_ptr, scales_ptr, w_ptr,
            )
        )

    def run_frozen_block(
        self,
        w: np.ndarray,
        obj,
        idx: np.ndarray,
        val: np.ndarray,
        lengths: np.ndarray,
        y_rows: np.ndarray,
        scales: np.ndarray,
    ) -> int:
        disp = self._dispatch(obj)
        w_ptr = self._wptr(w) if disp is not None else None
        if disp is None or w_ptr is None:
            # The engines gate on supports_objective(); reaching here means a
            # direct caller asked for an unsupported combination.
            return super().run_frozen_block(w, obj, idx, val, lengths, y_rows, scales)
        lengths_arr, lengths_ptr = self._i64(lengths)
        if lengths_arr.size == 0:
            return 0
        obj_id, has_reg, r1, r2 = disp
        idx_arr, idx_ptr = self._i32(idx)
        val_arr, val_ptr = self._f64(val)
        y_arr, y_ptr = self._f64(y_rows)
        scales_arr, scales_ptr = self._f64(scales)
        margins_buf = np.empty(lengths_arr.size, dtype=np.float64)
        entry_buf = np.empty(idx_arr.size, dtype=np.float64)
        return int(
            self._lib.repro_run_frozen_block(
                obj_id, has_reg, r1, r2, lengths_arr.size, lengths_ptr,
                idx_ptr, val_ptr, y_ptr, scales_ptr,
                self._ffi.from_buffer("double[]", margins_buf),
                self._ffi.from_buffer("double[]", entry_buf),
                w_ptr,
            )
        )

    # ------------------------------------------------------------------ #
    # Batched objective math
    # ------------------------------------------------------------------ #
    def _native_losses(self, disp, margins: np.ndarray, y_sel: np.ndarray) -> np.ndarray:
        out = np.empty(margins.size, dtype=np.float64)
        if margins.size:
            margins_arr, margins_ptr = self._f64(margins)
            y_arr, y_ptr = self._f64(y_sel)
            self._lib.repro_losses(
                disp[0], margins_arr.size, margins_ptr, y_ptr,
                self._ffi.from_buffer("double[]", out),
            )
        return out

    def losses(
        self,
        obj,
        X: CSRMatrix,
        y: np.ndarray,
        w: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        disp = self._dispatch(obj)
        if disp is None:
            return super().losses(obj, X, y, w, rows)
        margins = self.margins(X, w, rows)
        y_sel = y if rows is None else y[np.asarray(rows, dtype=np.int64)]
        return self._native_losses(disp, margins, y_sel)

    def grad_coeffs(
        self,
        obj,
        X: CSRMatrix,
        y: np.ndarray,
        w: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        disp = self._dispatch(obj)
        if disp is None:
            return super().grad_coeffs(obj, X, y, w, rows)
        margins = self.margins(X, w, rows)
        y_sel = y if rows is None else y[np.asarray(rows, dtype=np.int64)]
        out = np.empty(margins.size, dtype=np.float64)
        if margins.size:
            margins_arr, margins_ptr = self._f64(margins)
            y_arr, y_ptr = self._f64(y_sel)
            self._lib.repro_grad_coeffs(
                disp[0], margins_arr.size, margins_ptr, y_ptr,
                self._ffi.from_buffer("double[]", out),
            )
        return out

    # ------------------------------------------------------------------ #
    # Full-dataset quantities
    # ------------------------------------------------------------------ #
    def evaluate(self, obj, X: CSRMatrix, y: np.ndarray, w: np.ndarray) -> MetricsEval:
        disp = self._dispatch(obj)
        if disp is None:
            return super().evaluate(obj, X, y, w)
        n = X.n_rows
        if n == 0:
            return MetricsEval(
                rmse=float(np.sqrt(max(obj.regularizer.value(w), 0.0))), error_rate=0.0
            )
        margins = self.matvec(X, w)
        losses = self._native_losses(disp, margins, y)
        full = float(losses.mean()) + obj.regularizer.value(w)
        rmse = float(np.sqrt(max(full, 0.0)))
        return MetricsEval(rmse=rmse, error_rate=obj.error_rate_from_margins(margins, y))


__all__ = ["NativeKernel"]
