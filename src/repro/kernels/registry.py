"""Name-based kernel-backend registry (mirrors ``solvers/registry.py``).

The active backend is resolved in priority order:

1. an explicit :class:`~repro.kernels.base.KernelBackend` instance or name
   passed to the caller (solver constructors, ``MetricsRecorder``,
   ``Objective.batch_margins`` all accept a ``kernel`` argument);
2. the process-wide default set via :func:`set_default_backend`;
3. the ``REPRO_KERNEL_BACKEND`` environment variable;
4. the built-in default, ``"vectorized"``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Union

from repro.kernels.base import KernelBackend
from repro.kernels.native import make_native_backend, native_status
from repro.kernels.reference import ReferenceKernel
from repro.kernels.vectorized import VectorizedKernel

#: Environment variable consulted when no explicit backend is configured.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The built-in default backend name.
DEFAULT_BACKEND = "vectorized"

_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {
    "native": make_native_backend,
    "reference": ReferenceKernel,
    "vectorized": VectorizedKernel,
}

# One shared instance per name — backends are stateless, so construction
# once per process is enough.
_INSTANCES: Dict[str, KernelBackend] = {}

_default_override: Optional[str] = None


def available_backends() -> List[str]:
    """Names accepted by :func:`make_backend`, sorted alphabetically."""
    return sorted(_FACTORIES)


def backend_availability() -> Dict[str, str]:
    """Availability status per registered backend name (no build side-effects).

    The pure-Python backends are always ``"available"``; ``native`` reports
    whether a compiled extension is loaded/cached, a fallback was taken, or
    a build would be attempted on first use.
    """
    status: Dict[str, str] = {}
    for name in available_backends():
        status[name] = native_status() if name == "native" else "available"
    return status


def _unknown_backend_error(name: str) -> ValueError:
    details = ", ".join(f"{n} [{s}]" for n, s in sorted(backend_availability().items()))
    return ValueError(f"unknown kernel backend {name!r}; available: {details}")


def make_backend(name: str) -> KernelBackend:
    """Return the (shared) backend instance registered under ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise _unknown_backend_error(name) from None
    if name not in _INSTANCES:
        _INSTANCES[name] = factory()
    return _INSTANCES[name]


def backend_doc_class(name: str) -> type:
    """The class documenting ``name``, without instantiating the backend.

    Documentation generators use this instead of :func:`make_backend` so that
    listing the ``native`` backend never triggers a compilation (or a
    fallback, which would mis-document it as the vectorized class).
    """
    if name not in _FACTORIES:
        raise _unknown_backend_error(name)
    if name == "native":
        from repro.kernels.native.backend import NativeKernel

        return NativeKernel
    factory = _FACTORIES[name]
    if isinstance(factory, type):
        return factory
    return type(make_backend(name))


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a custom backend factory (overwrites an existing name)."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def default_backend_name() -> str:
    """The name the process currently resolves ``kernel=None`` to."""
    if _default_override is not None:
        return _default_override
    env = os.environ.get(BACKEND_ENV_VAR, "").strip()
    return env if env else DEFAULT_BACKEND


def set_default_backend(name: Optional[str]) -> None:
    """Set (or clear, with ``None``) the process-wide default backend."""
    global _default_override
    if name is not None and name not in _FACTORIES:
        raise _unknown_backend_error(name)
    _default_override = name


def get_default_backend() -> KernelBackend:
    """The backend instance used when no explicit ``kernel`` is given."""
    return make_backend(default_backend_name())


def resolve_backend(kernel: Union[KernelBackend, str, None]) -> KernelBackend:
    """Normalise a ``kernel`` argument (instance, name or None) to a backend."""
    if kernel is None:
        return get_default_backend()
    if isinstance(kernel, KernelBackend):
        return kernel
    if isinstance(kernel, str):
        return make_backend(kernel)
    raise TypeError(
        f"kernel must be a KernelBackend, a backend name or None, got {type(kernel).__name__}"
    )


__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "available_backends",
    "backend_availability",
    "backend_doc_class",
    "make_backend",
    "register_backend",
    "default_backend_name",
    "set_default_backend",
    "get_default_backend",
    "resolve_backend",
]
