"""Vectorized kernel backend: batched NumPy segment ops over raw CSR arrays.

The backend replaces every batched quantity with one NumPy expression over
the flat CSR ``(data, indices, indptr)`` arrays:

* margins of a row subset — gather + ``np.add.reduceat`` segment sums;
* scatter-add of scaled sparse rows — gather + ``np.bincount`` with weights;
* per-sample losses/derivatives — one call into the objective's batch API
  (:meth:`~repro.objectives.base.Objective.batch_loss` /
  :meth:`~repro.objectives.base.Objective.batch_grad_coeffs`);
* metrics evaluation — a single matvec shared by RMSE and error rate.

The sequential per-sample primitives (``row_margin`` / ``sample_update``)
perform the *same floating-point operations* as the reference backend — the
margin is an ``np.dot`` over the support and the update touches each support
coordinate exactly once — so serial SGD-style trajectories are bitwise
identical across backends; only genuinely batched reductions (mini-batch
accumulation, full gradients, metrics) may differ in the last ulp due to
summation order.

Canonical CSR layout (sorted, duplicate-free column indices within each
row — guaranteed by every :class:`~repro.sparse.csr.CSRMatrix` constructor)
is assumed: ``w[idx] += v`` is then equivalent to ``np.add.at(w, idx, v)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels.base import KernelBackend, MetricsEval
from repro.objectives.regularizers import NoRegularizer
from repro.sparse.csr import CSRMatrix


def _segment_sums(per_entry: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Sum ``per_entry`` within consecutive segments of the given lengths.

    Zero-length segments (empty rows) are valid and produce 0; the sentinel
    pad makes ``reduceat`` start indices equal to ``per_entry.size`` legal.
    """
    if per_entry.size == 0:
        return np.zeros(lengths.size, dtype=np.float64)
    starts = np.cumsum(lengths) - lengths
    padded = np.concatenate([per_entry, [0.0]])
    sums = np.add.reduceat(padded, starts)
    return np.asarray(np.where(lengths > 0, sums, 0.0), dtype=np.float64)


class VectorizedKernel(KernelBackend):
    """Batched CSR primitives built on reduceat/bincount segment operations."""

    name = "vectorized"

    # ------------------------------------------------------------------ #
    # CSR linear algebra
    # ------------------------------------------------------------------ #
    def matvec(self, X: CSRMatrix, w: np.ndarray) -> np.ndarray:
        return X.dot(w)

    def rmatvec(self, X: CSRMatrix, v: np.ndarray) -> np.ndarray:
        return X.transpose_dot(v)

    def margins(
        self, X: CSRMatrix, w: np.ndarray, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if rows is None:
            return X.dot(w)
        idx, val, lengths = X.gather_rows(rows)
        return _segment_sums(val * w[idx], lengths)

    def accumulate_rows(
        self, X: CSRMatrix, rows: np.ndarray, coeffs: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        idx, val, lengths = X.gather_rows(rows)
        if idx.size:
            weights = np.repeat(np.asarray(coeffs, dtype=np.float64), lengths) * val
            out += np.bincount(idx, weights=weights, minlength=out.shape[0])
        return out

    def segment_margins(
        self, idx: np.ndarray, val: np.ndarray, lengths: np.ndarray, w: np.ndarray
    ) -> np.ndarray:
        return _segment_sums(val * w[idx], lengths)

    def scatter_add(self, w: np.ndarray, idx: np.ndarray, weights: np.ndarray) -> None:
        if idx.size == 0:
            return
        # Compress onto the touched columns before the dense write so the
        # cost stays O(nnz log nnz) rather than O(d) per block.
        cols, inverse = np.unique(idx, return_inverse=True)
        w[cols] += np.bincount(inverse, weights=weights, minlength=cols.size)

    def batch_grad(
        self,
        obj,
        X: CSRMatrix,
        rows: np.ndarray,
        w: np.ndarray,
        y: np.ndarray,
        scales: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        rows = np.asarray(rows, dtype=np.int64)
        scales = np.asarray(scales, dtype=np.float64)
        idx, val, lengths = X.gather_rows(rows)
        if idx.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
        margins = _segment_sums(val * w[idx], lengths)
        coeffs = obj.batch_grad_coeffs(margins, y[rows])
        weights = np.repeat(scales * coeffs, lengths) * val
        if not isinstance(obj.regularizer, NoRegularizer):
            weights += np.repeat(scales, lengths) * obj.regularizer.grad_coords(w, idx)
        # Compress onto the union support: O(batch nnz log batch nnz), never O(d).
        cols, inverse = np.unique(idx, return_inverse=True)
        vals = np.bincount(inverse, weights=weights, minlength=cols.size)
        return cols, np.asarray(vals, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Per-sample hot path (raw-slice variants of the reference semantics)
    # ------------------------------------------------------------------ #
    def row_margin(self, X: CSRMatrix, i: int, w: np.ndarray) -> float:
        lo, hi = X.indptr[i], X.indptr[i + 1]
        if lo == hi:
            return 0.0
        return float(np.dot(X.data[lo:hi], w[X.indices[lo:hi]]))

    def row_update(
        self, w: np.ndarray, X: CSRMatrix, i: int, values: np.ndarray, scale: float = 1.0
    ) -> None:
        lo, hi = X.indptr[i], X.indptr[i + 1]
        if lo != hi:
            idx = X.indices[lo:hi]
            w[idx] += scale * values

    def sample_grad(
        self, obj, X: CSRMatrix, i: int, w: np.ndarray, y_i: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = X.indptr[i], X.indptr[i + 1]
        idx = X.indices[lo:hi]
        val = X.data[lo:hi]
        margin = float(np.dot(val, w[idx])) if idx.size else 0.0
        coef = obj._loss_derivative(margin, y_i)
        values = coef * val
        if idx.size and not isinstance(obj.regularizer, NoRegularizer):
            values = values + obj.regularizer.grad_coords(w, idx)
        return idx, values

    def sample_update(
        self, w: np.ndarray, obj, X: CSRMatrix, i: int, y_i: float, scale: float
    ) -> int:
        lo, hi = X.indptr[i], X.indptr[i + 1]
        if lo == hi:
            return 0
        idx = X.indices[lo:hi]
        val = X.data[lo:hi]
        wi = w[idx]
        margin = float(np.dot(val, wi))
        coef = obj._loss_derivative(margin, y_i)
        values = coef * val
        if not isinstance(obj.regularizer, NoRegularizer):
            values = values + obj.regularizer.grad_coords(w, idx)
        # Canonical CSR rows have unique column indices, so the fancy-index
        # write is exactly the scatter-add without np.add.at's overhead.
        w[idx] = wi + scale * values
        return int(idx.size)

    # ------------------------------------------------------------------ #
    # Batched objective math
    # ------------------------------------------------------------------ #
    def losses(
        self,
        obj,
        X: CSRMatrix,
        y: np.ndarray,
        w: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        margins = self.margins(X, w, rows)
        y_sel = y if rows is None else y[np.asarray(rows, dtype=np.int64)]
        return obj.batch_loss(margins, y_sel)

    def grad_coeffs(
        self,
        obj,
        X: CSRMatrix,
        y: np.ndarray,
        w: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        margins = self.margins(X, w, rows)
        y_sel = y if rows is None else y[np.asarray(rows, dtype=np.int64)]
        return obj.batch_grad_coeffs(margins, y_sel)

    # ------------------------------------------------------------------ #
    # Full-dataset quantities
    # ------------------------------------------------------------------ #
    def full_gradient(self, obj, X: CSRMatrix, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        margins = X.dot(w)
        coefs = obj.batch_grad_coeffs(margins, y)
        grad = X.transpose_dot(coefs) / max(X.n_rows, 1)
        grad += obj.regularizer.grad_dense(w)
        return grad

    def evaluate(self, obj, X: CSRMatrix, y: np.ndarray, w: np.ndarray) -> MetricsEval:
        n = X.n_rows
        if n == 0:
            return MetricsEval(
                rmse=float(np.sqrt(max(obj.regularizer.value(w), 0.0))), error_rate=0.0
            )
        margins = X.dot(w)
        losses = obj.batch_loss(margins, y)
        full = float(losses.mean()) + obj.regularizer.value(w)
        rmse = float(np.sqrt(max(full, 0.0)))
        return MetricsEval(rmse=rmse, error_rate=obj.error_rate_from_margins(margins, y))


__all__ = ["VectorizedKernel"]
