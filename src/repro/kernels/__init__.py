"""Backend-pluggable compute-kernel layer shared by solvers, objectives and metrics.

Every numeric hot path in the library — per-sample SGD steps, batched
margins, full gradients, metrics evaluation — dispatches through a
:class:`~repro.kernels.base.KernelBackend` so that the *algorithmic* code
(solvers, objectives) is independent of *how* the arithmetic is executed.

Backends
--------
``reference``
    The original per-sample Python-loop semantics (``X.row(i)`` → scalar
    margin → scalar derivative → ``np.add.at``), kept as ground truth for
    parity testing and debugging.
``vectorized`` (default)
    Batched CSR primitives: segment-sum margins via ``np.add.reduceat``,
    scatter-add of scaled sparse rows via ``np.bincount``, one-matvec
    metrics evaluation, and raw-slice per-sample steps that perform the
    identical floating-point operations as ``reference`` so serial
    trajectories match bitwise.
``native``
    cffi-compiled C loops for the CSR primitives and — above all — the
    fused per-sample block (``run_sample_block`` / ``run_frozen_block``),
    built on first use and cached; falls back to ``vectorized`` with a
    single warning when no compiler or cached build is available.

Backend selection
-----------------
Resolution order for any ``kernel=...`` argument (accepted by every solver
constructor, :class:`~repro.metrics.convergence.MetricsRecorder`, and the
``Objective`` batch API):

1. an explicit backend instance or registry name;
2. :func:`~repro.kernels.registry.set_default_backend` (process-wide);
3. the ``REPRO_KERNEL_BACKEND`` environment variable;
4. the built-in default ``"vectorized"``.

Batch-API contract
------------------
Backends obtain per-sample math from the objective's batch API, which is
implemented once on :class:`~repro.objectives.base.Objective` so every
registered objective supports it:

* ``batch_margins(w, X, rows=None, kernel=None)`` — margins ``<x_i, w>``;
* ``batch_loss(margins, y)`` — elementwise unregularised losses; must equal
  the scalar ``sample_loss`` evaluated per row;
* ``batch_grad_coeffs(margins, y)`` — elementwise loss derivatives w.r.t.
  the margin; must equal the scalar ``_loss_derivative`` per row, so a
  per-sample gradient is always ``batch_grad_coeffs(m, y)[i] * x_i`` plus
  the regulariser restricted to the support.

Any new objective only has to supply the scalar/vector loss hooks of the
``Objective`` ABC and automatically works with every backend; any new
backend only has to implement the ``KernelBackend`` primitives and
automatically accelerates every solver, objective and metric.
"""

from repro.kernels.base import KernelBackend, MetricsEval
from repro.kernels.native import (
    NativeBuildError,
    make_native_backend,
    native_build_error,
    native_status,
)
from repro.kernels.reference import ReferenceKernel
from repro.kernels.registry import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    available_backends,
    backend_availability,
    backend_doc_class,
    default_backend_name,
    get_default_backend,
    make_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.kernels.vectorized import VectorizedKernel

__all__ = [
    "KernelBackend",
    "MetricsEval",
    "NativeBuildError",
    "ReferenceKernel",
    "VectorizedKernel",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "available_backends",
    "backend_availability",
    "backend_doc_class",
    "default_backend_name",
    "get_default_backend",
    "make_backend",
    "make_native_backend",
    "native_build_error",
    "native_status",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
]
