"""Abstract compute-kernel backend.

A :class:`KernelBackend` bundles every numeric primitive the solvers,
objectives and metrics need into one swappable object:

* CSR linear algebra — full and subset matrix-vector products
  (:meth:`matvec`, :meth:`rmatvec`, :meth:`margins`) and the scatter-add of
  scaled sparse rows (:meth:`accumulate_rows`);
* the per-sample hot path — :meth:`row_margin`, :meth:`sample_grad`,
  :meth:`row_update`, the fused :meth:`sample_update` that one SGD-style
  iteration consists of, and the block primitives
  :meth:`run_sample_block` / :meth:`run_frozen_block` that execute a whole
  schedule block of such steps in one call;
* batched objective math — per-sample losses and loss derivatives
  (:meth:`losses`, :meth:`grad_coeffs`) built on the
  :class:`~repro.objectives.base.Objective` batch API;
* full-dataset quantities — :meth:`full_loss`, :meth:`full_gradient` and
  the one-pass metrics evaluation :meth:`evaluate`.

Three implementations ship with the library: the ``reference`` backend
keeps the original per-sample Python-loop semantics as ground truth, the
``vectorized`` backend (the default) replaces every batched quantity with
NumPy segment operations over the raw CSR arrays, and the ``native``
backend (built on first use with a C compiler, falling back to
``vectorized`` otherwise) executes the hot loops as compiled C.  The
registry-driven parity suite in ``tests/kernels/test_parity.py`` pins
every backend to the reference.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.objectives.base import Objective


@dataclass
class MetricsEval:
    """Result of one full-dataset metrics evaluation."""

    rmse: float
    error_rate: float


class KernelBackend(ABC):
    """Pluggable numeric core shared by solvers, objectives and metrics."""

    #: Registry name of the backend.
    name: str = "base"

    #: Whether the backend executes :meth:`run_sample_block` /
    #: :meth:`run_frozen_block` as one fused native call instead of the
    #: generic per-sample Python loop.  Engines use this to decide whether
    #: handing a whole schedule block to the kernel is worthwhile; the
    #: default loop below keeps the primitive available (and bit-equal to
    #: the historical per-step loop) on every backend either way.
    fused_sample_block: bool = False

    def supports_objective(self, obj: "Objective") -> bool:
        """Whether the fused block primitives can dispatch ``obj`` natively.

        Only meaningful when :attr:`fused_sample_block` is true; the
        generic backends answer ``False`` so callers always take the
        composable per-step path.
        """
        return False

    # ------------------------------------------------------------------ #
    # CSR linear algebra
    # ------------------------------------------------------------------ #
    @abstractmethod
    def matvec(self, X: CSRMatrix, w: np.ndarray) -> np.ndarray:
        """All-rows margins ``X @ w`` as a dense length-``n`` vector."""

    @abstractmethod
    def rmatvec(self, X: CSRMatrix, v: np.ndarray) -> np.ndarray:
        """Transpose product ``X.T @ v`` as a dense length-``d`` vector."""

    @abstractmethod
    def margins(
        self, X: CSRMatrix, w: np.ndarray, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Margins ``<x_i, w>`` for ``rows`` (all rows when ``None``)."""

    @abstractmethod
    def accumulate_rows(
        self, X: CSRMatrix, rows: np.ndarray, coeffs: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Scatter-add of scaled sparse rows: ``out += Σ_t coeffs[t] * x_{rows[t]}``.

        ``rows`` may repeat; ``out`` is modified in place and returned.
        """

    # ------------------------------------------------------------------ #
    # Gathered-row (pre-sliced CSR) batch primitives
    # ------------------------------------------------------------------ #
    def segment_margins(
        self, idx: np.ndarray, val: np.ndarray, lengths: np.ndarray, w: np.ndarray
    ) -> np.ndarray:
        """Margins of already-gathered rows: ``out[t] = Σ_k val_t[k] * w[idx_t[k]]``.

        ``(idx, val, lengths)`` is the flat layout produced by
        :meth:`CSRMatrix.gather_rows`; callers that already hold the gathered
        arrays (the batched async engine) use this instead of :meth:`margins`
        to avoid a second gather.  The generic implementation loops over the
        segments; backends override it with segment reductions.
        """
        out = np.zeros(lengths.size, dtype=np.float64)
        start = 0
        for t, length in enumerate(lengths):
            stop = start + int(length)
            if stop > start:
                out[t] = float(np.dot(val[start:stop], w[idx[start:stop]]))
            start = stop
        return out

    def scatter_add(self, w: np.ndarray, idx: np.ndarray, weights: np.ndarray) -> None:
        """In-place scatter-add ``w[idx] += weights`` with repeated indices.

        ``idx`` is a flat (gathered) column-index array that may contain
        duplicates across rows; every entry must be accumulated.  This is the
        write half of a batched macro-step: compute per-entry deltas, then
        fold the whole block into the model with one call.
        """
        if idx.size:
            np.add.at(w, idx, weights)

    # ------------------------------------------------------------------ #
    # Per-sample hot path
    # ------------------------------------------------------------------ #
    def row(self, X: CSRMatrix, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(indices, values)`` views of row ``i``."""
        return X.row(i)

    @abstractmethod
    def row_margin(self, X: CSRMatrix, i: int, w: np.ndarray) -> float:
        """Margin ``<x_i, w>`` of one row."""

    @abstractmethod
    def row_update(
        self, w: np.ndarray, X: CSRMatrix, i: int, values: np.ndarray, scale: float = 1.0
    ) -> None:
        """In-place ``w[support(x_i)] += scale * values`` (values aligned with the support)."""

    @abstractmethod
    def sample_grad(
        self, obj: "Objective", X: CSRMatrix, i: int, w: np.ndarray, y_i: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Index-compressed ``∇f_i(w)`` (loss + regulariser on the support) as ``(indices, values)``."""

    @abstractmethod
    def sample_update(
        self, w: np.ndarray, obj: "Objective", X: CSRMatrix, i: int, y_i: float, scale: float
    ) -> int:
        """One fused SGD-style step ``w += scale * ∇f_i(w)``; returns ``nnz(x_i)``."""

    def run_sample_block(
        self,
        w: np.ndarray,
        obj: "Objective",
        X: CSRMatrix,
        y: np.ndarray,
        rows: np.ndarray,
        scales: np.ndarray,
    ) -> int:
        """Fused sequential per-sample loop over one schedule block.

        Executes ``rows.size`` consecutive SGD-style steps — row margin →
        scalar loss derivative → in-place row update ``w += scales[t] *
        ∇f_{rows[t]}(w)`` — and returns the total ``nnz`` touched.  Step
        ``t`` observes every earlier step's writes, exactly as the
        per-step :meth:`sample_update` loop it replaces; the generic
        implementation *is* that loop, so routing an epoch body through
        this primitive never changes semantics.  Backends with a native
        fused loop (see :attr:`fused_sample_block`) override it to execute
        the whole block in one call.
        """
        total = 0
        for t in range(rows.size):
            i = int(rows[t])
            total += self.sample_update(w, obj, X, i, float(y[i]), float(scales[t]))
        return total

    def run_frozen_block(
        self,
        w: np.ndarray,
        obj: "Objective",
        idx: np.ndarray,
        val: np.ndarray,
        lengths: np.ndarray,
        y_rows: np.ndarray,
        scales: np.ndarray,
    ) -> int:
        """Fused frozen-margin macro-step over already-gathered rows.

        The one-call equivalent of the batched engine's
        :meth:`segment_margins` → entry-weight → :meth:`scatter_add`
        sequence for SGD-style rules: all margins are evaluated at the
        block-start iterate (and the separable regulariser at the
        block-start coordinates), then every per-entry delta
        ``scales[t] * (phi'(m_t) * val + ∇r(w)|_supp)`` is accumulated in
        gather order.  Only backends advertising
        :attr:`fused_sample_block` implement it; engines must keep the
        composable path for everything else.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not provide a fused frozen-block primitive"
        )

    @abstractmethod
    def batch_grad(
        self,
        obj: "Objective",
        X: CSRMatrix,
        rows: np.ndarray,
        w: np.ndarray,
        y: np.ndarray,
        scales: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Index-compressed sum of re-weighted sample gradients.

        Returns ``Σ_t scales[t] * ∇f_{rows[t]}(w)`` as a ``(columns,
        values)`` pair whose support is the union of the rows' supports —
        the mini-batch update primitive.  Per-sample gradients are
        index-compressed (loss + regulariser on the support) and evaluated
        at the common iterate ``w``; the cost is O(batch nnz), never O(d).
        """

    # ------------------------------------------------------------------ #
    # Batched objective math
    # ------------------------------------------------------------------ #
    @abstractmethod
    def losses(
        self,
        obj: "Objective",
        X: CSRMatrix,
        y: np.ndarray,
        w: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Unregularised per-sample losses ``phi_i(w)`` for ``rows`` (all when ``None``)."""

    @abstractmethod
    def grad_coeffs(
        self,
        obj: "Objective",
        X: CSRMatrix,
        y: np.ndarray,
        w: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-sample loss derivatives w.r.t. the margin for ``rows`` (all when ``None``)."""

    # ------------------------------------------------------------------ #
    # Full-dataset quantities
    # ------------------------------------------------------------------ #
    def full_loss(self, obj: "Objective", X: CSRMatrix, y: np.ndarray, w: np.ndarray) -> float:
        """Full objective ``F(w) = (1/n) Σ phi_i(w) + r(w)``."""
        if X.n_rows == 0:
            return obj.regularizer.value(w)
        losses = self.losses(obj, X, y, w)
        return float(losses.mean()) + obj.regularizer.value(w)

    @abstractmethod
    def full_gradient(
        self, obj: "Objective", X: CSRMatrix, y: np.ndarray, w: np.ndarray
    ) -> np.ndarray:
        """Dense full gradient ``∇F(w)`` including the regulariser."""

    @abstractmethod
    def evaluate(
        self, obj: "Objective", X: CSRMatrix, y: np.ndarray, w: np.ndarray
    ) -> MetricsEval:
        """RMSE and error rate of ``w`` on ``(X, y)`` in one pass."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


__all__ = ["KernelBackend", "MetricsEval"]
