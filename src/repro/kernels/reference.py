"""Reference kernel backend: per-sample Python loops, kept as ground truth.

Every primitive is implemented exactly the way the original solvers did it —
``X.row(i)`` → scalar margin → scalar loss derivative → ``np.add.at`` — so
the backend defines the semantics the ``vectorized`` backend must reproduce.
It is deliberately slow; use it for parity testing and debugging only.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels.base import KernelBackend, MetricsEval
from repro.objectives.regularizers import NoRegularizer
from repro.sparse.csr import CSRMatrix


class ReferenceKernel(KernelBackend):
    """Per-sample loop implementations of every kernel primitive."""

    name = "reference"

    # ------------------------------------------------------------------ #
    # CSR linear algebra
    # ------------------------------------------------------------------ #
    def matvec(self, X: CSRMatrix, w: np.ndarray) -> np.ndarray:
        out = np.zeros(X.n_rows, dtype=np.float64)
        for i in range(X.n_rows):
            out[i] = X.row_dot(i, w)
        return out

    def rmatvec(self, X: CSRMatrix, v: np.ndarray) -> np.ndarray:
        out = np.zeros(X.n_cols, dtype=np.float64)
        for i in range(X.n_rows):
            idx, val = X.row(i)
            if idx.size:
                np.add.at(out, idx, val * float(v[i]))
        return out

    def margins(
        self, X: CSRMatrix, w: np.ndarray, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if rows is None:
            return self.matvec(X, w)
        rows = np.asarray(rows, dtype=np.int64)
        out = np.zeros(rows.size, dtype=np.float64)
        for t, i in enumerate(rows):
            out[t] = X.row_dot(int(i), w)
        return out

    def accumulate_rows(
        self, X: CSRMatrix, rows: np.ndarray, coeffs: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        for t, i in enumerate(np.asarray(rows, dtype=np.int64)):
            idx, val = X.row(int(i))
            if idx.size:
                np.add.at(out, idx, float(coeffs[t]) * val)
        return out

    # segment_margins: the KernelBackend default *is* the reference loop.

    def scatter_add(self, w: np.ndarray, idx: np.ndarray, weights: np.ndarray) -> None:
        for k in range(idx.size):
            w[int(idx[k])] += float(weights[k])

    def batch_grad(
        self,
        obj,
        X: CSRMatrix,
        rows: np.ndarray,
        w: np.ndarray,
        y: np.ndarray,
        scales: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        accum: dict[int, float] = {}
        for t, i in enumerate(np.asarray(rows, dtype=np.int64)):
            i = int(i)
            x_idx, x_val = X.row(i)
            grad = obj.sample_grad(w, x_idx, x_val, float(y[i]))
            scale = float(scales[t])
            for col, val in zip(grad.indices, grad.values):
                accum[int(col)] = accum.get(int(col), 0.0) + scale * float(val)
        cols = np.fromiter(accum.keys(), dtype=np.int64, count=len(accum))
        vals = np.fromiter(accum.values(), dtype=np.float64, count=len(accum))
        return cols, vals

    # ------------------------------------------------------------------ #
    # Per-sample hot path
    # ------------------------------------------------------------------ #
    def row_margin(self, X: CSRMatrix, i: int, w: np.ndarray) -> float:
        return X.row_dot(i, w)

    def row_update(
        self, w: np.ndarray, X: CSRMatrix, i: int, values: np.ndarray, scale: float = 1.0
    ) -> None:
        idx, _ = X.row(i)
        if idx.size:
            np.add.at(w, idx, scale * values)

    def sample_grad(
        self, obj, X: CSRMatrix, i: int, w: np.ndarray, y_i: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        x_idx, x_val = X.row(i)
        grad = obj.sample_grad(w, x_idx, x_val, y_i)
        return grad.indices, grad.values

    def sample_update(
        self, w: np.ndarray, obj, X: CSRMatrix, i: int, y_i: float, scale: float
    ) -> int:
        x_idx, x_val = X.row(i)
        grad = obj.sample_grad(w, x_idx, x_val, y_i)
        if grad.indices.size:
            np.add.at(w, grad.indices, scale * grad.values)
        return int(x_idx.size)

    # ------------------------------------------------------------------ #
    # Batched objective math (scalar loops over the sample index)
    # ------------------------------------------------------------------ #
    def losses(
        self,
        obj,
        X: CSRMatrix,
        y: np.ndarray,
        w: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        rows = np.arange(X.n_rows) if rows is None else np.asarray(rows, dtype=np.int64)
        out = np.zeros(rows.size, dtype=np.float64)
        for t, i in enumerate(rows):
            x_idx, x_val = X.row(int(i))
            out[t] = obj.sample_loss(w, x_idx, x_val, float(y[int(i)]))
        return out

    def grad_coeffs(
        self,
        obj,
        X: CSRMatrix,
        y: np.ndarray,
        w: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        rows = np.arange(X.n_rows) if rows is None else np.asarray(rows, dtype=np.int64)
        out = np.zeros(rows.size, dtype=np.float64)
        for t, i in enumerate(rows):
            i = int(i)
            margin = X.row_dot(i, w)
            out[t] = obj._loss_derivative(margin, float(y[i]))
        return out

    # ------------------------------------------------------------------ #
    # Full-dataset quantities
    # ------------------------------------------------------------------ #
    def full_gradient(self, obj, X: CSRMatrix, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        n = max(X.n_rows, 1)
        grad = np.zeros(X.n_cols, dtype=np.float64)
        for i in range(X.n_rows):
            idx, val = X.row(i)
            if idx.size:
                margin = X.row_dot(i, w)
                coef = obj._loss_derivative(margin, float(y[i]))
                np.add.at(grad, idx, coef * val / n)
        if not isinstance(obj.regularizer, NoRegularizer):
            grad += obj.regularizer.grad_dense(w)
        return grad

    def evaluate(self, obj, X: CSRMatrix, y: np.ndarray, w: np.ndarray) -> MetricsEval:
        n = X.n_rows
        loss_sum = 0.0
        errors = 0.0
        sq_err_sum = 0.0
        for i in range(n):
            x_idx, x_val = X.row(i)
            y_i = float(y[i])
            loss_sum += obj.sample_loss(w, x_idx, x_val, y_i)
            margin = X.row_dot(i, w)
            if obj.is_classification:
                pred = np.sign(margin) or 1.0
                errors += float(pred != np.sign(y_i))
            else:
                sq_err_sum += (margin - y_i) ** 2
        mean_loss = loss_sum / n if n else 0.0
        rmse = float(np.sqrt(max(mean_loss + obj.regularizer.value(w), 0.0)))
        if obj.is_classification:
            error_rate = errors / n if n else 0.0
        else:
            denom = float(np.mean(y**2)) or 1.0
            error_rate = (sq_err_sum / n) / denom if n else 0.0
        return MetricsEval(rmse=rmse, error_rate=float(error_rate))


__all__ = ["ReferenceKernel"]
