"""Convergence bounds of Sections 2.2 and 3 of the paper.

All bounds are returned as plain floats so the benchmark harness can print
side-by-side "predicted vs measured" comparisons.  The absolute constants
in such bounds are loose by design; what the reproduction checks is the
*ordering and ratio structure* (IS bound ≤ uniform bound, ratio governed by
ψ, delay condition growing with sparsity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import check_array_1d, check_positive


def sgd_convergence_bound(
    lipschitz: np.ndarray,
    distance_sq: float,
    sigma: float,
    iterations: int,
) -> float:
    """Uniform-sampling SGD bound of Eq. 14.

    ``(1/T) Σ E[F(w_t) - F(w*)] <= sqrt( ||w* - w0||² Σ L_i² / (σ n) ) / T``
    — evaluated with the paper's choice of step size.
    """
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    check_positive(distance_sq, "distance_sq", strict=False)
    check_positive(sigma, "sigma")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    n = L.size
    value = np.sqrt(distance_sq * float(np.sum(L**2)) / (sigma * n))
    return float(value) / iterations


def is_sgd_convergence_bound(
    lipschitz: np.ndarray,
    distance_sq: float,
    sigma: float,
    iterations: int,
) -> float:
    """Importance-sampling SGD bound of Eq. 13.

    ``(1/T) Σ E[F(w_t) - F(w*)] <= sqrt( ||w* - w0||² / σ ) (Σ L_i / n) / T``.
    """
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    check_positive(distance_sq, "distance_sq", strict=False)
    check_positive(sigma, "sigma")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    value = np.sqrt(distance_sq / sigma) * float(L.mean())
    return float(value) / iterations


def bound_improvement_ratio(lipschitz: np.ndarray) -> float:
    """Ratio (IS bound) / (uniform bound) = sqrt(ψ) ≤ 1 (Cauchy–Schwarz)."""
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    denom = float(np.sqrt(np.mean(L**2)))
    if denom == 0.0:
        return 1.0
    return float(L.mean()) / denom


def is_sgd_iteration_bound(
    lipschitz: np.ndarray,
    mu: float,
    sigma_sq: float,
    epsilon: float,
    epsilon0: float,
) -> float:
    """IS-SGD iteration complexity (Eq. 29): average-Lipschitz dependence."""
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    check_positive(mu, "mu")
    check_positive(epsilon, "epsilon")
    check_positive(epsilon0, "epsilon0")
    mean_L = float(L.mean())
    inf_L = float(max(L.min(), 1e-12))
    return 2.0 * np.log(max(epsilon0 / epsilon, 1.0 + 1e-12)) * (
        mean_L / mu + (mean_L / inf_L) * sigma_sq / (mu**2 * epsilon)
    )


def sgd_iteration_bound(
    lipschitz: np.ndarray,
    mu: float,
    sigma_sq: float,
    epsilon: float,
    epsilon0: float,
) -> float:
    """Uniform SGD iteration complexity (Eq. 28): supremum-Lipschitz dependence."""
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    check_positive(mu, "mu")
    check_positive(epsilon, "epsilon")
    check_positive(epsilon0, "epsilon0")
    sup_L = float(L.max())
    return 2.0 * np.log(max(epsilon0 / epsilon, 1.0 + 1e-12)) * (
        sup_L / mu + sigma_sq / (mu**2 * epsilon)
    )


def is_asgd_iteration_bound(
    lipschitz: np.ndarray,
    mu: float,
    sigma_sq: float,
    epsilon: float,
    epsilon0: float,
    *,
    order_constant: float = 1.0,
) -> float:
    """IS-ASGD iteration complexity (Eq. 26 / Lemma 2).

    The asynchronous noise term only contributes an order-wise constant when
    the delay condition of Eq. 27 holds, so the bound is the IS-SGD bound
    multiplied by ``order_constant`` (= O(1)).
    """
    check_positive(order_constant, "order_constant")
    return order_constant * is_sgd_iteration_bound(lipschitz, mu, sigma_sq, epsilon, epsilon0)


def tau_bound(
    lipschitz: np.ndarray,
    mu: float,
    sigma_sq: float,
    epsilon: float,
    *,
    n: Optional[int] = None,
    average_conflict_degree: float = 1.0,
) -> float:
    """The maximum admissible delay τ of Eq. 27.

    ``τ = O(min{ n / Δ̄, (ε µ sup L + σ²) / (ε µ²) })`` — the first argument
    is structural (dataset sparsity), the second optimisation-theoretic.
    """
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    check_positive(mu, "mu")
    check_positive(epsilon, "epsilon")
    n_val = int(n) if n is not None else L.size
    structural = float("inf") if average_conflict_degree <= 0 else n_val / average_conflict_degree
    analytic = (epsilon * mu * float(L.max()) + sigma_sq) / (epsilon * mu**2)
    return float(min(structural, analytic))


@dataclass
class BoundComparison:
    """Side-by-side convergence-bound comparison for one dataset."""

    psi: float
    uniform_bound: float
    is_bound: float
    uniform_iterations: float
    is_iterations: float
    tau_limit: float

    @property
    def bound_ratio(self) -> float:
        """IS bound divided by the uniform bound (≤ 1)."""
        if self.uniform_bound == 0.0:
            return 1.0
        return self.is_bound / self.uniform_bound

    @property
    def iteration_ratio(self) -> float:
        """IS iteration complexity divided by the uniform one (≤ 1 + o(1))."""
        if self.uniform_iterations == 0.0:
            return 1.0
        return self.is_iterations / self.uniform_iterations


def compare_bounds(
    lipschitz: np.ndarray,
    *,
    distance_sq: float = 1.0,
    sigma: float = 1.0,
    iterations: int = 1000,
    mu: float = 1e-2,
    epsilon: float = 1e-3,
    epsilon0: float = 1.0,
    average_conflict_degree: float = 1.0,
) -> BoundComparison:
    """Evaluate every bound for one Lipschitz spectrum (used by the theory benchmark)."""
    from repro.sparse.stats import psi as psi_fn

    sigma_sq = sigma**2
    return BoundComparison(
        psi=psi_fn(lipschitz),
        uniform_bound=sgd_convergence_bound(lipschitz, distance_sq, sigma, iterations),
        is_bound=is_sgd_convergence_bound(lipschitz, distance_sq, sigma, iterations),
        uniform_iterations=sgd_iteration_bound(lipschitz, mu, sigma_sq, epsilon, epsilon0),
        is_iterations=is_sgd_iteration_bound(lipschitz, mu, sigma_sq, epsilon, epsilon0),
        tau_limit=tau_bound(
            lipschitz,
            mu,
            sigma_sq,
            epsilon,
            average_conflict_degree=average_conflict_degree,
        ),
    )


__all__ = [
    "sgd_convergence_bound",
    "is_sgd_convergence_bound",
    "bound_improvement_ratio",
    "sgd_iteration_bound",
    "is_sgd_iteration_bound",
    "is_asgd_iteration_bound",
    "tau_bound",
    "BoundComparison",
    "compare_bounds",
]
