"""Per-sample Lipschitz constants and their summary statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.objectives.base import Objective
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_array_1d


def lipschitz_constants(objective: Objective, X: CSRMatrix, y: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-sample gradient Lipschitz constants ``L_i`` of ``objective`` on ``X``.

    Thin functional wrapper around ``objective.lipschitz_constants`` so the
    theory module can be used without holding an objective instance at every
    call site.
    """
    return objective.lipschitz_constants(X, y)


def average_lipschitz(lipschitz: np.ndarray) -> float:
    """The average constant ``L̄`` that the IS bound depends on."""
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    return float(L.mean())


def sup_lipschitz(lipschitz: np.ndarray) -> float:
    """The supremum constant ``sup L`` that the uniform-SGD bound depends on."""
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    return float(L.max())


def inf_lipschitz(lipschitz: np.ndarray, *, floor: float = 1e-12) -> float:
    """The infimum constant ``inf L`` appearing in Eq. 26 (floored away from zero)."""
    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    return float(max(L.min(), floor))


@dataclass
class LipschitzSummary:
    """Summary statistics of the Lipschitz spectrum of a dataset."""

    n: int
    mean: float
    sup: float
    inf: float
    std: float
    psi: float

    @property
    def sup_over_mean(self) -> float:
        """How much worse the uniform bound's constant is than the IS bound's."""
        return self.sup / self.mean if self.mean > 0 else float("inf")


def lipschitz_summary(lipschitz: np.ndarray) -> LipschitzSummary:
    """Compute all the Lipschitz statistics used across the theory module."""
    from repro.sparse.stats import psi

    L = check_array_1d(lipschitz, "lipschitz", min_len=1)
    return LipschitzSummary(
        n=int(L.size),
        mean=float(L.mean()),
        sup=float(L.max()),
        inf=float(max(L.min(), 1e-12)),
        std=float(L.std()),
        psi=psi(L),
    )


__all__ = [
    "lipschitz_constants",
    "average_lipschitz",
    "sup_lipschitz",
    "inf_lipschitz",
    "LipschitzSummary",
    "lipschitz_summary",
]
