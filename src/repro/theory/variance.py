"""Gradient-variance estimators under arbitrary sampling distributions.

The quantity importance sampling minimises is the variance of the
re-weighted stochastic gradient (Eq. 10):

    V[(n p_i)^{-1} ∇f_i(w)] = E || (n p_i)^{-1} ∇f_i(w) - ∇F(w) ||².

These estimators compute it exactly (full pass over the data) and are used
by the tests to verify that the Lipschitz-based distribution really lowers
the variance relative to uniform sampling — the mechanism behind every
convergence claim in the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.objectives.base import Objective
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_probability_vector


def _per_sample_gradients(objective: Objective, w: np.ndarray, X: CSRMatrix, y: np.ndarray) -> np.ndarray:
    """Dense matrix of per-sample gradients (rows) — small problems only."""
    grads = np.zeros((X.n_rows, X.n_cols), dtype=np.float64)
    for i in range(X.n_rows):
        idx, val = X.row(i)
        grads[i] = objective.sample_grad_dense(w, idx, val, float(y[i]))
    return grads


def gradient_variance(
    objective: Objective,
    w: np.ndarray,
    X: CSRMatrix,
    y: np.ndarray,
) -> float:
    """Variance of the *uniform* stochastic gradient (Eq. 4)."""
    grads = _per_sample_gradients(objective, w, X, y)
    mean = grads.mean(axis=0)
    diffs = grads - mean
    return float(np.mean(np.sum(diffs * diffs, axis=1)))


def importance_sampling_variance(
    objective: Objective,
    w: np.ndarray,
    X: CSRMatrix,
    y: np.ndarray,
    probabilities: np.ndarray,
) -> float:
    """Variance of the re-weighted gradient under sampling distribution ``p`` (Eq. 10).

    ``E_p || (n p_i)^{-1} g_i - ḡ ||² = (1/n²) Σ ||g_i||²/p_i - ||ḡ||²``
    where ``ḡ`` is the full gradient — computed in closed form rather than by
    sampling so tests get a deterministic value.
    """
    p = check_probability_vector(probabilities, "probabilities")
    grads = _per_sample_gradients(objective, w, X, y)
    if p.shape[0] != grads.shape[0]:
        raise ValueError("probabilities length must equal the number of samples")
    n = grads.shape[0]
    mean = grads.mean(axis=0)
    norms_sq = np.sum(grads * grads, axis=1)
    second_moment = float(np.sum(norms_sq / np.maximum(p, 1e-300))) / (n * n)
    return second_moment - float(np.dot(mean, mean))


def variance_reduction_ratio(
    objective: Objective,
    w: np.ndarray,
    X: CSRMatrix,
    y: np.ndarray,
    probabilities: np.ndarray,
) -> float:
    """Ratio (IS variance) / (uniform variance); < 1 means IS reduces variance."""
    uniform = gradient_variance(objective, w, X, y)
    if uniform <= 0.0:
        return 1.0
    weighted = importance_sampling_variance(objective, w, X, y, probabilities)
    return weighted / uniform


def optimal_variance(
    objective: Objective,
    w: np.ndarray,
    X: CSRMatrix,
    y: np.ndarray,
) -> float:
    """The minimum achievable variance, attained by ``p_i ∝ ||∇f_i(w)||`` (Eq. 11)."""
    grads = _per_sample_gradients(objective, w, X, y)
    norms = np.sqrt(np.sum(grads * grads, axis=1))
    total = norms.sum()
    if total <= 0.0:
        return 0.0
    p = norms / total
    mean = grads.mean(axis=0)
    n = grads.shape[0]
    second_moment = float(np.sum(np.where(p > 0, (norms**2) / np.maximum(p, 1e-300), 0.0))) / (n * n)
    return second_moment - float(np.dot(mean, mean))


__all__ = [
    "gradient_variance",
    "importance_sampling_variance",
    "variance_reduction_ratio",
    "optimal_variance",
]
