"""Convergence-theory utilities.

Implements the quantities used in Sections 2-3 of the paper: gradient
variance under arbitrary sampling distributions (Eq. 4/10), the IS and
uniform SGD convergence bounds (Eq. 13/14), the ψ ratio (Eq. 15), and the
IS-ASGD iteration-complexity bound with its delay condition (Eq. 26-27).
These functions are evaluated numerically on the surrogate datasets by the
theory benchmark to check that the *predicted* ordering of the algorithms
matches the measured one.
"""

from repro.theory.lipschitz import (
    average_lipschitz,
    lipschitz_constants,
    lipschitz_summary,
)
from repro.theory.variance import (
    gradient_variance,
    importance_sampling_variance,
    variance_reduction_ratio,
)
from repro.theory.bounds import (
    BoundComparison,
    compare_bounds,
    is_asgd_iteration_bound,
    is_sgd_convergence_bound,
    sgd_convergence_bound,
    tau_bound,
)

__all__ = [
    "lipschitz_constants",
    "average_lipschitz",
    "lipschitz_summary",
    "gradient_variance",
    "importance_sampling_variance",
    "variance_reduction_ratio",
    "sgd_convergence_bound",
    "is_sgd_convergence_bound",
    "is_asgd_iteration_bound",
    "tau_bound",
    "BoundComparison",
    "compare_bounds",
]
