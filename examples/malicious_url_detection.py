#!/usr/bin/env python3
"""Scenario: malicious-URL detection with a held-out test split.

The paper's URL dataset comes from an online malicious-URL detection task:
millions of URLs, each described by a handful of lexical/host features drawn
from a multi-million-dimensional space.  This example uses the URL surrogate
to show the workflow a practitioner would actually run:

* split the data into train/test,
* pick the step size from the paper's settings (λ = 0.05 for URL),
* train ASGD and IS-ASGD at a given concurrency,
* report held-out error, time-to-target-error and the IS diagnostics.

Run with::

    python examples/malicious_url_detection.py [--workers 16] [--target-error 0.1]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import ISASGDConfig, ISASGDSolver, LogisticObjective, Problem, load_dataset
from repro.async_engine.cost_model import CostModel
from repro.datasets.splits import train_test_split
from repro.experiments.report import format_table
from repro.metrics.speedup import time_to_target
from repro.solvers.asgd import ASGDSolver


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the full-scale URL surrogate")
    parser.add_argument("--workers", type=int, default=16)
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--step-size", type=float, default=0.05,
                        help="the paper uses 0.05 for the URL dataset")
    parser.add_argument("--target-error", type=float, default=None,
                        help="training error-rate target for the time-to-target comparison")
    parser.add_argument("--test-fraction", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset_name = "url" if args.full else "url_smoke"
    epochs = args.epochs or (18 if args.full else 12)

    dataset = load_dataset(dataset_name, seed=args.seed)
    X_train, y_train, X_test, y_test = train_test_split(
        dataset.X, dataset.y, test_fraction=args.test_fraction, seed=args.seed
    )
    print(f"{dataset_name}: {X_train.n_rows} train / {X_test.n_rows} test URLs, "
          f"{dataset.n_features} features")

    objective = LogisticObjective.l1_regularized(1e-4)
    problem = Problem(X=X_train, y=y_train, objective=objective, name=dataset_name)
    cost_model = CostModel()

    asgd = ASGDSolver(step_size=args.step_size, epochs=epochs, num_workers=args.workers,
                      seed=args.seed, cost_model=cost_model).fit(problem)
    is_asgd = ISASGDSolver(
        ISASGDConfig(step_size=args.step_size, epochs=epochs, num_workers=args.workers,
                     seed=args.seed),
        cost_model=cost_model,
    ).fit(problem)

    rows = []
    for name, result in (("asgd", asgd), ("is_asgd", is_asgd)):
        rows.append(
            {
                "solver": name,
                "train_error": result.best_error_rate,
                "test_error": objective.error_rate(result.weights, X_test, y_test),
                "test_rmse": objective.rmse(result.weights, X_test, y_test),
                "simulated_seconds": result.total_time,
            }
        )
    print(format_table(rows, title=f"Held-out evaluation ({args.workers} workers)"))

    target = args.target_error
    if target is None:
        # Default: the best training error ASGD ever reaches (the Figure-4 marker).
        target = asgd.best_error_rate
    t_asgd = time_to_target(asgd.curve, target)
    t_is = time_to_target(is_asgd.curve, target)
    print(f"\ntime to reach training error {target:.4f}:")
    print(f"  ASGD    : {t_asgd if t_asgd is not None else 'never'}")
    print(f"  IS-ASGD : {t_is if t_is is not None else 'never'}")
    if t_asgd and t_is:
        print(f"  speedup : {t_asgd / t_is:.2f}x")

    print("\nIS-ASGD diagnostics:")
    for key in ("balancing_decision", "rho", "psi", "local_vs_global_distortion",
                "conflict_rate"):
        print(f"  {key:>28}: {is_asgd.info[key]}")


if __name__ == "__main__":
    main()
