#!/usr/bin/env python3
"""Scenario: large-vocabulary text classification (the News20 motivation).

The paper's introduction motivates IS-ASGD with large-scale sparse
classification workloads: bag-of-words text classification is the canonical
example (News20 has 1.36M features, each document touching a few hundred).
This example compares SGD, ASGD, SVRG-ASGD and IS-ASGD on the News20
surrogate across several concurrency levels and prints both the iterative
(per-epoch) and absolute (simulated wall-clock) views — a miniature of the
paper's Figures 3a/4a.

Run with::

    python examples/text_classification.py [--full] [--threads 4 8 16]
"""

from __future__ import annotations

import argparse

from repro import LogisticObjective, Problem, load_dataset, make_solver
from repro.async_engine.cost_model import CostModel
from repro.experiments.report import format_table
from repro.metrics.speedup import optimum_speedup


def run_comparison(dataset_name: str, threads: list[int], epochs: int, step_size: float,
                   seed: int = 0) -> None:
    dataset = load_dataset(dataset_name, seed=seed)
    objective = LogisticObjective.l1_regularized(1e-4)
    problem = Problem(X=dataset.X, y=dataset.y, objective=objective, name=dataset_name)
    cost_model = CostModel()
    print(f"\n=== {dataset_name}: {dataset.n_samples} docs, {dataset.n_features} vocabulary terms, "
          f"density {dataset.X.density:.2e} ===")

    sgd = make_solver("sgd", step_size=step_size, epochs=epochs, seed=seed,
                      cost_model=cost_model).fit(problem)
    rows = [{"solver": "sgd", "threads": 1, **sgd.summary()}]
    curves = {("sgd", 1): sgd.curve}

    for t in threads:
        for solver_name in ("asgd", "is_asgd", "svrg_asgd"):
            solver = make_solver(solver_name, step_size=step_size if solver_name != "svrg_asgd"
                                 else step_size / 5, epochs=epochs, num_workers=t, seed=seed,
                                 cost_model=cost_model)
            result = solver.fit(problem)
            rows.append({"solver": solver_name, "threads": t, **result.summary()})
            curves[(solver_name, t)] = result.curve

    print(format_table(
        rows,
        columns=["solver", "threads", "final_rmse", "best_error_rate", "total_time",
                 "conflict_rate"],
        title="Per-solver summary (iterative quality and simulated wall-clock)",
    ))

    # The paper's Figure-4 style annotation: how quickly IS-ASGD reaches the
    # best error rate ASGD ever achieves, per thread count.
    annotation_rows = []
    for t in threads:
        point = optimum_speedup(curves[("is_asgd", t)], curves[("asgd", t)])
        annotation_rows.append(
            {
                "threads": t,
                "asgd_optimum_error": point.target,
                "asgd_time": point.time_slow,
                "is_asgd_time": point.time_fast,
                "speedup": point.speedup if point.speedup is not None else "n/a",
            }
        )
    print(format_table(annotation_rows,
                       title="IS-ASGD time to reach ASGD's optimum (Figure-4 markers)"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the full-scale News20 surrogate instead of the smoke variant")
    parser.add_argument("--threads", type=int, nargs="+", default=[4, 8, 16])
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = "news20" if args.full else "news20_smoke"
    epochs = args.epochs or (15 if args.full else 10)
    run_comparison(dataset, args.threads, epochs=epochs, step_size=0.5, seed=args.seed)


if __name__ == "__main__":
    main()
