#!/usr/bin/env python3
"""Quickstart: train IS-ASGD on a synthetic sparse classification problem.

This is the 60-second tour of the public API:

1. load (or generate) a dataset,
2. wrap it in a :class:`repro.Problem` with an objective,
3. fit the :class:`repro.ISASGDSolver`,
4. inspect the convergence curve and the algorithm diagnostics.

Run with::

    python examples/quickstart.py [--dataset news20_smoke] [--workers 8] [--epochs 10]
"""

from __future__ import annotations

import argparse

from repro import (
    ISASGDConfig,
    ISASGDSolver,
    LogisticObjective,
    Problem,
    SGDSolver,
    load_dataset,
)
from repro.experiments.report import format_table, render_curve_rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="news20_smoke",
                        help="catalog name or path to a LibSVM file")
    parser.add_argument("--workers", type=int, default=8, help="simulated lock-free workers")
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--step-size", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # 1. Data: a scaled-down surrogate of the paper's News20 dataset by default.
    dataset = load_dataset(args.dataset, seed=args.seed)
    print(f"dataset {dataset.name}: {dataset.n_samples} samples x {dataset.n_features} features, "
          f"{dataset.X.nnz} non-zeros (density {dataset.X.density:.2e})")

    # 2. Problem: the paper's L1-regularised cross-entropy objective.
    objective = LogisticObjective.l1_regularized(1e-4)
    problem = Problem(X=dataset.X, y=dataset.y, objective=objective, name=dataset.name)

    # 3. Solvers: IS-ASGD (the paper's contribution) and serial SGD for reference.
    config = ISASGDConfig(
        step_size=args.step_size,
        epochs=args.epochs,
        num_workers=args.workers,
        seed=args.seed,
    )
    is_asgd = ISASGDSolver(config).fit(problem)
    sgd = SGDSolver(step_size=args.step_size, epochs=args.epochs, seed=args.seed).fit(problem)

    # 4. Results.
    print("\nIS-ASGD diagnostics:")
    for key in ("balancing_decision", "rho", "psi", "conflict_rate", "mass_imbalance_after"):
        print(f"  {key:>24}: {is_asgd.info[key]}")

    print("\nPer-epoch convergence (IS-ASGD):")
    print(format_table(render_curve_rows(is_asgd.curve, label="is_asgd"),
                       columns=["epoch", "iterations", "wall_clock", "rmse", "error_rate"]))

    rows = [
        {"solver": "is_asgd", "workers": args.workers, **is_asgd.summary()},
        {"solver": "sgd", "workers": 1, **sgd.summary()},
    ]
    print("\nSummary (simulated wall-clock seconds):")
    print(format_table(rows, columns=["solver", "workers", "final_rmse", "best_error_rate",
                                      "total_time"]))
    speedup = sgd.total_time / is_asgd.total_time if is_asgd.total_time else float("nan")
    print(f"\nraw computational speedup of IS-ASGD over serial SGD: {speedup:.2f}x")


if __name__ == "__main__":
    main()
