#!/usr/bin/env python3
"""Reproduce every figure and table of the paper's evaluation in one run.

This drives the same experiment harness the benchmarks use and writes the
rendered outputs (Table 1, Figure 3/4/5 series, headline speedups) to a
results directory.  By default the smoke-scale surrogates and reduced thread
counts are used so the full sweep finishes in minutes; pass ``--full`` for
the full-scale surrogates and the paper's thread counts {16, 32, 44}.

Every training run is persisted in a content-addressed artifact store
(``--store``, defaulting to ``<out>/artifacts``), so a second invocation is
*read-only*: completed runs are loaded from disk and only the rendering is
redone.  ``--expect-cached`` asserts that property (the docs CI job runs
the script twice with it).

Run with::

    python examples/reproduce_figures.py [--full] [--out results/] [--jobs N]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.async_engine.cost_model import CostModel
from repro.experiments.configs import PAPER_THREAD_COUNTS, figure_config
from repro.experiments.figures import figure4_data, figure5_data, headline_numbers
from repro.experiments.report import (
    format_table,
    render_figure_summary,
    render_speedup_slices,
    rows_to_csv,
    write_report_files,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import ArtifactStore
from repro.experiments.tables import table1_rows
from repro.utils.logging import enable_console_logging


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="full-scale surrogates and the paper's thread counts (much slower)")
    parser.add_argument("--threads", type=int, nargs="+", default=None)
    parser.add_argument("--datasets", nargs="+", default=None,
                        help="restrict the sweep to these datasets")
    parser.add_argument("--epochs", type=int, default=None,
                        help="override the per-dataset epoch count")
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--store", default=None,
                        help="artifact-store directory (default: <out>/artifacts)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel training runs (0 = one per usable core)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--calibrate-cost-model", action="store_true",
                        help="measure per-op costs on this machine instead of using defaults")
    parser.add_argument("--expect-cached", action="store_true",
                        help="fail if anything had to be trained (second-run read-only check)")
    parser.add_argument("--fresh", action="store_true",
                        help="clear the artifact store first (force a cold sweep)")
    args = parser.parse_args()

    enable_console_logging()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    store = ArtifactStore(args.store if args.store else out / "artifacts")
    if args.fresh and store.root.is_dir():
        import shutil

        shutil.rmtree(store.root)

    threads = tuple(args.threads) if args.threads else (
        PAPER_THREAD_COUNTS if args.full else (4, 8, 16)
    )
    cost_model = CostModel.calibrated() if args.calibrate_cost_model else CostModel()

    # ---------------------------------------------------------------- Table 1
    smoke = not args.full
    if args.datasets is not None:
        names = [f"{n}_smoke" if smoke and not n.endswith("_smoke") else n
                 for n in args.datasets]
    elif smoke:
        names = [f"{n}_smoke" for n in ("news20", "url", "kdd_algebra", "kdd_bridge")]
    else:
        names = None
    table1 = table1_rows(names, seed=args.seed)
    (out / "table1.txt").write_text(format_table(table1, title="Table 1") + "\n")
    (out / "table1.csv").write_text(rows_to_csv(table1))
    print(f"Table 1 written to {out / 'table1.txt'}")

    # ------------------------------------------------------------ Figures 3-5
    config = figure_config(
        smoke=smoke, datasets=args.datasets, thread_counts=threads,
        epochs_override=args.epochs, seed=args.seed,
    )
    print(f"sweep of {len(config.runs)} training runs "
          f"({'full' if args.full else 'smoke'} scale, threads={threads}, "
          f"store={store.root}) ...")
    runner = ExperimentRunner(config, cost_model=cost_model, store=store)
    runner.run(jobs=args.jobs)
    stats = runner.stats
    print(f"{stats.trained} trained, {stats.reused} reused from the artifact store")
    if args.expect_cached and stats.trained:
        raise SystemExit(
            f"--expect-cached: {stats.trained} runs had to be trained "
            f"(store {store.root} was expected to hold the full sweep)"
        )

    panels4 = figure4_data(runner)
    slices = figure5_data(runner)
    headline = headline_numbers(runner, panels4=panels4, slices=slices)
    written = write_report_files(runner, out, panels4=panels4, slices=slices, headline=headline)

    print(render_figure_summary(panels4))
    print(render_speedup_slices(slices))
    print(json.dumps(headline, indent=2, default=float))
    print(f"\nAll outputs written under {out.resolve()} "
          f"({', '.join(p.name for p in written)})")


if __name__ == "__main__":
    main()
