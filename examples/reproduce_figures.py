#!/usr/bin/env python3
"""Reproduce every figure and table of the paper's evaluation in one run.

This drives the same experiment harness the benchmarks use and writes the
rendered outputs (Table 1, Figure 3/4/5 series, headline speedups) to a
results directory.  By default the smoke-scale surrogates and reduced thread
counts are used so the full sweep finishes in minutes; pass ``--full`` for
the full-scale surrogates and the paper's thread counts {16, 32, 44}.

Run with::

    python examples/reproduce_figures.py [--full] [--out results/]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.async_engine.cost_model import CostModel
from repro.experiments.configs import PAPER_THREAD_COUNTS, figure_config
from repro.experiments.figures import figure3_data, figure4_data, figure5_data, headline_numbers
from repro.experiments.report import (
    format_table,
    render_curve_rows,
    render_figure_summary,
    render_speedup_slices,
    rows_to_csv,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import table1_rows
from repro.utils.logging import enable_console_logging


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="full-scale surrogates and the paper's thread counts (much slower)")
    parser.add_argument("--threads", type=int, nargs="+", default=None)
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--calibrate-cost-model", action="store_true",
                        help="measure per-op costs on this machine instead of using defaults")
    args = parser.parse_args()

    enable_console_logging()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    threads = tuple(args.threads) if args.threads else (
        PAPER_THREAD_COUNTS if args.full else (4, 8, 16)
    )
    cost_model = CostModel.calibrated() if args.calibrate_cost_model else CostModel()

    # ---------------------------------------------------------------- Table 1
    smoke = not args.full
    names = [f"{n}_smoke" for n in ("news20", "url", "kdd_algebra", "kdd_bridge")] if smoke else None
    table1 = table1_rows(names, seed=args.seed)
    (out / "table1.txt").write_text(format_table(table1, title="Table 1") + "\n")
    (out / "table1.csv").write_text(rows_to_csv(table1))
    print(f"Table 1 written to {out / 'table1.txt'}")

    # ------------------------------------------------------------ Figures 3-5
    config = figure_config(smoke=smoke, thread_counts=threads, seed=args.seed)
    print(f"running {len(config.runs)} training runs "
          f"({'full' if args.full else 'smoke'} scale, threads={threads}) ...")
    runner = ExperimentRunner(config, cost_model=cost_model)
    runner.run()

    panels3 = figure3_data(runner)
    (out / "figure3.txt").write_text(render_figure_summary(panels3) + "\n")
    curve_rows = []
    for panel in panels3:
        for solver, curve in panel.curves.items():
            for row in render_curve_rows(curve, label=f"{panel.dataset}/{solver}/T{panel.num_workers}"):
                curve_rows.append(row)
    (out / "figure3_curves.csv").write_text(rows_to_csv(curve_rows))

    panels4 = figure4_data(runner)
    (out / "figure4.txt").write_text(render_figure_summary(panels4) + "\n")

    slices = figure5_data(runner)
    (out / "figure5.txt").write_text(render_speedup_slices(slices) + "\n")

    headline = headline_numbers(runner)
    (out / "headline.json").write_text(json.dumps(headline, indent=2, default=float))

    print(render_figure_summary(panels4))
    print(render_speedup_slices(slices))
    print(json.dumps(headline, indent=2, default=float))
    print(f"\nAll outputs written under {out.resolve()}")


if __name__ == "__main__":
    main()
