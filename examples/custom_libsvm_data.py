#!/usr/bin/env python3
"""Train IS-ASGD on your own LibSVM-format data.

The paper's evaluation datasets are distributed in the LibSVM text format
(``label index:value index:value ...``); this example shows the exact code
path for running the solvers on a real file.  When no file is supplied it
writes a small demonstration file first so the example is runnable offline.

Run with::

    python examples/custom_libsvm_data.py [path/to/data.libsvm] [--workers 8]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import ISASGDConfig, ISASGDSolver, Problem, load_dataset, make_objective
from repro.datasets.synthetic import SyntheticSpec, make_sparse_classification
from repro.experiments.report import format_table
from repro.sparse.io import save_libsvm


def _write_demo_file(path: Path, seed: int = 0) -> Path:
    """Create a small LibSVM file so the example runs without external data."""
    spec = SyntheticSpec(n_samples=500, n_features=2000, nnz_per_sample=12.0,
                         norm_spread=0.5, label_noise=0.05, name="demo")
    X, y, _ = make_sparse_classification(spec, seed=seed)
    save_libsvm(X, y, path)
    return path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("data", nargs="?", default=None, help="path to a LibSVM file")
    parser.add_argument("--objective", default="logistic_l1",
                        help="objective name (see repro.objectives.available_objectives)")
    parser.add_argument("--regularization", type=float, default=1e-4)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--step-size", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.data is None:
        tmp = Path(tempfile.mkdtemp()) / "demo.libsvm"
        data_path = _write_demo_file(tmp, seed=args.seed)
        print(f"no file supplied; wrote a demo LibSVM file to {data_path}")
    else:
        data_path = Path(args.data)

    dataset = load_dataset(str(data_path))
    print(f"loaded {dataset.n_samples} samples x {dataset.n_features} features "
          f"({dataset.X.nnz} non-zeros)")

    objective = make_objective(args.objective, eta=args.regularization)
    problem = Problem(X=dataset.X, y=dataset.y, objective=objective, name=dataset.name)

    solver = ISASGDSolver(
        ISASGDConfig(step_size=args.step_size, epochs=args.epochs,
                     num_workers=args.workers, seed=args.seed)
    )
    result = solver.fit(problem)

    print(format_table(
        [{"epoch": e, "rmse": r, "error_rate": er, "wall_clock": t}
         for e, r, er, t in zip(result.curve.epochs, result.curve.rmse,
                                result.curve.error_rate, result.curve.wall_clock)],
        title=f"IS-ASGD on {dataset.name} ({args.workers} workers)",
    ))
    print("\nfinal model: best error rate "
          f"{result.best_error_rate:.4f}, final RMSE {result.final_rmse:.4f}")
    print("balancing decision:", result.info["balancing_decision"],
          "| psi:", round(result.info["psi"], 4), "| rho:", round(result.info["rho"], 6))


if __name__ == "__main__":
    main()
