#!/usr/bin/env python3
"""Regenerate Table 1 and the theory diagnostics for every surrogate dataset.

For each dataset this prints the Table-1 statistics (dimension, instances,
gradient sparsity, ψ, ρ) of the surrogate next to the values the paper
reports for the real dataset, plus the conflict-graph average degree Δ̄ and
the convergence-bound comparison of Eq. 13/14 — i.e. everything the paper
uses to *predict* where IS-ASGD should help most, before running a single
training iteration.

Run with::

    python examples/dataset_statistics.py [--full] [--conflict-degree]
"""

from __future__ import annotations

import argparse

from repro.datasets.catalog import list_datasets
from repro.datasets.loader import load_dataset
from repro.experiments.report import format_table
from repro.experiments.tables import table1_rows
from repro.graph.conflict import conflict_graph_stats
from repro.objectives.registry import make_objective
from repro.theory.bounds import compare_bounds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the full-scale surrogates (slower)")
    parser.add_argument("--conflict-degree", action="store_true",
                        help="also estimate the conflict-graph average degree")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    names = list_datasets() if args.full else [f"{n}_smoke" for n in list_datasets()]

    rows = table1_rows(names, seed=args.seed, include_conflict_degree=args.conflict_degree)
    columns = ["Name", "Dimension", "Instances", "GradSparsity", "psi", "rho",
               "paper_dimension", "paper_instances", "paper_grad_sparsity", "paper_psi",
               "paper_rho", "Source"]
    if args.conflict_degree:
        columns.insert(6, "avg_conflict_degree")
    print(format_table(rows, columns=columns, title="Table 1: surrogate vs paper statistics"))

    # Theory: predicted IS improvement and admissible delay per dataset.
    objective = make_objective("logistic_l1", eta=1e-4)
    bound_rows = []
    for name in names:
        ds = load_dataset(name, seed=args.seed)
        L = objective.lipschitz_constants(ds.X, ds.y)
        degree = conflict_graph_stats(ds.X, exact_threshold=0, sample_size=150,
                                      seed=args.seed).average_degree
        cmp = compare_bounds(L, average_conflict_degree=max(degree, 1e-9))
        bound_rows.append(
            {
                "dataset": name,
                "psi": cmp.psi,
                "bound_ratio_is_vs_uniform": cmp.bound_ratio,
                "tau_limit (Eq. 27)": cmp.tau_limit,
                "avg_conflict_degree": degree,
            }
        )
    print()
    print(format_table(bound_rows,
                       title="Predicted IS improvement (Eq. 13/14) and delay limit (Eq. 27)"))
    print("\nInterpretation: smaller psi / bound ratio means a larger predicted IS-ASGD "
          "gain; a larger tau limit means the dataset tolerates more asynchrony.")


if __name__ == "__main__":
    main()
