"""Tests for the importance-sampling distributions (Eq. 7-12)."""

import numpy as np
import pytest

from repro.core.importance import (
    ImportanceScheme,
    effective_sample_size,
    importance_weights,
    lipschitz_probabilities,
    optimal_probabilities,
    stepsize_reweighting,
    uniform_probabilities,
    variance_reduction_factor,
)
from repro.objectives.logistic import LogisticObjective


class TestUniform:
    def test_sums_to_one(self):
        p = uniform_probabilities(7)
        assert p.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(p, 1.0 / 7)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            uniform_probabilities(0)


class TestLipschitzProbabilities:
    def test_eq12_formula(self):
        L = np.array([1.0, 2.0, 3.0, 4.0])
        p = lipschitz_probabilities(L)
        np.testing.assert_allclose(p, L / 10.0)

    def test_sums_to_one(self, heavy_tail_lipschitz):
        assert lipschitz_probabilities(heavy_tail_lipschitz).sum() == pytest.approx(1.0)

    def test_zero_constants_get_floor(self):
        p = lipschitz_probabilities(np.array([0.0, 1.0]))
        assert p[0] > 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            importance_weights(np.array([-1.0, 1.0]))

    def test_figure2_example(self):
        # The paper's Figure 2 example: L = {1,2,3,4} -> p = {0.1,0.2,0.3,0.4}.
        p = lipschitz_probabilities(np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_allclose(p, [0.1, 0.2, 0.3, 0.4])


class TestReweighting:
    def test_unbiasedness_identity(self):
        """E_p[ (n p_i)^{-1} g_i ] must equal the uniform mean of g_i."""
        rng = np.random.default_rng(0)
        g = rng.normal(size=(6, 3))
        L = rng.uniform(0.5, 4.0, size=6)
        p = lipschitz_probabilities(L)
        weights = stepsize_reweighting(p)
        weighted_mean = (p[:, None] * weights[:, None] * g).sum(axis=0)
        np.testing.assert_allclose(weighted_mean, g.mean(axis=0))

    def test_uniform_probabilities_give_unit_weights(self):
        p = uniform_probabilities(5)
        np.testing.assert_allclose(stepsize_reweighting(p), 1.0)

    def test_rejects_non_probability(self):
        with pytest.raises(ValueError):
            stepsize_reweighting(np.array([0.2, 0.2]))


class TestOptimalProbabilities:
    def test_proportional_to_gradient_norms(self, small_dataset):
        X, y, _ = small_dataset
        obj = LogisticObjective()
        w = np.zeros(X.n_cols)
        p = optimal_probabilities(w, X, y, obj)
        assert p.sum() == pytest.approx(1.0)
        norms = np.array(
            [obj.sample_grad(w, *X.row(i), float(y[i])).norm() for i in range(X.n_rows)]
        )
        np.testing.assert_allclose(p, np.maximum(norms, 1e-12) / np.maximum(norms, 1e-12).sum())


class TestDiagnostics:
    def test_effective_sample_size_uniform(self):
        assert effective_sample_size(uniform_probabilities(10)) == pytest.approx(10.0)

    def test_effective_sample_size_degenerate(self):
        p = np.array([1.0, 0.0, 0.0])
        assert effective_sample_size(p) == pytest.approx(1.0)

    def test_variance_reduction_factor_bounds(self, heavy_tail_lipschitz):
        factor = variance_reduction_factor(heavy_tail_lipschitz)
        assert 0.0 < factor <= 1.0

    def test_variance_reduction_factor_is_sqrt_psi(self):
        from repro.sparse.stats import psi

        L = np.array([1.0, 5.0, 2.0])
        assert variance_reduction_factor(L) == pytest.approx(np.sqrt(psi(L)))

    def test_importance_scheme_enum(self):
        assert ImportanceScheme("lipschitz") is ImportanceScheme.LIPSCHITZ
        assert ImportanceScheme("uniform") is ImportanceScheme.UNIFORM
