"""Tests for importance balancing (Algorithm 3) and the adaptive rule."""

import numpy as np
import pytest

from repro.core.balancing import (
    BalancingDecision,
    balance_dataset,
    decide_balancing,
    head_tail_order,
    imbalance_ratio,
    importance_mass,
    random_order,
    snake_order,
)


class TestImportanceMass:
    def test_per_shard_sums(self):
        L = np.array([1.0, 2.0, 3.0, 4.0])
        masses = importance_mass(L, np.array([0, 2, 4]))
        np.testing.assert_allclose(masses, [3.0, 7.0])

    def test_single_shard(self):
        L = np.array([1.0, 2.0])
        np.testing.assert_allclose(importance_mass(L, np.array([0, 2])), [3.0])

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            importance_mass(np.ones(4), np.array([0, 5]))
        with pytest.raises(ValueError):
            importance_mass(np.ones(4), np.array([1, 4]))


class TestImbalanceRatio:
    def test_perfect_balance_is_one(self):
        L = np.array([2.0, 2.0, 2.0, 2.0])
        assert imbalance_ratio(L, np.array([0, 2, 4])) == pytest.approx(1.0)

    def test_figure2_imbalance(self):
        # Figure 2: sorted order {1,2 | 3,4} gives masses 3 and 7.
        L = np.array([1.0, 2.0, 3.0, 4.0])
        assert imbalance_ratio(L, np.array([0, 2, 4])) == pytest.approx(7.0 / 3.0)

    def test_zero_mass_shard_gives_inf(self):
        L = np.array([0.0, 0.0, 1.0, 1.0])
        assert imbalance_ratio(L, np.array([0, 2, 4])) == np.inf


class TestHeadTailOrder:
    def test_is_a_permutation(self, heavy_tail_lipschitz):
        order = head_tail_order(heavy_tail_lipschitz)
        assert sorted(order.tolist()) == list(range(heavy_tail_lipschitz.size))

    def test_figure2_example(self):
        # The paper's Figure 2 balanced layout: {x1, x4 | x3, x2}.
        L = np.array([1.0, 2.0, 3.0, 4.0])
        order = head_tail_order(L)
        np.testing.assert_array_equal(order, [0, 3, 1, 2])
        # After re-ordering, the two halves have equal mass.
        assert imbalance_ratio(L[order], np.array([0, 2, 4])) == pytest.approx(1.0)

    def test_odd_length(self):
        L = np.array([5.0, 1.0, 3.0])
        order = head_tail_order(L)
        assert sorted(order.tolist()) == [0, 1, 2]

    def test_balancing_reduces_imbalance_on_sorted_input(self):
        # Worst case for contiguous sharding: L already sorted ascending.
        L = np.linspace(1.0, 100.0, 64)
        bounds = np.linspace(0, 64, 9).astype(np.int64)
        before = imbalance_ratio(L, bounds)
        after = imbalance_ratio(L[head_tail_order(L)], bounds)
        assert after < before
        assert after == pytest.approx(1.0, rel=0.05)

    def test_moderate_spread_balancing_beats_random(self, rng):
        """For a bounded (uniform) spread — the regime Algorithm 3 targets —
        head–tail pairing beats random shuffling."""
        L = rng.uniform(0.5, 5.0, size=200)
        bounds = np.linspace(0, L.size, 9).astype(np.int64)
        rng_imbalances = [
            imbalance_ratio(L[random_order(L.size, seed=s)], bounds) for s in range(5)
        ]
        balanced = imbalance_ratio(L[head_tail_order(L)], bounds)
        assert balanced <= min(rng_imbalances)


class TestSnakeOrder:
    def test_is_a_permutation(self, heavy_tail_lipschitz):
        order = snake_order(heavy_tail_lipschitz, 8)
        assert sorted(order.tolist()) == list(range(heavy_tail_lipschitz.size))

    def test_beats_head_tail_and_random_on_heavy_tail(self, heavy_tail_lipschitz):
        """The serpentine extension handles the heavy-tailed regime where the
        paper's pairing heuristic struggles."""
        L = heavy_tail_lipschitz
        bounds = np.linspace(0, L.size, 9).astype(np.int64)
        snake = imbalance_ratio(L[snake_order(L, 8)], bounds)
        head_tail = imbalance_ratio(L[head_tail_order(L)], bounds)
        random_best = min(
            imbalance_ratio(L[random_order(L.size, seed=s)], bounds) for s in range(5)
        )
        assert snake <= head_tail
        assert snake <= random_best
        assert snake < 1.5

    def test_handles_uneven_division(self):
        L = np.arange(1.0, 11.0)  # 10 samples over 3 workers
        order = snake_order(L, 3)
        assert sorted(order.tolist()) == list(range(10))

    def test_single_worker(self, heavy_tail_lipschitz):
        order = snake_order(heavy_tail_lipschitz, 1)
        assert sorted(order.tolist()) == list(range(heavy_tail_lipschitz.size))

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            snake_order(np.ones(4), 0)

    def test_balance_dataset_snake_method(self, heavy_tail_lipschitz):
        result = balance_dataset(
            heavy_tail_lipschitz, num_workers=8, seed=0,
            force=BalancingDecision.BALANCE, method="snake",
        )
        assert result.imbalance_after < 1.5

    def test_balance_dataset_unknown_method(self, heavy_tail_lipschitz):
        with pytest.raises(ValueError):
            balance_dataset(heavy_tail_lipschitz, num_workers=4,
                            force=BalancingDecision.BALANCE, method="magic")


class TestDecideBalancing:
    def test_high_variance_triggers_balance(self):
        L = np.array([1.0, 100.0, 1.0, 100.0])
        decision, value = decide_balancing(L, zeta=5e-4)
        assert decision is BalancingDecision.BALANCE
        assert value > 5e-4

    def test_constant_constants_trigger_shuffle(self):
        L = np.full(10, 3.0)
        decision, value = decide_balancing(L, zeta=5e-4)
        assert decision is BalancingDecision.SHUFFLE
        assert value == pytest.approx(0.0)

    def test_raw_rho_option(self):
        L = np.full(10, 3.0)
        decision, value = decide_balancing(L, zeta=5e-4, use_normalized_rho=False)
        assert decision is BalancingDecision.SHUFFLE


class TestBalanceDataset:
    def test_returns_permutation(self, heavy_tail_lipschitz):
        result = balance_dataset(heavy_tail_lipschitz, num_workers=8, seed=0)
        assert sorted(result.order.tolist()) == list(range(heavy_tail_lipschitz.size))

    def test_balance_branch_improves_imbalance_moderate_spread(self, rng):
        # Algorithm 3's guarantee regime: a bounded Lipschitz spread.
        L = rng.uniform(0.5, 5.0, size=160)
        result = balance_dataset(L, num_workers=8, seed=0, force=BalancingDecision.BALANCE)
        assert result.imbalance_after <= result.imbalance_before + 1e-9
        assert result.decision is BalancingDecision.BALANCE

    def test_balance_branch_snake_improves_imbalance_heavy_tail(self, heavy_tail_lipschitz):
        result = balance_dataset(
            heavy_tail_lipschitz, num_workers=8, seed=0,
            force=BalancingDecision.BALANCE, method="snake",
        )
        assert result.imbalance_after <= result.imbalance_before + 1e-9
        assert result.imbalance_after < 1.5

    def test_forced_shuffle(self, heavy_tail_lipschitz):
        result = balance_dataset(
            heavy_tail_lipschitz, num_workers=4, seed=0, force=BalancingDecision.SHUFFLE
        )
        assert result.decision is BalancingDecision.SHUFFLE

    def test_more_workers_than_samples(self):
        L = np.array([1.0, 2.0, 3.0])
        result = balance_dataset(L, num_workers=10, seed=0)
        assert sorted(result.order.tolist()) == [0, 1, 2]

    def test_invalid_workers(self, heavy_tail_lipschitz):
        with pytest.raises(ValueError):
            balance_dataset(heavy_tail_lipschitz, num_workers=0)

    def test_reproducible_shuffle(self, heavy_tail_lipschitz):
        a = balance_dataset(heavy_tail_lipschitz, num_workers=4, seed=11,
                            force=BalancingDecision.SHUFFLE)
        b = balance_dataset(heavy_tail_lipschitz, num_workers=4, seed=11,
                            force=BalancingDecision.SHUFFLE)
        np.testing.assert_array_equal(a.order, b.order)
