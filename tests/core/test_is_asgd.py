"""Tests for the IS-ASGD solver (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.balancing import BalancingDecision
from repro.core.config import ISASGDConfig
from repro.core.importance import ImportanceScheme
from repro.core.is_asgd import ISASGDSolver
from repro.solvers.sgd import SGDSolver
from repro.utils.rng import as_rng


@pytest.fixture(scope="module")
def fitted(small_problem):
    solver = ISASGDSolver(ISASGDConfig(step_size=0.3, epochs=5, num_workers=4, seed=0))
    return solver.fit(small_problem)


class TestBasicBehaviour:
    def test_result_fields(self, fitted, small_problem):
        assert fitted.solver == "is_asgd"
        assert fitted.weights.shape == (small_problem.n_features,)
        assert len(fitted.curve) == 5
        assert fitted.trace is not None and fitted.trace.total_iterations > 0

    def test_loss_decreases(self, fitted):
        assert fitted.curve.rmse[-1] < fitted.curve.rmse[0]

    def test_error_rate_better_than_chance(self, fitted):
        assert fitted.best_error_rate < 0.4

    def test_info_contains_algorithm_diagnostics(self, fitted):
        info = fitted.info
        assert info["balancing_decision"] in {"balance", "shuffle"}
        assert 0.0 < info["psi"] <= 1.0
        assert info["rho"] >= 0.0
        assert info["importance_scheme"] == "lipschitz"
        assert info["num_workers"] == 4

    def test_wall_clock_monotone(self, fitted):
        times = np.asarray(fitted.curve.wall_clock)
        assert np.all(np.diff(times) > 0)

    def test_reproducibility(self, small_problem):
        cfg = ISASGDConfig(step_size=0.3, epochs=3, num_workers=4, seed=42)
        r1 = ISASGDSolver(cfg).fit(small_problem)
        r2 = ISASGDSolver(cfg).fit(small_problem)
        np.testing.assert_allclose(r1.weights, r2.weights)
        assert r1.curve.rmse == r2.curve.rmse


class TestConfigurationKnobs:
    def test_uniform_importance_degenerates_to_asgd_style(self, small_problem):
        cfg = ISASGDConfig(
            step_size=0.3, epochs=3, num_workers=4, seed=0, importance=ImportanceScheme.UNIFORM
        )
        result = ISASGDSolver(cfg).fit(small_problem)
        assert result.info["importance_scheme"] == "uniform"
        assert result.curve.rmse[-1] < result.curve.rmse[0]

    def test_forced_balancing_recorded(self, small_problem):
        cfg = ISASGDConfig(step_size=0.3, epochs=2, num_workers=4, seed=0,
                           force_balancing=BalancingDecision.SHUFFLE)
        result = ISASGDSolver(cfg).fit(small_problem)
        assert result.info["balancing_decision"] == "shuffle"

    def test_config_overrides_via_kwargs(self, small_problem):
        solver = ISASGDSolver(step_size=0.2, epochs=2, num_workers=3, seed=1)
        assert solver.config.num_workers == 3
        result = solver.fit(small_problem)
        assert len(result.curve) == 2

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            ISASGDSolver(ISASGDConfig(), backend="mpi")

    def test_prepare_partition_masses(self, small_problem):
        solver = ISASGDSolver(ISASGDConfig(num_workers=4, seed=0,
                                           force_balancing=BalancingDecision.BALANCE,
                                           balancing_method="snake"))
        partition, balancing = solver.prepare_partition(small_problem, as_rng(0))
        assert partition.num_workers == 4
        assert balancing.decision is BalancingDecision.BALANCE
        assert partition.mass_imbalance() < 1.5

    def test_balancing_method_recorded_and_validated(self, small_problem):
        result = ISASGDSolver(
            ISASGDConfig(step_size=0.3, epochs=2, num_workers=4, seed=0,
                         balancing_method="snake")
        ).fit(small_problem)
        assert result.info["balancing_method"] == "snake"
        with pytest.raises(ValueError):
            ISASGDConfig(balancing_method="magic")


class TestAgainstBaselines:
    def test_is_asgd_not_much_worse_than_serial_sgd(self, small_problem):
        """Iterative quality should be in the same ballpark as serial SGD."""
        sgd = SGDSolver(step_size=0.3, epochs=5, seed=0).fit(small_problem)
        cfg = ISASGDConfig(step_size=0.3, epochs=5, num_workers=4, seed=0)
        is_asgd = ISASGDSolver(cfg).fit(small_problem)
        assert is_asgd.curve.rmse[-1] <= sgd.curve.rmse[-1] * 1.25

    def test_threads_backend_converges(self, small_problem):
        cfg = ISASGDConfig(step_size=0.3, epochs=3, num_workers=2, seed=0)
        result = ISASGDSolver(cfg, backend="threads").fit(small_problem)
        assert result.info["backend"] == "threads"
        assert result.curve.rmse[-1] < result.curve.rmse[0]
