"""Tests for ISASGDConfig."""

import pytest

from repro.core.balancing import BalancingDecision
from repro.core.config import ISASGDConfig
from repro.core.importance import ImportanceScheme


class TestISASGDConfig:
    def test_defaults_valid(self):
        cfg = ISASGDConfig()
        assert cfg.step_size > 0
        assert cfg.importance is ImportanceScheme.LIPSCHITZ

    def test_string_importance_coerced(self):
        cfg = ISASGDConfig(importance="uniform")
        assert cfg.importance is ImportanceScheme.UNIFORM

    def test_effective_max_delay_defaults_to_workers(self):
        cfg = ISASGDConfig(num_workers=12)
        assert cfg.effective_max_delay == 12

    def test_effective_max_delay_override(self):
        cfg = ISASGDConfig(num_workers=12, max_delay=3)
        assert cfg.effective_max_delay == 3

    def test_with_updates_returns_copy(self):
        cfg = ISASGDConfig(num_workers=4)
        cfg2 = cfg.with_updates(num_workers=8)
        assert cfg.num_workers == 4 and cfg2.num_workers == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"step_size": 0.0},
            {"epochs": 0},
            {"num_workers": 0},
            {"zeta": 0.0},
            {"step_clip": 0.0},
            {"record_every": 0},
            {"max_delay": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ISASGDConfig(**kwargs)

    def test_force_balancing_accepts_enum(self):
        cfg = ISASGDConfig(force_balancing=BalancingDecision.SHUFFLE)
        assert cfg.force_balancing is BalancingDecision.SHUFFLE
