"""Tests for the weighted samplers and sample sequences."""

import numpy as np
import pytest

from repro.core.sampler import AliasSampler, InverseCDFSampler, SampleSequence, make_sampler


@pytest.fixture()
def skewed_probs():
    p = np.array([0.05, 0.1, 0.15, 0.3, 0.4])
    return p / p.sum()


class TestAliasSampler:
    def test_draw_in_range(self, skewed_probs):
        s = AliasSampler(skewed_probs, seed=0)
        for _ in range(100):
            assert 0 <= s.draw() < skewed_probs.size

    def test_empirical_distribution_converges(self, skewed_probs):
        s = AliasSampler(skewed_probs, seed=0)
        draws = s.sample(60_000)
        freqs = np.bincount(draws, minlength=5) / draws.size
        np.testing.assert_allclose(freqs, skewed_probs, atol=0.01)

    def test_reproducible_with_seed(self, skewed_probs):
        a = AliasSampler(skewed_probs, seed=3).sample(50)
        b = AliasSampler(skewed_probs, seed=3).sample(50)
        np.testing.assert_array_equal(a, b)

    def test_uniform_case(self):
        p = np.full(4, 0.25)
        s = AliasSampler(p, seed=0)
        draws = s.sample(40_000)
        freqs = np.bincount(draws, minlength=4) / draws.size
        np.testing.assert_allclose(freqs, 0.25, atol=0.01)

    def test_single_item(self):
        s = AliasSampler(np.array([1.0]), seed=0)
        assert s.draw() == 0

    def test_degenerate_distribution(self):
        p = np.array([0.0, 1.0, 0.0])
        s = AliasSampler(p, seed=0)
        assert set(s.sample(200).tolist()) == {1}

    def test_invalid_size(self, skewed_probs):
        with pytest.raises(ValueError):
            AliasSampler(skewed_probs).sample(-1)

    @pytest.mark.parametrize("n", [1, 2, 7, 64, 501, 5000])
    def test_alias_table_reconstructs_distribution_exactly(self, n):
        """The defining alias invariant: per-column mass equals ``n * p``."""
        rng = np.random.default_rng(n)
        p = rng.random(n) + 1e-3
        p = p / p.sum()
        s = AliasSampler(p, seed=0)
        recon = s._prob_table.copy()
        np.add.at(recon, s._alias_table, 1.0 - s._prob_table)
        np.testing.assert_allclose(recon / n, p, atol=1e-12)

    @pytest.mark.parametrize(
        "raw",
        [
            # Sizes above VECTORIZED_BUILD_MIN_N exercise the round-based build.
            [1000.0] + [1e-4] * 5000,  # one dominant item absorbing everything
            [1e-4] * 5000 + [1000.0, 900.0],  # dominant tail
            list(np.exp(np.random.default_rng(7).normal(0.0, 1.5, size=6000))),
        ],
        ids=["head_dominant", "tail_dominant", "heavy_tail"],
    )
    def test_alias_table_exact_for_extreme_spectra(self, raw):
        p = np.asarray(raw, dtype=np.float64)
        p = p / p.sum()
        s = AliasSampler(p, seed=0)
        recon = s._prob_table.copy()
        np.add.at(recon, s._alias_table, 1.0 - s._prob_table)
        np.testing.assert_allclose(recon / p.size, p, atol=1e-12)
        assert np.all(s._prob_table >= 0.0) and np.all(s._prob_table <= 1.0 + 1e-12)


class TestInverseCDFSampler:
    def test_empirical_distribution_converges(self, skewed_probs):
        s = InverseCDFSampler(skewed_probs, seed=0)
        draws = s.sample(60_000)
        freqs = np.bincount(draws, minlength=5) / draws.size
        np.testing.assert_allclose(freqs, skewed_probs, atol=0.01)

    def test_draw_in_range(self, skewed_probs):
        s = InverseCDFSampler(skewed_probs, seed=1)
        assert all(0 <= s.draw() < 5 for _ in range(50))

    def test_agrees_with_alias_statistically(self, skewed_probs):
        a = AliasSampler(skewed_probs, seed=0).sample(40_000)
        b = InverseCDFSampler(skewed_probs, seed=1).sample(40_000)
        fa = np.bincount(a, minlength=5) / a.size
        fb = np.bincount(b, minlength=5) / b.size
        np.testing.assert_allclose(fa, fb, atol=0.015)


class TestMakeSampler:
    def test_factory_kinds(self, skewed_probs):
        assert isinstance(make_sampler(skewed_probs, "alias"), AliasSampler)
        assert isinstance(make_sampler(skewed_probs, "inverse_cdf"), InverseCDFSampler)

    def test_unknown_kind(self, skewed_probs):
        with pytest.raises(ValueError):
            make_sampler(skewed_probs, "bogus")


class TestSampleSequence:
    def test_generate_length_and_range(self, skewed_probs):
        seq = SampleSequence.generate(skewed_probs, 500, seed=0)
        assert len(seq) == 500
        assert seq.indices.min() >= 0 and seq.indices.max() < 5

    def test_empirical_frequencies(self, skewed_probs):
        seq = SampleSequence.generate(skewed_probs, 50_000, seed=0)
        np.testing.assert_allclose(seq.empirical_frequencies(), skewed_probs, atol=0.01)

    def test_reshuffled_preserves_multiset(self, skewed_probs):
        seq = SampleSequence.generate(skewed_probs, 200, seed=0)
        shuffled = seq.reshuffled(seed=1)
        assert sorted(seq.indices.tolist()) == sorted(shuffled.indices.tolist())
        assert not np.array_equal(seq.indices, shuffled.indices)

    def test_uniform_epoch_is_permutation(self):
        seq = SampleSequence.uniform_epoch(10, seed=0)
        assert sorted(seq.indices.tolist()) == list(range(10))

    def test_iteration_and_indexing(self, skewed_probs):
        seq = SampleSequence.generate(skewed_probs, 10, seed=0)
        assert list(seq)[3] == seq[3]

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValueError):
            SampleSequence(indices=np.array([5]), probabilities=np.array([0.5, 0.5]))

    def test_negative_length_rejected(self, skewed_probs):
        with pytest.raises(ValueError):
            SampleSequence.generate(skewed_probs, -1)
