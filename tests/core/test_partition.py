"""Tests for the worker data partitioner."""

import numpy as np
import pytest

from repro.core.balancing import BalancingDecision, balance_dataset
from repro.core.partition import partition_dataset


class TestPartitionDataset:
    def test_shards_cover_all_rows(self, heavy_tail_lipschitz):
        L = heavy_tail_lipschitz
        order = np.arange(L.size)
        partition = partition_dataset(order, L, num_workers=7)
        covered = np.concatenate([s.row_indices for s in partition.shards])
        assert sorted(covered.tolist()) == list(range(L.size))

    def test_shard_sizes_nearly_equal(self, heavy_tail_lipschitz):
        partition = partition_dataset(
            np.arange(heavy_tail_lipschitz.size), heavy_tail_lipschitz, num_workers=7
        )
        sizes = [s.size for s in partition.shards]
        assert max(sizes) - min(sizes) <= 1

    def test_local_probabilities_sum_to_one(self, heavy_tail_lipschitz):
        partition = partition_dataset(
            np.arange(heavy_tail_lipschitz.size), heavy_tail_lipschitz, num_workers=4
        )
        for shard in partition.shards:
            assert shard.probabilities.sum() == pytest.approx(1.0)

    def test_local_probabilities_proportional_to_local_lipschitz(self):
        L = np.array([1.0, 2.0, 3.0, 4.0])
        partition = partition_dataset(np.arange(4), L, num_workers=2)
        shard = partition.shards[0]
        np.testing.assert_allclose(shard.probabilities, [1 / 3, 2 / 3])

    def test_uniform_scheme(self):
        L = np.array([1.0, 2.0, 3.0, 4.0])
        partition = partition_dataset(np.arange(4), L, num_workers=2, scheme="uniform")
        for shard in partition.shards:
            np.testing.assert_allclose(shard.probabilities, 0.5)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            partition_dataset(np.arange(4), np.ones(4), num_workers=2, scheme="magic")

    def test_figure2_distortion_story(self):
        """The Figure 2 example: sorted split distorts, balanced split does not."""
        L = np.array([1.0, 2.0, 3.0, 4.0])
        sorted_partition = partition_dataset(np.arange(4), L, num_workers=2)
        balanced_order = balance_dataset(L, 2, force=BalancingDecision.BALANCE).order
        balanced_partition = partition_dataset(balanced_order, L, num_workers=2)
        assert balanced_partition.local_vs_global_distortion() < (
            sorted_partition.local_vs_global_distortion()
        )
        assert balanced_partition.mass_imbalance() == pytest.approx(1.0)
        assert sorted_partition.mass_imbalance() == pytest.approx(7.0 / 3.0)

    def test_total_mass_preserved(self, heavy_tail_lipschitz):
        partition = partition_dataset(
            np.arange(heavy_tail_lipschitz.size), heavy_tail_lipschitz, num_workers=5
        )
        assert partition.total_mass == pytest.approx(heavy_tail_lipschitz.sum())

    def test_order_subset_allowed(self):
        L = np.ones(10)
        partition = partition_dataset(np.array([1, 3, 5, 7]), L, num_workers=2)
        assert partition.num_workers == 2
        assert sum(s.size for s in partition.shards) == 4

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            partition_dataset(np.array([0, 99]), np.ones(10), num_workers=2)
        with pytest.raises(ValueError):
            partition_dataset(np.array([], dtype=np.int64), np.ones(10), num_workers=2)

    def test_workers_capped_by_rows(self):
        partition = partition_dataset(np.arange(3), np.ones(3), num_workers=8)
        assert partition.num_workers == 3

    def test_worker_shard_validation(self):
        from repro.core.partition import WorkerShard

        with pytest.raises(ValueError):
            WorkerShard(
                worker_id=0,
                row_indices=np.array([0, 1]),
                lipschitz=np.array([1.0]),
                probabilities=np.array([1.0]),
            )
