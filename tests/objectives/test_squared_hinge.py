"""Tests for the squared-hinge SVM objective (paper Eq. 16)."""

import numpy as np
import pytest

from repro.objectives.regularizers import L2Regularizer
from repro.objectives.squared_hinge import SquaredHingeObjective
from repro.sparse.csr import CSRMatrix


@pytest.fixture()
def toy():
    X = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 2.0], [-1.0, 1.0]]))
    y = np.array([1.0, -1.0, 1.0])
    return X, y


class TestLoss:
    def test_zero_loss_when_margin_large(self, toy):
        X, y = toy
        obj = SquaredHingeObjective()
        w = np.array([5.0, -5.0])
        assert obj.sample_loss(w, *X.row(0), y[0]) == 0.0

    def test_loss_at_zero_weights(self, toy):
        X, y = toy
        obj = SquaredHingeObjective()
        assert obj.sample_loss(np.zeros(2), *X.row(0), y[0]) == pytest.approx(1.0)

    def test_quadratic_growth(self):
        obj = SquaredHingeObjective()
        X = CSRMatrix.from_dense(np.array([[1.0]]))
        # margin = -1 -> slack = 2 -> loss = 4
        assert obj.sample_loss(np.array([-1.0]), *X.row(0), 1.0) == pytest.approx(4.0)


class TestGradient:
    def test_matches_finite_difference(self, toy):
        X, y = toy
        obj = SquaredHingeObjective.l2_regularized(0.1)
        rng = np.random.default_rng(1)
        w = rng.normal(scale=0.3, size=2)
        for i in range(X.n_rows):
            idx, val = X.row(i)
            grad = obj.sample_grad_dense(w, idx, val, y[i])
            eps = 1e-6
            for j in range(2):
                wp, wm = w.copy(), w.copy()
                wp[j] += eps
                wm[j] -= eps
                fd = (
                    (obj.sample_loss(wp, idx, val, y[i]) + obj.regularizer.value(wp))
                    - (obj.sample_loss(wm, idx, val, y[i]) + obj.regularizer.value(wm))
                ) / (2 * eps)
                assert grad[j] == pytest.approx(fd, abs=1e-5)

    def test_zero_gradient_in_flat_region(self, toy):
        X, y = toy
        obj = SquaredHingeObjective()
        w = np.array([10.0, -10.0])
        grad = obj.sample_grad(w, *X.row(0), y[0])
        np.testing.assert_allclose(grad.values, 0.0)


class TestLipschitzAndBounds:
    def test_smoothness_coefficient(self):
        assert SquaredHingeObjective().smoothness_coefficient() == 2.0

    def test_eq16_bound_formula(self, toy):
        X, y = toy
        lam = 0.25
        obj = SquaredHingeObjective.l2_regularized(lam)
        bounds = obj.gradient_norm_bounds(X)
        norms = X.row_norms()
        expected = 2.0 * (1.0 + norms / np.sqrt(lam)) * norms + np.sqrt(lam)
        np.testing.assert_allclose(bounds, expected)

    def test_eq16_bound_actually_bounds_gradients(self, toy):
        X, y = toy
        lam = 0.5
        obj = SquaredHingeObjective.l2_regularized(lam)
        bounds = obj.gradient_norm_bounds(X)
        rng = np.random.default_rng(0)
        # For ||w|| <= 1 the bound of Eq. 16 should dominate the actual norms.
        for _ in range(20):
            w = rng.normal(size=2)
            w = w / max(np.linalg.norm(w), 1.0)
            for i in range(X.n_rows):
                g = obj.sample_grad_dense(w, *X.row(i), y[i])
                assert np.linalg.norm(g) <= bounds[i] + 1e-9

    def test_generic_bound_without_l2(self, toy):
        X, y = toy
        obj = SquaredHingeObjective()
        # Falls back to R * L_i
        np.testing.assert_allclose(
            obj.gradient_norm_bounds(X, radius=2.0), 2.0 * obj.lipschitz_constants(X)
        )
