"""Tests for the objective registry."""

import pytest

from repro.objectives.base import Objective
from repro.objectives.logistic import LogisticObjective
from repro.objectives.registry import available_objectives, make_objective, register_objective
from repro.objectives.regularizers import L1Regularizer, L2Regularizer


class TestRegistry:
    def test_available_contains_paper_objectives(self):
        names = available_objectives()
        assert "logistic_l1" in names
        assert "squared_hinge_l2" in names

    def test_make_logistic_l1(self):
        obj = make_objective("logistic_l1", eta=0.01)
        assert isinstance(obj, LogisticObjective)
        assert isinstance(obj.regularizer, L1Regularizer)
        assert obj.regularizer.eta == pytest.approx(0.01)

    def test_make_ridge(self):
        obj = make_objective("ridge", eta=0.5)
        assert isinstance(obj.regularizer, L2Regularizer)

    def test_every_registered_name_constructs(self):
        for name in available_objectives():
            obj = make_objective(name, eta=1e-3)
            assert isinstance(obj, Objective)

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ValueError, match="available"):
            make_objective("nope")

    def test_register_custom(self):
        register_objective("custom_logistic", lambda eta: LogisticObjective())
        try:
            assert isinstance(make_objective("custom_logistic"), LogisticObjective)
        finally:
            # Clean up the registry for other tests.
            from repro.objectives import registry

            registry._FACTORIES.pop("custom_logistic", None)
