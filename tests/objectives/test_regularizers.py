"""Tests for repro.objectives.regularizers."""

import numpy as np
import pytest

from repro.objectives.regularizers import (
    ElasticNetRegularizer,
    L1Regularizer,
    L2Regularizer,
    NoRegularizer,
)


class TestNoRegularizer:
    def test_value_zero(self):
        assert NoRegularizer().value(np.ones(5)) == 0.0

    def test_grad_zero(self):
        grad = NoRegularizer().grad_coords(np.ones(5), np.array([0, 2]))
        np.testing.assert_allclose(grad, 0.0)

    def test_lipschitz_zero(self):
        assert NoRegularizer().lipschitz_bound(1.0) == 0.0

    def test_no_strong_convexity(self):
        assert NoRegularizer().strong_convexity == 0.0


class TestL2Regularizer:
    def test_value(self):
        reg = L2Regularizer(0.5)
        w = np.array([1.0, 2.0])
        assert reg.value(w) == pytest.approx(0.25 * 5.0)

    def test_grad_restricted_to_indices(self):
        reg = L2Regularizer(2.0)
        w = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(reg.grad_coords(w, np.array([0, 2])), [2.0, 6.0])

    def test_grad_dense_matches_analytic(self):
        reg = L2Regularizer(3.0)
        w = np.array([1.0, -1.0])
        np.testing.assert_allclose(reg.grad_dense(w), 3.0 * w)

    def test_strong_convexity_equals_eta(self):
        assert L2Regularizer(0.7).strong_convexity == pytest.approx(0.7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            L2Regularizer(0.0)


class TestL1Regularizer:
    def test_value(self):
        assert L1Regularizer(2.0).value(np.array([1.0, -3.0])) == pytest.approx(8.0)

    def test_subgradient_sign(self):
        reg = L1Regularizer(1.0)
        w = np.array([2.0, -5.0, 0.0])
        np.testing.assert_allclose(reg.grad_coords(w, np.arange(3)), [1.0, -1.0, 0.0])

    def test_lipschitz_bound_is_eta(self):
        assert L1Regularizer(0.3).lipschitz_bound(10.0) == pytest.approx(0.3)

    def test_no_strong_convexity(self):
        assert L1Regularizer(1.0).strong_convexity == 0.0


class TestElasticNet:
    def test_combines_both_penalties(self):
        reg = ElasticNetRegularizer(1.0, 2.0)
        w = np.array([1.0, -2.0])
        assert reg.value(w) == pytest.approx(3.0 + 5.0)

    def test_grad(self):
        reg = ElasticNetRegularizer(1.0, 2.0)
        w = np.array([3.0, -1.0])
        np.testing.assert_allclose(reg.grad_coords(w, np.arange(2)), [1.0 + 6.0, -1.0 - 2.0])

    def test_rejects_both_zero(self):
        with pytest.raises(ValueError):
            ElasticNetRegularizer(0.0, 0.0)

    def test_strong_convexity_from_l2_part(self):
        assert ElasticNetRegularizer(1.0, 0.5).strong_convexity == pytest.approx(0.5)
