"""Tests for the logistic (cross-entropy) objective."""

import numpy as np
import pytest

from repro.objectives.logistic import LogisticObjective, _log1pexp, _sigmoid
from repro.objectives.regularizers import L1Regularizer, L2Regularizer
from repro.sparse.csr import CSRMatrix


@pytest.fixture()
def toy():
    X = CSRMatrix.from_dense(np.array([[1.0, 0.0, 2.0], [0.0, -1.0, 0.5], [3.0, 0.0, 0.0]]))
    y = np.array([1.0, -1.0, 1.0])
    return X, y


class TestNumericHelpers:
    def test_log1pexp_stable_large_positive(self):
        assert _log1pexp(1000.0) == pytest.approx(1000.0)

    def test_log1pexp_matches_naive_for_moderate(self):
        z = 3.0
        assert _log1pexp(z) == pytest.approx(np.log1p(np.exp(z)))

    def test_sigmoid_range(self):
        vals = _sigmoid(np.array([-50.0, 0.0, 50.0]))
        assert vals[0] == pytest.approx(0.0, abs=1e-10)
        assert vals[1] == pytest.approx(0.5)
        assert vals[2] == pytest.approx(1.0, abs=1e-10)


class TestSampleLossAndGrad:
    def test_loss_at_zero_weights(self, toy):
        X, y = toy
        obj = LogisticObjective()
        w = np.zeros(3)
        assert obj.sample_loss(w, *X.row(0), y[0]) == pytest.approx(np.log(2))

    def test_gradient_matches_finite_difference(self, toy):
        X, y = toy
        obj = LogisticObjective(regularizer=L2Regularizer(0.1))
        rng = np.random.default_rng(0)
        w = rng.normal(size=3)
        for i in range(X.n_rows):
            idx, val = X.row(i)
            grad = obj.sample_grad_dense(w, idx, val, y[i])
            eps = 1e-6
            for j in range(3):
                wp, wm = w.copy(), w.copy()
                wp[j] += eps
                wm[j] -= eps
                fd = (
                    (obj.sample_loss(wp, idx, val, y[i]) + obj.regularizer.value(wp))
                    - (obj.sample_loss(wm, idx, val, y[i]) + obj.regularizer.value(wm))
                ) / (2 * eps)
                assert grad[j] == pytest.approx(fd, abs=1e-5)

    def test_sparse_grad_support_is_sample_support(self, toy):
        X, y = toy
        obj = LogisticObjective()
        grad = obj.sample_grad(np.zeros(3), *X.row(0), y[0])
        np.testing.assert_array_equal(grad.indices, X.row(0)[0])

    def test_grad_direction_reduces_loss(self, toy):
        X, y = toy
        obj = LogisticObjective()
        w = np.zeros(3)
        i = 0
        idx, val = X.row(i)
        grad = obj.sample_grad(w, idx, val, y[i])
        w_new = w.copy()
        np.add.at(w_new, grad.indices, -0.1 * grad.values)
        assert obj.sample_loss(w_new, idx, val, y[i]) < obj.sample_loss(w, idx, val, y[i])


class TestFullObjective:
    def test_full_loss_at_zero(self, toy):
        X, y = toy
        obj = LogisticObjective()
        assert obj.full_loss(np.zeros(3), X, y) == pytest.approx(np.log(2))

    def test_full_gradient_matches_mean_of_samples(self, toy):
        X, y = toy
        obj = LogisticObjective(regularizer=L2Regularizer(0.05))
        w = np.array([0.3, -0.2, 0.1])
        expected = np.mean(
            [obj.sample_grad_dense(w, *X.row(i), y[i]) for i in range(X.n_rows)], axis=0
        )
        # sample_grad_dense includes the full regulariser per sample; the mean
        # over samples therefore equals full_gradient exactly.
        np.testing.assert_allclose(obj.full_gradient(w, X, y), expected, atol=1e-12)

    def test_rmse_is_sqrt_of_loss(self, toy):
        X, y = toy
        obj = LogisticObjective()
        w = np.zeros(3)
        assert obj.rmse(w, X, y) == pytest.approx(np.sqrt(np.log(2)))

    def test_error_rate_and_predict(self, toy):
        X, y = toy
        obj = LogisticObjective()
        # A weight vector separating the toy problem: margins are 1, -1, 3.
        w = np.array([1.0, 1.0, 0.0])
        assert obj.error_rate(w, X, y) == 0.0
        preds = obj.predict(w, X)
        np.testing.assert_array_equal(preds, y)

    def test_predict_proba_in_unit_interval(self, toy):
        X, y = toy
        obj = LogisticObjective()
        p = obj.predict_proba(np.ones(3), X)
        assert np.all((p >= 0) & (p <= 1))


class TestLipschitz:
    def test_quarter_smoothness(self):
        assert LogisticObjective().smoothness_coefficient() == 0.25

    def test_constants_scale_with_row_norms(self, toy):
        X, y = toy
        obj = LogisticObjective()
        L = obj.lipschitz_constants(X, y)
        np.testing.assert_allclose(L, 0.25 * X.row_norms(squared=True))

    def test_l1_factory(self):
        obj = LogisticObjective.l1_regularized(0.01)
        assert isinstance(obj.regularizer, L1Regularizer)
        assert obj.regularizer.eta == pytest.approx(0.01)
