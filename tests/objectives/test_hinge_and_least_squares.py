"""Tests for the hinge and least-squares objectives."""

import numpy as np
import pytest

from repro.objectives.hinge import HingeObjective
from repro.objectives.least_squares import LeastSquaresObjective
from repro.objectives.regularizers import L2Regularizer
from repro.sparse.csr import CSRMatrix


@pytest.fixture()
def cls_toy():
    X = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 2.0], [1.0, 1.0]]))
    y = np.array([1.0, -1.0, 1.0])
    return X, y


class TestHinge:
    def test_loss_values(self, cls_toy):
        X, y = cls_toy
        obj = HingeObjective()
        assert obj.sample_loss(np.zeros(2), *X.row(0), y[0]) == pytest.approx(1.0)
        assert obj.sample_loss(np.array([2.0, 0.0]), *X.row(0), y[0]) == 0.0

    def test_subgradient_active_region(self, cls_toy):
        X, y = cls_toy
        obj = HingeObjective()
        grad = obj.sample_grad(np.zeros(2), *X.row(0), y[0])
        np.testing.assert_allclose(grad.values, [-1.0])

    def test_subgradient_inactive_region(self, cls_toy):
        X, y = cls_toy
        obj = HingeObjective()
        grad = obj.sample_grad(np.array([5.0, 0.0]), *X.row(0), y[0])
        np.testing.assert_allclose(grad.values, [0.0])

    def test_lipschitz_uses_row_norms(self, cls_toy):
        X, y = cls_toy
        obj = HingeObjective()
        np.testing.assert_allclose(obj.lipschitz_constants(X), X.row_norms())

    def test_full_loss_vectorised_matches_scalar(self, cls_toy):
        X, y = cls_toy
        obj = HingeObjective()
        w = np.array([0.2, -0.1])
        expected = np.mean([obj.sample_loss(w, *X.row(i), y[i]) for i in range(X.n_rows)])
        assert obj.full_loss(w, X, y) == pytest.approx(expected)


class TestLeastSquares:
    def test_loss_is_half_squared_residual(self):
        X = CSRMatrix.from_dense(np.array([[2.0]]))
        obj = LeastSquaresObjective()
        assert obj.sample_loss(np.array([1.0]), *X.row(0), 5.0) == pytest.approx(0.5 * 9.0)

    def test_gradient_matches_finite_difference(self):
        X = CSRMatrix.from_dense(np.array([[1.0, 2.0], [0.0, 3.0]]))
        y = np.array([1.0, -2.0])
        obj = LeastSquaresObjective.ridge(0.1)
        w = np.array([0.4, -0.3])
        eps = 1e-6
        for i in range(2):
            idx, val = X.row(i)
            grad = obj.sample_grad_dense(w, idx, val, y[i])
            for j in range(2):
                wp, wm = w.copy(), w.copy()
                wp[j] += eps
                wm[j] -= eps
                fd = (
                    (obj.sample_loss(wp, idx, val, y[i]) + obj.regularizer.value(wp))
                    - (obj.sample_loss(wm, idx, val, y[i]) + obj.regularizer.value(wm))
                ) / (2 * eps)
                assert grad[j] == pytest.approx(fd, abs=1e-5)

    def test_solve_exact_minimises_objective(self):
        rng = np.random.default_rng(0)
        dense = rng.normal(size=(30, 4))
        w_true = np.array([1.0, -2.0, 0.5, 0.0])
        y = dense @ w_true
        X = CSRMatrix.from_dense(dense)
        obj = LeastSquaresObjective.ridge(1e-8)
        w_star = obj.solve_exact(X, y)
        np.testing.assert_allclose(w_star, w_true, atol=1e-4)
        # Perturbations should not decrease the objective.
        base = obj.full_loss(w_star, X, y)
        for _ in range(5):
            assert obj.full_loss(w_star + 0.01 * rng.normal(size=4), X, y) >= base - 1e-12

    def test_error_rate_is_normalised_mse(self):
        X = CSRMatrix.from_dense(np.array([[1.0], [1.0]]))
        y = np.array([1.0, -1.0])
        obj = LeastSquaresObjective()
        # predictions are 0 -> mse = 1, mean(y^2) = 1 -> ratio 1
        assert obj.error_rate(np.zeros(1), X, y) == pytest.approx(1.0)

    def test_is_regression_not_classification(self):
        assert LeastSquaresObjective().is_classification is False
